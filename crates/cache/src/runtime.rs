//! The automaton execution runtime (§5 of the paper), on a pooled
//! executor.
//!
//! The paper's prototype animates every registered automaton with a
//! dedicated OS thread. That model stops scaling long before the
//! "millions of users" mark: a thousand registered automata is a
//! thousand mostly-idle threads. This runtime replaces it with a
//! **bounded worker pool** (sized by
//! [`CacheBuilder::automaton_workers`](crate::CacheBuilder::automaton_workers)):
//!
//! * every automaton is **pinned** to one worker (`id mod workers`) for
//!   its whole life; the worker owns the automaton's [`Vm`] — whose
//!   aggregate values are deliberately not `Send` — so VM state never
//!   crosses a thread boundary;
//! * a worker's FIFO channel is the fused **single-owner mailbox** of
//!   the automata pinned to it: the cache enqueues registration,
//!   events and unregistration in order, and the worker consumes them
//!   in order, which preserves the per-automaton delivery guarantee of
//!   the thread-per-automaton design (tuples of one table arrive in
//!   strict time-of-insertion order, batches arrive contiguously);
//! * unregistration is an **acknowledged drain**: the `Unregister`
//!   message queues *behind* every event already mailed to the
//!   automaton, so by the time the ack comes back the mailbox has been
//!   drained by processing; late events that raced past unregistration
//!   are discarded deterministically (their automaton no longer exists
//!   on the worker).
//!
//! Ordering across automata — even two automata pinned to the same
//! worker — is unspecified, exactly as it was across dedicated
//! threads. While processing an event an automaton may `send()`
//! notifications (surfaced as [`Notification`]s) and `publish()`
//! tuples into other tables, potentially cascading into other automata
//! on other workers; channels are unbounded, so cascades never
//! deadlock the pool.
//!
//! **Durability and replay.** When the cache is opened from a
//! durability directory (see [`crate::wal`]), recovered inserts are
//! applied to the tables *before* the cache is handed back to the
//! application, through a path that never touches the dispatch index —
//! so no worker mailbox ever receives a replayed tuple. An automaton
//! registered on a recovered cache starts from its `initialization`
//! clause and observes live traffic only; automaton state (VM
//! variables) is deliberately not durable, but any state an automaton
//! `insert()`s into an associated persistent table is.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use gapl::event::{Scalar, Timestamp, Tuple};
use gapl::vm::{HostInterface, Vm};
use gapl::Program;

use crate::cache::CacheInner;

/// Identifies a registered automaton; returned by registration and used to
/// manage the automaton later (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AutomatonId(pub u64);

impl std::fmt::Display for AutomatonId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "automaton#{}", self.0)
    }
}

/// A complex-event notification produced by an automaton's `send()` and
/// delivered to the application that registered it.
#[derive(Debug, Clone, PartialEq)]
pub struct Notification {
    /// The automaton that sent the notification.
    pub automaton: AutomatonId,
    /// The flattened values passed to `send()`.
    pub values: Vec<Scalar>,
    /// The cache time at which the notification was produced.
    pub at: Timestamp,
}

/// Everything a worker needs to bring an automaton to life on its own
/// thread. The [`Vm`] is constructed worker-side because its values are
/// not `Send`.
pub(crate) struct RegisterCmd {
    pub id: AutomatonId,
    pub program: Arc<Program>,
    pub cache: Weak<CacheInner>,
    pub notifier: Sender<Notification>,
    pub stats: Arc<AutomatonStats>,
    pub print_to_stdout: bool,
}

/// A message in a worker's mailbox.
pub(crate) enum WorkerMsg {
    /// Create the automaton's VM and run its `initialization` clause.
    Register(Box<RegisterCmd>),
    /// An event published on a subscribed topic.
    Event {
        /// Target automaton.
        id: AutomatonId,
        /// The topic the tuple was inserted into.
        topic: Arc<str>,
        /// The tuple itself.
        tuple: Tuple,
        /// When the publisher enqueued the event (`None` when the
        /// observability registry is disabled); the worker subtracts it
        /// at pickup to record dispatch queue latency.
        enqueued: Option<Instant>,
    },
    /// Drop the automaton's VM; acknowledge once every earlier event in
    /// the mailbox has been processed.
    Unregister {
        /// Target automaton.
        id: AutomatonId,
        /// Acknowledged after the drain.
        ack: Sender<()>,
    },
    /// Drain the mailbox and exit the worker thread.
    Shutdown,
}

/// Counters and buffers shared between the executor and the cache.
#[derive(Debug, Default)]
pub(crate) struct AutomatonStats {
    /// Events enqueued for this automaton.
    pub delivered: AtomicU64,
    /// Events fully processed by the behavior clause.
    pub processed: AtomicU64,
    /// High-water mark of the mailbox backlog (`delivered - processed`
    /// observed at enqueue time).
    pub max_queue_depth: AtomicU64,
    /// Runtime errors raised while processing events.
    pub errors: Mutex<Vec<String>>,
    /// Lines produced by `print()`.
    pub printed: Mutex<Vec<String>>,
}

impl AutomatonStats {
    /// Count one enqueued event and update the backlog high-water mark.
    pub fn record_enqueued(&self) {
        let delivered = self.delivered.fetch_add(1, Ordering::AcqRel) + 1;
        let processed = self.processed.load(Ordering::Acquire);
        self.max_queue_depth
            .fetch_max(delivered.saturating_sub(processed), Ordering::AcqRel);
    }

    /// Events currently waiting in the automaton's mailbox.
    pub fn queue_depth(&self) -> u64 {
        self.delivered
            .load(Ordering::Acquire)
            .saturating_sub(self.processed.load(Ordering::Acquire))
    }
}

/// The bounded worker pool animating every registered automaton.
#[derive(Debug)]
pub(crate) struct Executor {
    txs: Vec<Sender<WorkerMsg>>,
    joins: Mutex<Vec<JoinHandle<()>>>,
}

impl Executor {
    /// Start `workers` pool threads (at least one). Every worker
    /// records dispatch queue latency into `obs` at event pickup.
    pub fn start(workers: usize, obs: Arc<crate::obs::Obs>) -> Executor {
        let workers = workers.max(1);
        let mut txs = Vec::with_capacity(workers);
        let mut joins = Vec::with_capacity(workers);
        for n in 0..workers {
            let (tx, rx) = unbounded();
            let obs = Arc::clone(&obs);
            let join = std::thread::Builder::new()
                .name(format!("automaton-worker-{n}"))
                .spawn(move || worker_loop(rx, obs))
                .expect("spawning a pool worker never fails on supported platforms");
            txs.push(tx);
            joins.push(join);
        }
        Executor {
            txs,
            joins: Mutex::new(joins),
        }
    }

    /// Number of pool workers.
    pub fn worker_count(&self) -> usize {
        self.txs.len()
    }

    /// The mailbox of the worker that owns `id`. Pinning is static, so
    /// every message for one automaton lands in the same FIFO.
    pub fn sender_for(&self, id: AutomatonId) -> &Sender<WorkerMsg> {
        &self.txs[(id.0 as usize) % self.txs.len()]
    }

    /// Ask every worker to drain its mailbox and exit, then join them.
    /// Idempotent: later calls find nothing to join.
    pub fn shutdown(&self) {
        for tx in &self.txs {
            let _ = tx.send(WorkerMsg::Shutdown);
        }
        let joins = std::mem::take(&mut *self.joins.lock());
        let current = std::thread::current().id();
        for join in joins {
            // The executor can be dropped *on a pool worker*: if an
            // automaton behavior holds the last temporarily upgraded
            // Arc<CacheInner> when the final Cache clone goes away,
            // CacheInner (and this executor) drop on that worker's own
            // thread. Joining ourselves would deadlock/panic — detach
            // instead; the worker exits as soon as the behavior returns
            // and its (already sent) Shutdown message is consumed.
            if join.thread().id() == current {
                drop(join);
            } else {
                let _ = join.join();
            }
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One worker: owns the VMs of the automata pinned to it and consumes
/// its mailbox in FIFO order.
fn worker_loop(rx: Receiver<WorkerMsg>, obs: Arc<crate::obs::Obs>) {
    struct Runner {
        vm: Vm,
        host: CacheHost,
    }
    let mut runners: HashMap<u64, Runner> = HashMap::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Register(cmd) => {
                let mut host = CacheHost {
                    cache: cmd.cache,
                    automaton: cmd.id,
                    notifier: cmd.notifier,
                    stats: cmd.stats,
                    print_to_stdout: cmd.print_to_stdout,
                };
                let mut vm = Vm::new(cmd.program);
                if let Err(e) = vm.run_initialization(&mut host) {
                    host.stats
                        .errors
                        .lock()
                        .push(format!("initialization: {e}"));
                }
                runners.insert(cmd.id.0, Runner { vm, host });
            }
            WorkerMsg::Event {
                id,
                topic,
                tuple,
                enqueued,
            } => {
                if let Some(at) = enqueued {
                    obs.record_if_enabled(&obs.dispatch_queue_ns, at.elapsed());
                }
                // An absent runner means the automaton was unregistered
                // while this event was in flight; discarding is the
                // deterministic choice (the drain ack has already been
                // sent, so nobody is waiting on this event).
                let Some(runner) = runners.get_mut(&id.0) else {
                    continue;
                };
                if let Err(e) = runner.vm.run_behavior(&topic, &tuple, &mut runner.host) {
                    runner
                        .host
                        .stats
                        .errors
                        .lock()
                        .push(format!("behavior: {e}"));
                }
                runner.host.stats.processed.fetch_add(1, Ordering::Release);
            }
            WorkerMsg::Unregister { id, ack } => {
                runners.remove(&id.0);
                let _ = ack.send(());
            }
            WorkerMsg::Shutdown => break,
        }
    }
}

/// The [`HostInterface`] implementation that wires an automaton into the
/// cache: `publish()` becomes an insertion (which may cascade to other
/// automata), `send()` becomes a [`Notification`], and associations resolve
/// to the cache's persistent tables.
pub(crate) struct CacheHost {
    pub cache: Weak<CacheInner>,
    pub automaton: AutomatonId,
    pub notifier: Sender<Notification>,
    pub stats: Arc<AutomatonStats>,
    pub print_to_stdout: bool,
}

impl CacheHost {
    fn cache(&self) -> gapl::Result<Arc<CacheInner>> {
        self.cache
            .upgrade()
            .ok_or_else(|| gapl::Error::runtime("the cache has been shut down"))
    }
}

impl HostInterface for CacheHost {
    fn now(&self) -> Timestamp {
        self.cache.upgrade().map(|c| c.now()).unwrap_or(0)
    }

    fn publish(&mut self, topic: &str, values: Vec<Scalar>) -> gapl::Result<()> {
        let cache = self.cache()?;
        cache
            .insert_values(topic, values, true)
            .map(|_| ())
            .map_err(|e| gapl::Error::runtime(e.to_string()))
    }

    fn send(&mut self, values: Vec<Scalar>) -> gapl::Result<()> {
        let at = self.now();
        // A vanished application is not an automaton error: the paper's
        // cache keeps automata running even when the registering process is
        // slow or gone, so a closed channel is silently tolerated.
        let _ = self.notifier.send(Notification {
            automaton: self.automaton,
            values,
            at,
        });
        Ok(())
    }

    fn print(&mut self, text: &str) {
        if self.print_to_stdout {
            println!("{text}");
        }
        self.stats.printed.lock().push(text.to_owned());
    }

    fn assoc_lookup(&mut self, table: &str, key: &str) -> gapl::Result<Option<Vec<Scalar>>> {
        let cache = self.cache()?;
        cache
            .persistent_lookup(table, key)
            .map_err(|e| gapl::Error::runtime(e.to_string()))
    }

    fn assoc_insert(&mut self, table: &str, key: &str, values: Vec<Scalar>) -> gapl::Result<()> {
        let cache = self.cache()?;
        cache
            .persistent_upsert(table, key, values)
            .map_err(|e| gapl::Error::runtime(e.to_string()))
    }

    fn assoc_has_entry(&mut self, table: &str, key: &str) -> gapl::Result<bool> {
        Ok(self.assoc_lookup(table, key)?.is_some())
    }

    fn assoc_remove(&mut self, table: &str, key: &str) -> gapl::Result<()> {
        let cache = self.cache()?;
        cache
            .persistent_remove(table, key)
            .map(|_| ())
            .map_err(|e| gapl::Error::runtime(e.to_string()))
    }

    fn assoc_size(&mut self, table: &str) -> gapl::Result<usize> {
        let cache = self.cache()?;
        cache
            .table_len(table)
            .map_err(|e| gapl::Error::runtime(e.to_string()))
    }

    fn assoc_keys(&mut self, table: &str) -> gapl::Result<Vec<String>> {
        let cache = self.cache()?;
        cache
            .persistent_keys(table)
            .map_err(|e| gapl::Error::runtime(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn automaton_id_displays_compactly() {
        assert_eq!(AutomatonId(7).to_string(), "automaton#7");
    }

    #[test]
    fn notification_is_cloneable_and_comparable() {
        let n = Notification {
            automaton: AutomatonId(1),
            values: vec![Scalar::Int(3)],
            at: 12,
        };
        assert_eq!(n.clone(), n);
    }

    #[test]
    fn stats_start_at_zero_and_track_the_backlog() {
        let s = AutomatonStats::default();
        assert_eq!(s.delivered.load(Ordering::Relaxed), 0);
        assert_eq!(s.processed.load(Ordering::Relaxed), 0);
        assert_eq!(s.queue_depth(), 0);
        assert!(s.errors.lock().is_empty());
        assert!(s.printed.lock().is_empty());
        s.record_enqueued();
        s.record_enqueued();
        assert_eq!(s.queue_depth(), 2);
        assert_eq!(s.max_queue_depth.load(Ordering::Relaxed), 2);
        s.processed.fetch_add(2, Ordering::Release);
        assert_eq!(s.queue_depth(), 0);
        assert_eq!(s.max_queue_depth.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn executor_pins_automata_to_workers_and_shuts_down_cleanly() {
        let obs = Arc::new(crate::obs::Obs::new(
            true,
            std::time::Duration::from_secs(1),
        ));
        let pool = Executor::start(3, obs);
        assert_eq!(pool.worker_count(), 3);
        // Pinning is stable and spreads ids round-robin.
        for id in 0..9u64 {
            let a = pool.sender_for(AutomatonId(id)) as *const _;
            let b = pool.sender_for(AutomatonId(id)) as *const _;
            assert_eq!(a, b);
        }
        pool.shutdown();
        pool.shutdown(); // idempotent
    }
}
