//! Fig. 18 — benchmarking against Cayuga on the stock queries.
//!
//! Methodology, following §6.5: the whole synthetic stock dataset is first
//! materialised in memory ("first appending all events in a window"); then
//! each engine iterates over it and executes the query. The Cayuga side is
//! the NFA engine of the `cayuga` crate; the cache side is the equivalent
//! imperative GAPL automaton executed by the stack-machine VM — per-stock
//! state machines held in a map under a single execution thread, which is
//! the structural advantage the paper credits for the speed-ups.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cayuga::queries::{q1_select_publish, q2_double_top, q3_increasing_runs};
use cayuga::Engine;
use cep_workloads::{StockConfig, StockGenerator};
use gapl::event::Tuple;
use gapl::vm::{RecordingHost, Vm};

/// The GAPL pass-through for Q1.
pub const Q1_GAPL: &str =
    "subscribe s to Stocks; behavior { publish('T', s.name, s.price, s.volume); }";

/// The GAPL double-top detector for Q2: "our implementation maintains
/// states A–F in a map of stocks; each entry represents a small state
/// machine" (§6.5). The map is automaton-local state, so no persistent
/// table round trips are involved.
pub const Q2_GAPL: &str = r#"
    subscribe s to Stocks;
    map states;
    int phase;
    real prev, peak1, trough, peak2;
    sequence st;
    identifier name;
    initialization { states = Map(sequence); }
    behavior {
        name = Identifier(s.name);
        if (hasEntry(states, name)) {
            st = lookup(states, name);
            phase = seqElement(st, 0);
            prev = seqElement(st, 1);
            peak1 = seqElement(st, 2);
            trough = seqElement(st, 3);
            peak2 = seqElement(st, 4);
        } else {
            phase = 0;
            prev = s.price;
            peak1 = s.price;
            trough = s.price;
            peak2 = s.price;
        }
        if (phase == 0) {
            if (s.price > prev) { phase = 1; peak1 = s.price; }
        } else if (phase == 1) {
            if (s.price > prev) peak1 = s.price;
            else { phase = 2; trough = s.price; }
        } else if (phase == 2) {
            if (s.price < prev) trough = s.price;
            else { phase = 3; peak2 = s.price; }
        } else if (phase == 3) {
            if (s.price > prev) peak2 = s.price;
            else {
                if (abs(peak2 - peak1) <= peak1 * 0.02)
                    send(s.name, peak1, trough, peak2);
                phase = 2;
                trough = s.price;
            }
        }
        prev = s.price;
        insert(states, name, Sequence(phase, prev, peak1, trough, peak2));
    }
"#;

/// The GAPL monotone-run detector for Q3: a map of per-stock `(previous
/// price, run length)` pairs, updated in a single pass.
pub const Q3_GAPL: &str = r#"
    subscribe s to Stocks;
    map runs;
    real prev;
    int len;
    sequence st;
    identifier name;
    initialization { runs = Map(sequence); }
    behavior {
        name = Identifier(s.name);
        if (hasEntry(runs, name)) {
            st = lookup(runs, name);
            prev = seqElement(st, 0);
            len = seqElement(st, 1);
        } else {
            prev = s.price;
            len = 1;
        }
        if (s.price > prev)
            len += 1;
        else {
            if (len >= 3)
                send(s.name, len);
            len = 1;
        }
        insert(runs, name, Sequence(s.price, len));
    }
"#;

/// One row of Fig. 18: wall-clock time of one query on both engines.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Q1, Q2 or Q3.
    pub query: &'static str,
    /// Cayuga-side wall-clock time.
    pub cayuga: Duration,
    /// Cayuga-side output count (matches).
    pub cayuga_outputs: usize,
    /// Cache-side wall-clock time.
    pub cache: Duration,
    /// Cache-side output count (publishes + sends).
    pub cache_outputs: usize,
}

impl ComparisonRow {
    /// How many times faster the cache side is (the paper reports ~10×,
    /// ~2× and ~50× for Q1–Q3).
    pub fn speedup(&self) -> f64 {
        self.cayuga.as_secs_f64() / self.cache.as_secs_f64().max(f64::EPSILON)
    }
}

/// Materialise the synthetic dataset as tuples.
pub fn dataset(config: StockConfig) -> Vec<Tuple> {
    let schema = Arc::new(StockGenerator::schema());
    StockGenerator::new(config)
        .generate()
        .iter()
        .enumerate()
        .map(|(i, t)| Tuple::new(Arc::clone(&schema), t.to_scalars(), i as u64).expect("valid"))
        .collect()
}

/// Time one Cayuga query over the dataset.
pub fn run_cayuga(nfa: cayuga::Nfa, events: &[Tuple]) -> (usize, Duration) {
    let mut engine = Engine::new(nfa);
    let start = Instant::now();
    engine.run(events);
    (engine.matches().len(), start.elapsed())
}

/// Time one GAPL automaton over the dataset (VM over the in-memory window).
pub fn run_gapl(source: &str, events: &[Tuple]) -> (usize, Duration) {
    let program = Arc::new(gapl::compile(source).expect("the Fig. 18 automata compile"));
    let mut vm = Vm::new(program);
    let mut host = RecordingHost::default();
    vm.run_initialization(&mut host)
        .expect("initialization succeeds");
    let start = Instant::now();
    for event in events {
        vm.run_behavior("Stocks", event, &mut host)
            .expect("behavior execution succeeds");
    }
    let elapsed = start.elapsed();
    (host.sent.len() + host.published.len(), elapsed)
}

/// Run the full comparison on a dataset of `events` ticks.
pub fn run(config: StockConfig) -> Vec<ComparisonRow> {
    let events = dataset(config);
    let mut rows = Vec::new();

    let (cayuga_outputs, cayuga_time) = run_cayuga(q1_select_publish(), &events);
    let (cache_outputs, cache_time) = run_gapl(Q1_GAPL, &events);
    rows.push(ComparisonRow {
        query: "Q1",
        cayuga: cayuga_time,
        cayuga_outputs,
        cache: cache_time,
        cache_outputs,
    });

    let (cayuga_outputs, cayuga_time) = run_cayuga(q2_double_top(0.02), &events);
    let (cache_outputs, cache_time) = run_gapl(Q2_GAPL, &events);
    rows.push(ComparisonRow {
        query: "Q2",
        cayuga: cayuga_time,
        cayuga_outputs,
        cache: cache_time,
        cache_outputs,
    });

    let (cayuga_outputs, cayuga_time) = run_cayuga(q3_increasing_runs(3), &events);
    let (cache_outputs, cache_time) = run_gapl(Q3_GAPL, &events);
    rows.push(ComparisonRow {
        query: "Q3",
        cayuga: cayuga_time,
        cayuga_outputs,
        cache: cache_time,
        cache_outputs,
    });

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> StockConfig {
        StockConfig {
            events: 4_000,
            symbols: 10,
            ..StockConfig::default()
        }
    }

    #[test]
    fn all_fig18_automata_compile() {
        for source in [Q1_GAPL, Q2_GAPL, Q3_GAPL] {
            assert!(gapl::compile(source).is_ok());
        }
    }

    #[test]
    fn the_comparison_produces_three_rows_with_outputs_on_both_sides() {
        let rows = run(small_config());
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].query, "Q1");
        // Q1 is a pass-through: both sides emit one output per event.
        assert_eq!(rows[0].cayuga_outputs, 4_000);
        assert_eq!(rows[0].cache_outputs, 4_000);
        // Q3 finds runs on both sides (the NFA finds a superset).
        assert!(rows[2].cayuga_outputs >= rows[2].cache_outputs);
        assert!(rows[2].cache_outputs > 0);
        for row in &rows {
            assert!(row.speedup() > 0.0);
        }
    }

    #[test]
    fn the_q3_nfa_does_far_more_bookkeeping_than_the_single_pass_automaton() {
        // Timing claims belong to the release-mode figure run (recorded in
        // EXPERIMENTS.md); what must hold structurally is that the NFA keeps
        // many concurrent instances per partition while the automaton keeps
        // exactly one map entry per stock.
        let events = dataset(small_config());
        let mut engine = Engine::new(q3_increasing_runs(3));
        engine.run(&events);
        assert!(engine.instances_created() > events.len() as u64);
        assert!(engine.max_live_instances() > 10);

        let (outputs, elapsed) = run_gapl(Q3_GAPL, &events);
        assert!(outputs > 0);
        assert!(elapsed.as_secs_f64() > 0.0);
    }
}
