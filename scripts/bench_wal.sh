#!/usr/bin/env sh
# Durability performance snapshot: insert throughput with 16 concurrent
# clients into one durable persistent table, group commit vs one fsync
# per insert. Writes BENCH_wal.json at the repository root and fails if
# the group-commit speedup regresses below the 5x acceptance floor.
#
# Floors are enforced by the bench crate's `check_floor` binary: a
# missing file, missing key, or unparsable metric is a hard failure —
# a bench that did not produce its number must never count as a pass.
set -eu

cd "$(dirname "$0")/.."

echo "==> snapshot: BENCH_wal.json"
cargo run --release -p cep_bench --bin bench_wal

cargo run --release -q -p cep_bench --bin check_floor -- \
    BENCH_wal.json group_commit_speedup 5.0 \
    "group-commit speedup at 16 concurrent inserters"

echo "wal snapshot complete"
