//! # GAPL — the Glasgow Automaton Programming Language
//!
//! This crate implements the imperative automaton programming language that
//! sits at the heart of the unified publish/subscribe + stream-database
//! system described in *Sventek & Koliousis, "Unification of
//! Publish/Subscribe Systems and Stream Databases" (Middleware 2012)*.
//!
//! An automaton is a small imperative program with the general form
//!
//! ```text
//! subscribe f to Flows;
//! associate a with Allowances;
//!
//! int n, limit;
//!
//! initialization { ... }
//! behavior { ... }
//! ```
//!
//! The crate provides:
//!
//! * the event data model ([`event::Scalar`], [`event::Tuple`],
//!   [`event::Schema`]) shared with the cache and the RPC layer,
//! * a lexer ([`lexer`]), parser ([`parser`]) and AST ([`ast`]),
//! * a bytecode compiler ([`compiler`]) targeting a stack machine
//!   ([`vm::Vm`]),
//! * the built-in function library ([`builtins`]) including the aggregate
//!   types `sequence`, `map`, `window`, `identifier` and `iterator`
//!   ([`value`]),
//! * a [`vm::HostInterface`] trait through which automata interact with
//!   their environment (publishing tuples, sending notifications to the
//!   registering application, and reading/writing persistent tables).
//!
//! # Example
//!
//! Compile and run a trivial automaton against a scripted host:
//!
//! ```
//! use gapl::{compile, event::{Schema, AttrType, Tuple, Scalar}, vm::{Vm, RecordingHost}};
//! use std::sync::Arc;
//!
//! let src = r#"
//!     subscribe f to Flows;
//!     int total;
//!     initialization { total = 0; }
//!     behavior { total = total + f.nbytes; send(total); }
//! "#;
//! let program = compile(src)?;
//! let schema = Arc::new(Schema::new(
//!     "Flows",
//!     vec![("nbytes", AttrType::Int)],
//! )?);
//! let mut host = RecordingHost::default();
//! let mut vm = Vm::new(Arc::new(program));
//! vm.run_initialization(&mut host)?;
//! let tuple = Tuple::new(schema.clone(), vec![Scalar::Int(42)], 1)?;
//! vm.run_behavior("Flows", &tuple, &mut host)?;
//! assert_eq!(host.sent.len(), 1);
//! # Ok::<(), gapl::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod builtins;
pub mod compiler;
pub mod disasm;
pub mod error;
pub mod event;
pub mod lexer;
pub mod parser;
pub mod prefilter;
pub mod program;
pub mod token;
pub mod value;
pub mod vm;

pub use error::{Error, Result};
pub use prefilter::{Guard, GuardOp, Prefilter};
pub use program::Program;

/// Compile GAPL source text into an executable [`Program`].
///
/// This is the main entry point of the crate: it runs the lexer, the parser
/// and the bytecode compiler, and returns the compiled program together with
/// its subscriptions, associations and local-variable layout.
///
/// # Errors
///
/// Returns [`Error::Lex`], [`Error::Parse`] or [`Error::Compile`] when the
/// source is malformed.
///
/// # Example
///
/// ```
/// let program = gapl::compile(
///     "subscribe t to Timer; behavior { print('tick'); }",
/// )?;
/// assert_eq!(program.subscriptions()[0].topic, "Timer");
/// # Ok::<(), gapl::Error>(())
/// ```
pub fn compile(source: &str) -> Result<Program> {
    let tokens = lexer::lex(source)?;
    let ast = parser::parse(&tokens)?;
    compiler::compile_ast(&ast)
}
