//! The circular memory buffer backing ephemeral (stream) tables.
//!
//! Tuples inserted into ephemeral tables are stored in a bounded circular
//! buffer — this is the reason the component is called the *Cache* (§3,
//! footnote 1). When the buffer is full the oldest tuple is overwritten.

use std::collections::VecDeque;

/// A bounded FIFO buffer that silently discards its oldest element when a
/// push would exceed the capacity.
#[derive(Debug, Clone)]
pub struct CircularBuffer<T> {
    items: VecDeque<T>,
    capacity: usize,
    /// Total number of items ever pushed (including overwritten ones).
    pushed: u64,
}

impl<T> CircularBuffer<T> {
    /// Create a buffer holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "circular buffer capacity must be positive");
        CircularBuffer {
            items: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            pushed: 0,
        }
    }

    /// Append an item, evicting the oldest one if the buffer is full.
    /// Returns the evicted item, if any.
    pub fn push(&mut self, item: T) -> Option<T> {
        self.pushed += 1;
        let evicted = if self.items.len() == self.capacity {
            self.items.pop_front()
        } else {
            None
        };
        self.items.push_back(item);
        evicted
    }

    /// Number of items currently stored.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no items are stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total number of items ever pushed, including those overwritten.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Iterate oldest-to-newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Iterate oldest-to-newest starting at logical position `start`
    /// (clamped to the buffer length). Unlike `iter().skip(start)` this
    /// jumps straight to the position, so taking a small suffix of a
    /// large buffer costs O(suffix), not O(buffer).
    pub fn iter_from(&self, start: usize) -> impl Iterator<Item = &T> {
        let (a, b) = self.items.as_slices();
        let a_start = start.min(a.len());
        let b_start = start.saturating_sub(a.len()).min(b.len());
        a[a_start..].iter().chain(b[b_start..].iter())
    }

    /// The index of the partition point of `pred`: the first logical
    /// position whose item does *not* satisfy it. The buffer contents
    /// must already be partitioned (every item satisfying `pred` before
    /// every item that does not) — true for any monotone property of an
    /// append-only stream, such as "inserted at or before τ". Runs two
    /// binary searches, one per internal slice: O(log n).
    pub fn partition_point(&self, mut pred: impl FnMut(&T) -> bool) -> usize {
        let (a, b) = self.items.as_slices();
        let pa = a.partition_point(&mut pred);
        if pa < a.len() {
            pa
        } else {
            a.len() + b.partition_point(&mut pred)
        }
    }

    /// The most recently pushed item, if any.
    pub fn newest(&self) -> Option<&T> {
        self.items.back()
    }

    /// The oldest retained item, if any.
    pub fn oldest(&self) -> Option<&T> {
        self.items.front()
    }

    /// Remove all items.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = CircularBuffer::<i32>::new(0);
    }

    #[test]
    fn push_within_capacity_keeps_everything() {
        let mut b = CircularBuffer::new(4);
        for i in 0..3 {
            assert!(b.push(i).is_none());
        }
        assert_eq!(b.len(), 3);
        assert_eq!(b.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(b.oldest(), Some(&0));
        assert_eq!(b.newest(), Some(&2));
    }

    #[test]
    fn push_beyond_capacity_evicts_oldest() {
        let mut b = CircularBuffer::new(3);
        for i in 0..5 {
            b.push(i);
        }
        assert_eq!(b.len(), 3);
        assert_eq!(b.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(b.total_pushed(), 5);
        assert_eq!(b.capacity(), 3);
    }

    #[test]
    fn eviction_returns_the_displaced_item() {
        let mut b = CircularBuffer::new(1);
        assert_eq!(b.push('a'), None);
        assert_eq!(b.push('b'), Some('a'));
        assert_eq!(b.push('c'), Some('b'));
        assert_eq!(b.newest(), Some(&'c'));
    }

    #[test]
    fn iter_from_and_partition_point_agree_with_naive_scans() {
        // Exercise both the contiguous and the wrapped-around layout.
        for pushes in [3usize, 8, 13] {
            let mut b = CircularBuffer::new(8);
            for i in 0..pushes {
                b.push(i);
            }
            let all: Vec<usize> = b.iter().copied().collect();
            for start in 0..=b.len() + 2 {
                let fast: Vec<usize> = b.iter_from(start).copied().collect();
                let naive: Vec<usize> = all.iter().copied().skip(start).collect();
                assert_eq!(fast, naive, "pushes={pushes} start={start}");
            }
            for threshold in 0..pushes + 2 {
                let fast = b.partition_point(|&v| v < threshold);
                let naive = all.iter().filter(|&&v| v < threshold).count();
                assert_eq!(fast, naive, "pushes={pushes} threshold={threshold}");
            }
        }
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let mut b = CircularBuffer::new(2);
        b.push(1);
        b.push(2);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.total_pushed(), 2);
    }
}
