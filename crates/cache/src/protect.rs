//! The production protection layer's cache-side state: idempotency
//! tokens for exactly-once retries, and the per-client admission policy
//! the RPC reactor enforces.
//!
//! `connect_reconnecting` is an at-least-once transport: a reply lost
//! after the server applied a mutation leaves the client unable to tell
//! "never arrived" from "applied, ack lost". Idempotency tokens resolve
//! the ambiguity server-side. A client stamps every non-idempotent
//! mutation with `(client id, token seq)`; the cache remembers the
//! outcome in a **bounded per-client token table**, so a retry of the
//! same token returns the original outcome instead of applying the
//! mutation twice. For durable tables the token record is appended to
//! the write-ahead log **in the same critical section as the mutation it
//! covers** (same shard, same group-commit wave), which gives the
//! exactly-once guarantee across crash recovery: either both the
//! mutation and its token survive (the retry deduplicates) or neither
//! does (the mutation was never acknowledged and the retry re-applies it
//! once). Token frames ship over the replication stream like any other
//! record, so the guarantee also survives `promote()` failover.
//!
//! The table is bounded FIFO per client
//! ([`CacheBuilder::token_history`](crate::CacheBuilder::token_history)
//! entries, default [`crate::config::DEFAULT_TOKEN_HISTORY`]): a client
//! that retries a token older than its last `cap` mutations has fallen
//! so far behind that at-least-once is the honest contract again.

use std::collections::{HashMap, VecDeque};
use std::time::Duration;

use crate::error::{Error, Result};
use crate::wire::{WireReader, WireWriter};

/// An idempotency token: the identity of one logical mutation, stable
/// across retries. The client id is minted once per client process; the
/// sequence is a per-client counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IdemToken {
    /// The issuing client's (random) identity.
    pub client_id: u64,
    /// The client's token counter for this mutation.
    pub seq: u64,
}

/// The remembered outcome of a token-stamped mutation — everything
/// needed to re-materialise the original reply for a retry. Failed
/// mutations are *not* recorded: re-executing them is harmless (nothing
/// was applied) and re-evaluation gives the retry a chance to succeed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenOutcome {
    /// A `create table` succeeded.
    Created,
    /// A single-row insert/upsert succeeded.
    Inserted {
        /// Whether an existing keyed row was replaced.
        replaced: bool,
        /// The insertion timestamp the cache assigned.
        tstamp: u64,
    },
    /// A batch insert/upsert succeeded.
    InsertedBatch {
        /// One insertion timestamp per row, in row order.
        tstamps: Vec<u64>,
    },
}

pub(crate) fn encode_outcome(w: &mut WireWriter, outcome: &TokenOutcome) {
    match outcome {
        TokenOutcome::Created => w.put_u8(0),
        TokenOutcome::Inserted { replaced, tstamp } => {
            w.put_u8(1);
            w.put_bool(*replaced);
            w.put_u64(*tstamp);
        }
        TokenOutcome::InsertedBatch { tstamps } => {
            w.put_u8(2);
            w.put_u64s(tstamps);
        }
    }
}

pub(crate) fn decode_outcome(r: &mut WireReader<'_>) -> Result<TokenOutcome> {
    Ok(match r.get_u8()? {
        0 => TokenOutcome::Created,
        1 => TokenOutcome::Inserted {
            replaced: r.get_bool()?,
            tstamp: r.get_u64()?,
        },
        2 => TokenOutcome::InsertedBatch {
            tstamps: r.get_u64s()?,
        },
        other => Err(Error::protocol(format!(
            "unknown token outcome tag {other}"
        )))?,
    })
}

/// Multiplicative hasher for the token table's `u64` keys (random
/// client ids, sequential token seqs). The table sits on the insert
/// hot path — every tokened mutation pays one lookup and one record —
/// so a multiply-and-fold beats SipHash where DoS-resistant hashing
/// buys nothing: a client can only ever collide with itself, and its
/// FIFO budget bounds the damage at `cap` entries.
#[derive(Debug, Default, Clone, Copy)]
struct TokenHash(u64);

impl std::hash::Hasher for TokenHash {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 32;
    }
}

type TokenMap<V> = HashMap<u64, V, std::hash::BuildHasherDefault<TokenHash>>;

/// One client's remembered outcomes, FIFO-bounded.
#[derive(Debug, Default)]
struct ClientTokens {
    map: TokenMap<TokenOutcome>,
    /// Token seqs in record order — the eviction queue.
    order: VecDeque<u64>,
}

/// The bounded per-client token → outcome table. One per cache, behind
/// a mutex on [`CacheInner`](crate::cache); every operation is O(1).
#[derive(Debug)]
pub(crate) struct TokenTable {
    per_client: TokenMap<ClientTokens>,
    /// Per-client entry cap.
    cap: usize,
    /// Highest WAL LSN at which a token was recorded — the snapshot's
    /// token watermark, so checkpoint truncation never loses LSN ground.
    high_lsn: u64,
}

impl TokenTable {
    pub(crate) fn new(cap: usize) -> TokenTable {
        TokenTable {
            per_client: TokenMap::default(),
            cap: cap.max(1),
            high_lsn: 0,
        }
    }

    /// Remember `outcome` for `token`. Re-recording an existing token
    /// (snapshot + log replay overlap, replication re-delivery)
    /// overwrites in place without consuming a new FIFO slot.
    pub(crate) fn record(&mut self, token: IdemToken, outcome: TokenOutcome, lsn: u64) {
        self.high_lsn = self.high_lsn.max(lsn);
        let client = self.per_client.entry(token.client_id).or_default();
        if client.map.insert(token.seq, outcome).is_none() {
            client.order.push_back(token.seq);
            while client.order.len() > self.cap {
                if let Some(evicted) = client.order.pop_front() {
                    client.map.remove(&evicted);
                }
            }
        }
    }

    pub(crate) fn lookup(&self, token: IdemToken) -> Option<TokenOutcome> {
        self.per_client
            .get(&token.client_id)?
            .map
            .get(&token.seq)
            .cloned()
    }

    /// Total remembered outcomes across all clients.
    pub(crate) fn len(&self) -> usize {
        self.per_client.values().map(|c| c.map.len()).sum()
    }

    pub(crate) fn high_lsn(&self) -> u64 {
        self.high_lsn
    }

    pub(crate) fn set_high_lsn(&mut self, lsn: u64) {
        self.high_lsn = self.high_lsn.max(lsn);
    }

    /// Every entry in per-client FIFO order, for checkpoint snapshots.
    pub(crate) fn entries(&self) -> Vec<(u64, u64, TokenOutcome)> {
        let mut out = Vec::with_capacity(self.len());
        for (client_id, tokens) in &self.per_client {
            for seq in &tokens.order {
                if let Some(outcome) = tokens.map.get(seq) {
                    out.push((*client_id, *seq, outcome.clone()));
                }
            }
        }
        out
    }
}

/// Per-client admission policy, enforced by the RPC reactor
/// (`psrpc::reactor::ReactorServer`) per connection. The default is
/// fully permissive — every limit disabled — so protection is opt-in
/// via [`CacheBuilder::client_policy`](crate::CacheBuilder::client_policy).
///
/// The blocking `RpcServer` deliberately does **not** enforce the
/// policy: it is the semantic oracle of the differential protocol
/// suite, and admission control is a transport concern of the reactor.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClientPolicy {
    /// Sustained requests per second one connection may issue; 0
    /// disables the rate limit. Enforced with a token bucket refilled
    /// continuously, so short bursts up to `burst` are absorbed.
    pub max_requests_per_sec: u64,
    /// Bucket capacity for the request rate limit: how many requests a
    /// previously idle connection may issue back-to-back before the
    /// sustained rate applies. 0 means "same as the sustained rate".
    pub burst: u64,
    /// Sustained request-payload bytes per second one connection may
    /// send; 0 disables the byte quota.
    pub max_bytes_per_sec: u64,
    /// Decoded-but-unanswered requests one connection may queue before
    /// further requests are rejected with `Throttled`. Layered *under*
    /// the reactor's `max_pipeline_depth`: the pipeline cap parks the
    /// socket (backpressure), this cap answers with a typed rejection.
    /// 0 disables the cap.
    pub max_in_flight: usize,
    /// Outbound bytes (replies + notifications) the server will buffer
    /// for a connection that is not draining its socket before evicting
    /// it as a slow consumer. 0 disables eviction.
    pub max_outbox_bytes: usize,
}

impl ClientPolicy {
    /// The delay a throttled client should wait before retrying: one
    /// refill interval of the request bucket, clamped to [1ms, 1s].
    pub fn retry_after(&self) -> Duration {
        let ms = 1000u64
            .checked_div(self.max_requests_per_sec)
            .map_or(1, |interval| interval.clamp(1, 1000));
        Duration::from_millis(ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tok(c: u64, s: u64) -> IdemToken {
        IdemToken {
            client_id: c,
            seq: s,
        }
    }

    #[test]
    fn the_token_table_remembers_and_bounds_per_client() {
        let mut t = TokenTable::new(4);
        for s in 0..10 {
            t.record(tok(1, s), TokenOutcome::Created, s + 1);
        }
        // Only the newest 4 survive.
        assert_eq!(t.len(), 4);
        assert!(t.lookup(tok(1, 5)).is_none());
        assert_eq!(t.lookup(tok(1, 9)), Some(TokenOutcome::Created));
        assert_eq!(t.high_lsn(), 10);
        // A second client has its own budget.
        t.record(
            tok(2, 0),
            TokenOutcome::Inserted {
                replaced: false,
                tstamp: 7,
            },
            11,
        );
        assert_eq!(t.len(), 5);
        assert!(matches!(
            t.lookup(tok(2, 0)),
            Some(TokenOutcome::Inserted { tstamp: 7, .. })
        ));
        // Re-recording an existing token does not consume a slot.
        t.record(tok(1, 9), TokenOutcome::Created, 12);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn outcomes_round_trip_through_the_wire_encoding() {
        for outcome in [
            TokenOutcome::Created,
            TokenOutcome::Inserted {
                replaced: true,
                tstamp: 42,
            },
            TokenOutcome::InsertedBatch {
                tstamps: vec![1, 2, 3],
            },
        ] {
            let mut w = WireWriter::new();
            encode_outcome(&mut w, &outcome);
            let bytes = w.finish();
            let mut r = WireReader::new(&bytes);
            assert_eq!(decode_outcome(&mut r).unwrap(), outcome);
        }
    }

    #[test]
    fn the_default_policy_is_fully_permissive() {
        let p = ClientPolicy::default();
        assert_eq!(p.max_requests_per_sec, 0);
        assert_eq!(p.max_in_flight, 0);
        assert_eq!(p.max_outbox_bytes, 0);
        assert_eq!(p.retry_after(), Duration::from_millis(1));
        let limited = ClientPolicy {
            max_requests_per_sec: 200,
            ..ClientPolicy::default()
        };
        assert_eq!(limited.retry_after(), Duration::from_millis(5));
    }
}
