//! Unified observability: lock-free latency histograms, counters, a
//! slow-op ring buffer, and a Prometheus-style exposition surface.
//!
//! Every prior subsystem reported telemetry through its own counter
//! struct (`WalStats`, `ReplStats`, `DispatchStats`, `ServerStats`…) —
//! counts only, no distributions, no machine-scrapeable format. This
//! module is the common sink those paths now record into:
//!
//! * [`LatencyHistogram`] — a **log-linear** (HDR-style) histogram of
//!   fixed power-of-two bucket ranges over `AtomicU64` cells. Recording
//!   is one index computation plus three relaxed `fetch_add`s; there is
//!   no lock anywhere, so writers never wait on readers and snapshots
//!   never stop writers. Buckets below [`SUB_BUCKETS`] are exact; above
//!   that each power-of-two octave is split into [`SUB_BUCKETS`] linear
//!   sub-buckets (≤ 12.5% relative error). Values past the top bucket
//!   saturate into it rather than being dropped.
//! * [`Obs`] — the per-cache registry: a fixed, statically named set of
//!   histograms and counters (see [`Obs::snapshot`] for the catalog)
//!   plus the slow-op log. Construct via [`Obs::new`]; when built
//!   disabled every `record` degenerates to one relaxed bool load.
//! * [`SlowOpLog`] — a bounded ring of the most recent operations whose
//!   end-to-end service time exceeded
//!   [`CacheBuilder::slow_op_threshold`](crate::CacheBuilder::slow_op_threshold),
//!   each carrying the client-stamped trace id and the per-stage
//!   (queue-wait / execute / reply-flush) breakdown the reactor
//!   measured.
//! * [`MetricsSnapshot`] — a point-in-time copy, mergeable across
//!   partitions, wire-encodable (`Request::Metrics` on the RPC layer),
//!   and renderable to Prometheus text exposition format that parses
//!   back **losslessly** into the same snapshot
//!   ([`MetricsSnapshot::from_prometheus`]).
//!
//! All durations are recorded in **nanoseconds**; the exposition keeps
//! nanosecond integers (metric names end in `_ns`) so the text format
//! round-trips exactly.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Number of linear sub-buckets per power-of-two octave (and the size
/// of the exact low range). Eight gives ≤ 12.5% relative bucket width.
pub const SUB_BUCKETS: usize = 8;
/// Total bucket count per histogram. 256 buckets at 8 sub-buckets per
/// octave cover values up to roughly 2^34 ns (~17 s); anything larger
/// saturates into the top bucket.
pub const NUM_BUCKETS: usize = 256;
/// Capacity of the slow-op ring buffer: old entries are overwritten.
pub const SLOW_OP_CAPACITY: usize = 64;

/// Map a value to its bucket index. Exact below [`SUB_BUCKETS`];
/// log-linear above; saturating at [`NUM_BUCKETS`]` - 1`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let exp = msb - SUB_BUCKETS.trailing_zeros();
    let sub = (v >> exp) as usize & (SUB_BUCKETS - 1);
    ((exp as usize + 1) * SUB_BUCKETS + sub).min(NUM_BUCKETS - 1)
}

/// Inclusive lower bound of bucket `i` — the smallest value that lands
/// in it. The bucket's upper bound is `bucket_lower_bound(i + 1) - 1`.
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        return i as u64;
    }
    let exp = (i / SUB_BUCKETS - 1) as u32;
    let sub = (i % SUB_BUCKETS) as u64;
    (SUB_BUCKETS as u64 + sub) << exp
}

/// A lock-free log-linear latency histogram. Record with
/// [`record`](Self::record); read with [`snapshot`](Self::snapshot) —
/// neither ever blocks the other.
pub struct LatencyHistogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Record one value (nanoseconds). Three relaxed `fetch_add`s.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record a [`Duration`] in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Point-in-time copy. Concurrent recorders may land between the
    /// bucket reads — the snapshot is consistent per-cell, not frozen —
    /// which is the standard trade for never pausing the hot path.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i as u32, n));
            }
        }
        HistogramSnapshot {
            name: name.to_owned(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A point-in-time copy of one histogram, sparse (only non-empty
/// buckets), ordered by bucket index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registry name, e.g. `rpc_execute_queue_ns`.
    pub name: String,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values (nanoseconds).
    pub sum: u64,
    /// `(bucket index, count)` pairs for non-empty buckets, ascending.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// The value at quantile `q` in `[0, 1]`, reported as the lower
    /// bound of the bucket holding that rank (0 when empty). Within
    /// bucket resolution, `quantile(0.5) <= quantile(0.99)` always.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_lower_bound(i as usize);
            }
        }
        bucket_lower_bound(NUM_BUCKETS - 1)
    }

    /// Mean recorded value, 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Fold another snapshot of the *same* histogram into this one
    /// (cross-partition aggregation).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        let mut merged: Vec<(u32, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, na)), Some(&&(ib, nb))) => {
                    if ia == ib {
                        merged.push((ia, na + nb));
                        a.next();
                        b.next();
                    } else if ia < ib {
                        merged.push((ia, na));
                        a.next();
                    } else {
                        merged.push((ib, nb));
                        b.next();
                    }
                }
                (Some(_), None) => {
                    merged.extend(a.copied());
                    break;
                }
                (None, Some(_)) => {
                    merged.extend(b.copied());
                    break;
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }
}

/// The request kinds the RPC layer distinguishes when recording
/// per-request-type service time. `Control` covers ping / stats /
/// health / metrics — the cheap introspection requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum ReqKind {
    /// `Request::Execute` (SQL, including selects).
    Execute = 0,
    /// `Request::Insert`.
    Insert = 1,
    /// `Request::InsertBatch`.
    InsertBatch = 2,
    /// `Request::RegisterAutomaton`.
    Register = 3,
    /// `Request::UnregisterAutomaton`.
    Unregister = 4,
    /// Ping / ServerStats / Health / Metrics.
    Control = 5,
}

/// Number of [`ReqKind`] variants.
pub const REQ_KINDS: usize = 6;

impl ReqKind {
    /// Stable lower-case name used in metric names and the slow-op log.
    pub fn name(self) -> &'static str {
        KIND_NAMES[self as usize]
    }
}

const KIND_NAMES: [&str; REQ_KINDS] = [
    "execute",
    "insert",
    "insert_batch",
    "register",
    "unregister",
    "control",
];

/// The three reactor stages of one request's life.
const STAGE_NAMES: [&str; 3] = ["queue", "execute", "flush"];

/// One completed operation's stage breakdown, as measured by the
/// reactor: decode → worker pickup (`queue_ns`), `handle_request`
/// (`exec_ns`), outbox append → socket flush (`flush_ns`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpTrace {
    /// Client-stamped trace id (0 when the client did not stamp one).
    pub trace_id: u64,
    /// Request kind.
    pub kind: ReqKind,
    /// Table the request addressed, when it addressed one.
    pub table: Option<String>,
    /// Time spent decoded-but-unclaimed in the connection inbox.
    pub queue_ns: u64,
    /// Time spent inside `handle_request` on a worker.
    pub exec_ns: u64,
    /// Time from reply append to the flush that drained it.
    pub flush_ns: u64,
}

impl OpTrace {
    /// End-to-end service time.
    pub fn total_ns(&self) -> u64 {
        self.queue_ns + self.exec_ns + self.flush_ns
    }
}

/// Bounded ring of recent slow operations; old entries are evicted.
pub struct SlowOpLog {
    ring: Mutex<std::collections::VecDeque<OpTrace>>,
}

impl Default for SlowOpLog {
    fn default() -> Self {
        SlowOpLog {
            ring: Mutex::new(std::collections::VecDeque::with_capacity(SLOW_OP_CAPACITY)),
        }
    }
}

impl SlowOpLog {
    fn push(&self, op: OpTrace) {
        let mut ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        if ring.len() == SLOW_OP_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(op);
    }

    /// Copy of the ring, oldest first.
    pub fn entries(&self) -> Vec<OpTrace> {
        self.ring
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .cloned()
            .collect()
    }
}

/// The per-cache metrics registry: every instrumented path records
/// here. The metric set is fixed at compile time — no name hashing on
/// the hot path, just field access plus `fetch_add`.
pub struct Obs {
    enabled: AtomicBool,
    slow_op_threshold_ns: u64,
    /// `[kind][stage]` — RPC service time split per request type.
    rpc: [[LatencyHistogram; 3]; REQ_KINDS],
    /// Requests completed, per kind (the differential-test surface).
    rpc_requests: [AtomicU64; REQ_KINDS],
    /// WAL: buffered append duration (under the shard lock).
    pub wal_append_ns: LatencyHistogram,
    /// WAL: time a committer waited for its group-commit ticket.
    pub wal_commit_wait_ns: LatencyHistogram,
    /// WAL: `sync_data` (fsync) duration.
    pub wal_fsync_ns: LatencyHistogram,
    /// Plan execution time of `select` / cached selects.
    pub select_ns: LatencyHistogram,
    /// Publish-to-pickup latency of automaton event dispatch.
    pub dispatch_queue_ns: LatencyHistogram,
    /// Records a follower was behind its primary at each apply.
    pub repl_apply_lag: LatencyHistogram,
    /// Slow consumers torn down for an over-limit outbox.
    pub slow_consumer_evictions: AtomicU64,
    /// Automata unregistered (explicitly or by connection teardown).
    pub automaton_unregistrations: AtomicU64,
    /// Operations that crossed the slow-op threshold.
    pub slow_ops_recorded: AtomicU64,
    /// The slow-op ring buffer.
    pub slow_ops: SlowOpLog,
}

impl Obs {
    /// Build a registry. A disabled registry keeps every `record` call
    /// a single relaxed load.
    pub fn new(enabled: bool, slow_op_threshold: Duration) -> Obs {
        Obs {
            enabled: AtomicBool::new(enabled),
            slow_op_threshold_ns: u64::try_from(slow_op_threshold.as_nanos()).unwrap_or(u64::MAX),
            rpc: std::array::from_fn(|_| std::array::from_fn(|_| LatencyHistogram::default())),
            rpc_requests: std::array::from_fn(|_| AtomicU64::new(0)),
            wal_append_ns: LatencyHistogram::default(),
            wal_commit_wait_ns: LatencyHistogram::default(),
            wal_fsync_ns: LatencyHistogram::default(),
            select_ns: LatencyHistogram::default(),
            dispatch_queue_ns: LatencyHistogram::default(),
            repl_apply_lag: LatencyHistogram::default(),
            slow_consumer_evictions: AtomicU64::new(0),
            automaton_unregistrations: AtomicU64::new(0),
            slow_ops_recorded: AtomicU64::new(0),
            slow_ops: SlowOpLog::default(),
        }
    }

    /// Whether instrumentation is live. Callers gate `Instant::now()`
    /// pairs on this so `CacheBuilder::metrics(false)` removes even the
    /// clock reads from the hot paths.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Count one completed request of `kind`.
    #[inline]
    pub fn count_request(&self, kind: ReqKind) {
        if self.enabled() {
            self.rpc_requests[kind as usize].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Completed requests of `kind` so far.
    pub fn requests(&self, kind: ReqKind) -> u64 {
        self.rpc_requests[kind as usize].load(Ordering::Relaxed)
    }

    /// Record a completed RPC's stage breakdown and, when it crossed
    /// the slow-op threshold, append it to the slow-op log.
    pub fn record_rpc(&self, op: OpTrace) {
        if !self.enabled() {
            return;
        }
        let k = op.kind as usize;
        self.rpc[k][0].record(op.queue_ns);
        self.rpc[k][1].record(op.exec_ns);
        self.rpc[k][2].record(op.flush_ns);
        if op.total_ns() >= self.slow_op_threshold_ns {
            self.slow_ops_recorded.fetch_add(1, Ordering::Relaxed);
            self.slow_ops.push(op);
        }
    }

    /// Record a duration into `hist` only when instrumentation is on.
    #[inline]
    pub fn record_if_enabled(&self, hist: &LatencyHistogram, d: Duration) {
        if self.enabled() {
            hist.record_duration(d);
        }
    }

    /// The full catalog as a point-in-time snapshot. Only histograms
    /// with at least one recorded value are included, so an idle node's
    /// exposition stays small.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = Vec::new();
        for (k, name) in KIND_NAMES.iter().enumerate() {
            let n = self.rpc_requests[k].load(Ordering::Relaxed);
            if n > 0 {
                counters.push((format!("rpc_requests_{name}"), n));
            }
        }
        counters.push((
            "slow_consumer_evictions".to_owned(),
            self.slow_consumer_evictions.load(Ordering::Relaxed),
        ));
        counters.push((
            "automaton_unregistrations".to_owned(),
            self.automaton_unregistrations.load(Ordering::Relaxed),
        ));
        counters.push((
            "slow_ops_recorded".to_owned(),
            self.slow_ops_recorded.load(Ordering::Relaxed),
        ));
        let mut histograms = Vec::new();
        for (k, kind) in KIND_NAMES.iter().enumerate() {
            for (s, stage) in STAGE_NAMES.iter().enumerate() {
                let snap = self.rpc[k][s].snapshot(&format!("rpc_{kind}_{stage}_ns"));
                if snap.count > 0 {
                    histograms.push(snap);
                }
            }
        }
        for (hist, name) in [
            (&self.wal_append_ns, "wal_append_ns"),
            (&self.wal_commit_wait_ns, "wal_commit_wait_ns"),
            (&self.wal_fsync_ns, "wal_fsync_ns"),
            (&self.select_ns, "select_ns"),
            (&self.dispatch_queue_ns, "dispatch_queue_ns"),
            (&self.repl_apply_lag, "repl_apply_lag_records"),
        ] {
            let snap = hist.snapshot(name);
            if snap.count > 0 {
                histograms.push(snap);
            }
        }
        MetricsSnapshot {
            counters,
            histograms,
        }
    }
}

/// A typed, mergeable, wire-encodable snapshot of one node's registry.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs; names are `[a-z0-9_]`.
    pub counters: Vec<(String, u64)>,
    /// Per-histogram snapshots.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Fold `other` into `self` by metric name — the cross-partition
    /// aggregation behind `ClusterClient::metrics_all`.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine += v,
                None => self.counters.push((name.clone(), *v)),
            }
        }
        for h in &other.histograms {
            match self.histograms.iter_mut().find(|m| m.name == h.name) {
                Some(mine) => mine.merge(h),
                None => self.histograms.push(h.clone()),
            }
        }
    }

    /// Wire encoding: length-prefixed names, sparse buckets. The RPC
    /// layer frames this inside `CacheReply::Metrics`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        fn put_str(buf: &mut Vec<u8>, s: &str) {
            buf.extend_from_slice(&(s.len() as u32).to_be_bytes());
            buf.extend_from_slice(s.as_bytes());
        }
        buf.extend_from_slice(&(self.counters.len() as u32).to_be_bytes());
        for (name, v) in &self.counters {
            put_str(buf, name);
            buf.extend_from_slice(&v.to_be_bytes());
        }
        buf.extend_from_slice(&(self.histograms.len() as u32).to_be_bytes());
        for h in &self.histograms {
            put_str(buf, &h.name);
            buf.extend_from_slice(&h.count.to_be_bytes());
            buf.extend_from_slice(&h.sum.to_be_bytes());
            buf.extend_from_slice(&(h.buckets.len() as u32).to_be_bytes());
            for &(i, n) in &h.buckets {
                buf.extend_from_slice(&i.to_be_bytes());
                buf.extend_from_slice(&n.to_be_bytes());
            }
        }
    }

    /// Decode the wire form. Returns `None` on any truncation or
    /// malformed field — the RPC layer maps that to a protocol error.
    pub fn decode_from(buf: &[u8], pos: &mut usize) -> Option<MetricsSnapshot> {
        fn get_u32(buf: &[u8], pos: &mut usize) -> Option<u32> {
            let b = buf.get(*pos..*pos + 4)?;
            *pos += 4;
            Some(u32::from_be_bytes(b.try_into().ok()?))
        }
        fn get_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
            let b = buf.get(*pos..*pos + 8)?;
            *pos += 8;
            Some(u64::from_be_bytes(b.try_into().ok()?))
        }
        fn get_str(buf: &[u8], pos: &mut usize) -> Option<String> {
            let len = get_u32(buf, pos)? as usize;
            let b = buf.get(*pos..*pos + len)?;
            *pos += len;
            String::from_utf8(b.to_vec()).ok()
        }
        let n_counters = get_u32(buf, pos)?;
        let mut counters = Vec::with_capacity(n_counters.min(1 << 16) as usize);
        for _ in 0..n_counters {
            let name = get_str(buf, pos)?;
            let v = get_u64(buf, pos)?;
            counters.push((name, v));
        }
        let n_hists = get_u32(buf, pos)?;
        let mut histograms = Vec::with_capacity(n_hists.min(1 << 16) as usize);
        for _ in 0..n_hists {
            let name = get_str(buf, pos)?;
            let count = get_u64(buf, pos)?;
            let sum = get_u64(buf, pos)?;
            let n_buckets = get_u32(buf, pos)?;
            let mut buckets = Vec::with_capacity(n_buckets.min(NUM_BUCKETS as u32) as usize);
            for _ in 0..n_buckets {
                let i = get_u32(buf, pos)?;
                if i as usize >= NUM_BUCKETS {
                    return None;
                }
                let n = get_u64(buf, pos)?;
                buckets.push((i, n));
            }
            histograms.push(HistogramSnapshot {
                name,
                count,
                sum,
                buckets,
            });
        }
        Some(MetricsSnapshot {
            counters,
            histograms,
        })
    }

    /// Render to Prometheus text exposition format. Counters become
    /// `pscache_<name>_total`; histograms become conventional
    /// cumulative `_bucket{le=...}` series (le in integer nanoseconds,
    /// the bucket's exclusive upper bound) plus `_sum` and `_count`.
    /// Empty buckets are skipped — the cumulative form preserves them.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE pscache_{name} counter");
            let _ = writeln!(out, "pscache_{name}_total {v}");
        }
        for h in &self.histograms {
            let _ = writeln!(out, "# TYPE pscache_{} histogram", h.name);
            let mut cum = 0u64;
            for &(i, n) in &h.buckets {
                cum += n;
                let le = bucket_lower_bound(i as usize + 1);
                let _ = writeln!(out, "pscache_{}_bucket{{le=\"{le}\"}} {cum}", h.name);
            }
            let _ = writeln!(out, "pscache_{}_bucket{{le=\"+Inf\"}} {}", h.name, h.count);
            let _ = writeln!(out, "pscache_{}_sum {}", h.name, h.sum);
            let _ = writeln!(out, "pscache_{}_count {}", h.name, h.count);
        }
        out
    }

    /// Parse text produced by [`to_prometheus`](Self::to_prometheus)
    /// back into the typed form. Lossless for our own output (the
    /// round-trip is asserted in tests); returns `None` on text this
    /// renderer could not have produced.
    pub fn from_prometheus(text: &str) -> Option<MetricsSnapshot> {
        let mut snap = MetricsSnapshot::default();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (series, value) = line.rsplit_once(' ')?;
            let series = series.strip_prefix("pscache_")?;
            if let Some((name, le)) = series
                .split_once("_bucket{le=\"")
                .and_then(|(n, rest)| Some((n, rest.strip_suffix("\"}")?)))
            {
                let hist = take_hist(&mut snap, name);
                let cum: u64 = value.parse().ok()?;
                if le == "+Inf" {
                    continue; // redundant with the _count line
                }
                let le: u64 = le.parse().ok()?;
                // le is the exclusive upper bound, so le - 1 is the
                // largest value in the bucket it closes.
                let idx = bucket_index(le.checked_sub(1)?) as u32;
                let prior: u64 = hist.buckets.iter().map(|&(_, n)| n).sum();
                let n = cum.checked_sub(prior)?;
                if n > 0 {
                    hist.buckets.push((idx, n));
                }
            } else if let Some(name) = series.strip_suffix("_sum") {
                take_hist(&mut snap, name).sum = value.parse().ok()?;
            } else if let Some(name) = series.strip_suffix("_count") {
                take_hist(&mut snap, name).count = value.parse().ok()?;
            } else if let Some(name) = series.strip_suffix("_total") {
                snap.counters.push((name.to_owned(), value.parse().ok()?));
            } else {
                return None;
            }
        }
        return Some(snap);

        fn take_hist<'a>(snap: &'a mut MetricsSnapshot, name: &str) -> &'a mut HistogramSnapshot {
            if let Some(i) = snap.histograms.iter().position(|h| h.name == name) {
                return &mut snap.histograms[i];
            }
            snap.histograms.push(HistogramSnapshot {
                name: name.to_owned(),
                count: 0,
                sum: 0,
                buckets: Vec::new(),
            });
            snap.histograms.last_mut().expect("just pushed")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_boundaries_are_exact_low_and_log_linear_high() {
        // The low range is exact.
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower_bound(v as usize), v);
        }
        // Every bucket's lower bound maps back to that bucket, and
        // one-past-the-upper-bound maps to the next.
        for i in SUB_BUCKETS..NUM_BUCKETS - 1 {
            let lo = bucket_lower_bound(i);
            let hi = bucket_lower_bound(i + 1) - 1;
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
            assert_eq!(bucket_index(hi + 1), i + 1);
        }
        // Relative bucket width in the log-linear range is <= 1/8.
        let i = bucket_index(1_000_000);
        let width = bucket_lower_bound(i + 1) - bucket_lower_bound(i);
        assert!(width as f64 / 1_000_000.0 <= 0.125 + 1e-9);
    }

    #[test]
    fn the_top_bucket_saturates() {
        let h = LatencyHistogram::default();
        h.record(u64::MAX);
        h.record(u64::MAX / 2);
        let snap = h.snapshot("t");
        assert_eq!(snap.count, 2);
        assert_eq!(snap.buckets, vec![((NUM_BUCKETS - 1) as u32, 2)]);
    }

    #[test]
    fn quantiles_order_and_track_the_data() {
        let h = LatencyHistogram::default();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1us..1ms
        }
        let snap = h.snapshot("t");
        let (p50, p99) = (snap.quantile(0.5), snap.quantile(0.99));
        assert!(p50 < p99, "p50={p50} p99={p99}");
        // Within one log-linear bucket (12.5%) of the true quantiles.
        assert!((p50 as f64 - 500_000.0).abs() / 500_000.0 < 0.13);
        assert!((p99 as f64 - 990_000.0).abs() / 990_000.0 < 0.13);
        assert_eq!(
            snap.mean(),
            (1..=1000u64).map(|v| v * 1000).sum::<u64>() / 1000
        );
    }

    #[test]
    fn concurrent_recorders_lose_nothing() {
        let h = Arc::new(LatencyHistogram::default());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for v in 0..10_000u64 {
                        h.record(v * 17 + t);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = h.snapshot("t");
        assert_eq!(snap.count, 80_000);
        assert_eq!(snap.buckets.iter().map(|&(_, n)| n).sum::<u64>(), 80_000);
    }

    #[test]
    fn merge_sums_counts_and_interleaves_buckets() {
        let a = LatencyHistogram::default();
        let b = LatencyHistogram::default();
        a.record(3);
        a.record(1 << 20);
        b.record(3);
        b.record(1 << 10);
        let mut sa = a.snapshot("t");
        let sb = b.snapshot("t");
        sa.merge(&sb);
        assert_eq!(sa.count, 4);
        assert_eq!(sa.sum, 3 + (1 << 20) + 3 + (1 << 10));
        assert_eq!(sa.buckets.iter().map(|&(_, n)| n).sum::<u64>(), 4);
        assert_eq!(
            sa.buckets.iter().find(|&&(i, _)| i == 3).map(|&(_, n)| n),
            Some(2)
        );
        // Still sorted by bucket index.
        assert!(sa.buckets.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let obs = Obs::new(false, Duration::from_millis(1));
        obs.count_request(ReqKind::Insert);
        obs.record_rpc(OpTrace {
            trace_id: 9,
            kind: ReqKind::Insert,
            table: None,
            queue_ns: 1,
            exec_ns: 1,
            flush_ns: 1,
        });
        obs.record_if_enabled(&obs.select_ns, Duration::from_secs(1));
        let snap = obs.snapshot();
        assert!(snap.histograms.is_empty());
        assert_eq!(snap.counter("slow_ops_recorded"), Some(0));
        assert_eq!(obs.requests(ReqKind::Insert), 0);
    }

    #[test]
    fn slow_ops_cross_the_threshold_into_a_bounded_ring() {
        let obs = Obs::new(true, Duration::from_micros(10));
        for i in 0..SLOW_OP_CAPACITY as u64 + 5 {
            obs.record_rpc(OpTrace {
                trace_id: i,
                kind: ReqKind::Execute,
                table: Some("T".into()),
                queue_ns: 4_000,
                exec_ns: 5_000,
                flush_ns: 2_000,
            });
        }
        // A fast op never lands in the ring.
        obs.record_rpc(OpTrace {
            trace_id: 999,
            kind: ReqKind::Execute,
            table: None,
            queue_ns: 10,
            exec_ns: 10,
            flush_ns: 10,
        });
        let entries = obs.slow_ops.entries();
        assert_eq!(entries.len(), SLOW_OP_CAPACITY);
        // Oldest evicted, newest retained, fast op absent.
        assert_eq!(entries.first().unwrap().trace_id, 5);
        assert_eq!(
            entries.last().unwrap().trace_id,
            SLOW_OP_CAPACITY as u64 + 4
        );
        assert!(entries.iter().all(|e| e.trace_id != 999));
        assert_eq!(
            obs.snapshot().counter("slow_ops_recorded"),
            Some(SLOW_OP_CAPACITY as u64 + 5)
        );
    }

    fn busy_snapshot() -> MetricsSnapshot {
        let obs = Obs::new(true, Duration::from_secs(1));
        obs.count_request(ReqKind::Execute);
        obs.count_request(ReqKind::Execute);
        obs.count_request(ReqKind::Insert);
        obs.record_rpc(OpTrace {
            trace_id: 1,
            kind: ReqKind::Execute,
            table: None,
            queue_ns: 1_500,
            exec_ns: 80_000,
            flush_ns: 900,
        });
        obs.wal_fsync_ns.record(2_000_000);
        obs.select_ns.record(0);
        obs.select_ns.record(123);
        obs.repl_apply_lag.record(1);
        obs.snapshot()
    }

    #[test]
    fn wire_encoding_round_trips() {
        let snap = busy_snapshot();
        let mut buf = Vec::new();
        snap.encode_into(&mut buf);
        let mut pos = 0;
        let back = MetricsSnapshot::decode_from(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(back, snap);
        // Truncations never panic, they fail.
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(MetricsSnapshot::decode_from(&buf[..cut], &mut pos).is_none());
        }
    }

    #[test]
    fn prometheus_text_round_trips_through_the_typed_snapshot() {
        let snap = busy_snapshot();
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE pscache_rpc_requests_execute counter"));
        assert!(text.contains("pscache_rpc_requests_execute_total 2"));
        assert!(text.contains("# TYPE pscache_select_ns histogram"));
        assert!(text.contains("le=\"+Inf\""));
        let back = MetricsSnapshot::from_prometheus(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn merged_snapshots_aggregate_across_partitions() {
        let mut a = busy_snapshot();
        let b = busy_snapshot();
        a.merge(&b);
        assert_eq!(a.counter("rpc_requests_execute"), Some(4));
        assert_eq!(a.histogram("select_ns").unwrap().count, 4);
        assert_eq!(
            a.histogram("wal_fsync_ns").unwrap().sum,
            2 * b.histogram("wal_fsync_ns").unwrap().sum
        );
    }
}
