//! Cluster sharding: partition a table's rows across N primaries.
//!
//! Replication scales reads; this module scales **writes**. A cluster
//! is N ordinary [`Cache`](crate::Cache) instances — each with its own
//! WAL, group commit, checkpoint lifecycle and follower chain — plus
//! three pieces of pure coordination logic:
//!
//! * [`ring`] — the deterministic consistent-hash ring every node and
//!   client derives independently from the partition count alone.
//! * [`router`] — the row→partition ownership rule (routing key = the
//!   row's first column, i.e. its upsert primary key) and the
//!   [`ClusterSpec`] a partition server installs to *enforce* it:
//!   misrouted writes fail with
//!   [`Error::WrongPartition`](crate::Error::WrongPartition) carrying
//!   the owner index, which the RPC layer turns into a `NotMine`
//!   redirect.
//! * [`gather`] — scatter-gather query assembly: per-partition `since`
//!   windows merge by timestamp in one streaming k-way pass, and the
//!   full plan (predicate, order-by, group-by, aggregates, limit) is
//!   evaluated over the merged window by the very same
//!   [`QueryPlan`](crate::query) machinery the single-node path uses.
//!
//! [`bridge`] closes the pub/sub loop: automata are local to the node
//! they registered on, so each node bridges every *other* partition's
//! replication stream into its own dispatch layer — full-topic
//! subscriptions with per-partition ordering and LSN-deduplicated
//! exactly-once delivery, surviving partition-primary failover via
//! [`SubBridge::rebind`].
//!
//! The cluster-aware client (routing, fan-out, redirect handling)
//! lives in the RPC crate, which wraps these primitives around its
//! pipelined connections. See `docs/architecture.md` § "Cluster
//! sharding" for the full design, including the failover contract.

pub mod bridge;
pub mod gather;
pub mod ring;
pub mod router;

pub use bridge::SubBridge;
pub use gather::{evaluate_gathered, merge_by_tstamp, GatheredRow};
pub use ring::{HashRing, DEFAULT_VNODES};
pub use router::{routing_key, split_batch, ClusterSpec};
