//! Offline stand-in for the `proptest` crate.
//!
//! Supports the property-test surface this workspace uses: the
//! [`proptest!`] macro (with `#![proptest_config(...)]` and `arg in
//! strategy` bindings), [`Strategy`](strategy::Strategy) with `prop_map`,
//! [`prop_oneof!`], `any::<T>()`, numeric range strategies, tuple
//! strategies, [`collection::vec`] and simple character-class string
//! strategies (`"[a-z0-9]{0,40}"`).
//!
//! Unlike the real proptest there is **no shrinking** and no persisted
//! failure corpus: each test runs a fixed number of seeded-random cases
//! (deterministic per test name), and a failing case panics with the
//! assertion message. That keeps the dependency surface at zero while
//! preserving the falsification value of the properties.

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with a function.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies; built by [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// A union over the given options (at least one).
        ///
        /// # Panics
        ///
        /// Panics when `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let ix = rng.gen_range(0..self.options.len());
            self.options[ix].generate(rng)
        }
    }

    macro_rules! numeric_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    numeric_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

    macro_rules! inclusive_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    inclusive_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! { (A) (A, B) (A, B, C) (A, B, C, D) }

    /// Full-domain strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: rand::StandardSample> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen()
        }
    }

    /// A strategy producing values uniformly over `T`'s whole domain.
    pub fn any<T: rand::StandardSample>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }

    /// String strategies from character-class patterns: a `&str` literal
    /// like `"[a-z][a-z0-9]{0,12}"` is a strategy generating matching
    /// strings. Supported syntax: literal characters, `[...]` classes with
    /// `a-z` ranges (a trailing `-` is literal), and `{n}` / `{m,n}`
    /// repeat counts on the preceding element.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            let elements = parse_pattern(self);
            let mut out = String::new();
            for (charset, min, max) in &elements {
                let count = rng.gen_range(*min..=*max);
                for _ in 0..count {
                    out.push(charset[rng.gen_range(0..charset.len())]);
                }
            }
            out
        }
    }

    /// One pattern element: candidate characters plus repeat bounds.
    type PatternElement = (Vec<char>, usize, usize);

    fn parse_pattern(pattern: &str) -> Vec<PatternElement> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut elements: Vec<PatternElement> = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let charset = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|c| *c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pattern}`"));
                let class = &chars[i + 1..close];
                i = close + 1;
                expand_class(class)
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|c| *c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{pattern}`"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("repeat lower bound"),
                        hi.trim().parse().expect("repeat upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(!charset.is_empty(), "empty character class in `{pattern}`");
            elements.push((charset, min, max));
        }
        elements
    }

    fn expand_class(class: &[char]) -> Vec<char> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' && class[i] <= class[i + 2] {
                for c in class[i]..=class[i + 2] {
                    out.push(c);
                }
                i += 3;
            } else {
                out.push(class[i]);
                i += 1;
            }
        }
        out
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy returned by [`vec()`](self::vec).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generate vectors whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The (much simplified) case runner behind [`proptest!`](crate::proptest).

    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration; only the case count is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A test-case failure produced by `TestCaseError::fail` (assertion
    /// macros panic directly instead).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Fail the current case with a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// A deterministic generator derived from the test's fully qualified
    /// name, so every run explores the same cases.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut hasher = DefaultHasher::new();
        test_name.hash(&mut hasher);
        StdRng::seed_from_u64(hasher.finish())
    }
}

pub mod prelude {
    //! One-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` seeded-random instantiations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($config) $($rest)*);
    };
    (@expand ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::rng_for(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!("property `{}` failed at case {}: {}", stringify!($name), case, e);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = crate::test_runner::rng_for("ranges");
        let s = (-10i64..10).prop_map(|v| v * 2);
        for _ in 0..1000 {
            let v = s.generate(&mut rng);
            assert!((-20..20).contains(&v) && v % 2 == 0);
        }
    }

    #[test]
    fn string_patterns_match_their_class() {
        let mut rng = crate::test_runner::rng_for("strings");
        let s = "[a-c][0-9 ._:-]{0,5}";
        for _ in 0..500 {
            let text = s.generate(&mut rng);
            let mut chars = text.chars();
            let first = chars.next().unwrap();
            assert!(('a'..='c').contains(&first), "bad first char in {text:?}");
            assert!(text.len() <= 6);
            for c in chars {
                assert!(
                    c.is_ascii_digit() || " ._:-".contains(c),
                    "bad char {c:?} in {text:?}"
                );
            }
        }
    }

    #[test]
    fn oneof_covers_every_option() {
        let mut rng = crate::test_runner::rng_for("oneof");
        let s = prop_oneof![(0i64..1).prop_map(|_| 1i64), (0i64..1).prop_map(|_| 2i64)];
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[(s.generate(&mut rng) - 1) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::test_runner::rng_for("vecs");
        let s = crate::collection::vec(any::<u8>(), 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(a in 0i64..100, b in 0i64..100) {
            if a > 1000 {
                return Err(TestCaseError::fail("unreachable"));
            }
            prop_assert!(a + b >= a);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a - 1, a);
        }
    }
}
