//! The stack-machine interpreter that animates compiled automata.
//!
//! A [`Vm`] holds the mutable state of one automaton: its local variables
//! and the identity of the topic whose event is currently being processed.
//! All interaction with the outside world — publishing tuples into other
//! topics, sending notifications to the registering application, touching
//! persistent tables, reading the clock, printing — goes through the
//! [`HostInterface`] trait, so the VM is fully testable in isolation and the
//! cache can plug in its own host implementation.

use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;
use std::sync::Arc;

use crate::builtins::{self, BuiltinCtx};
use crate::error::{Error, Result};
use crate::event::{Scalar, Timestamp, Tuple};
use crate::program::{Const, Instr, LocalKind, Program};
use crate::value::Value;

/// The environment an automaton runs against.
///
/// The cache implements this trait to wire automata into tables and RPC
/// channels; tests use [`RecordingHost`].
pub trait HostInterface {
    /// Current time in nanoseconds since the epoch (`tstampNow()`).
    fn now(&self) -> Timestamp;

    /// Insert a tuple (already flattened to scalars) into the named topic.
    ///
    /// # Errors
    ///
    /// Implementations return an error if the topic does not exist or the
    /// values do not match its schema.
    fn publish(&mut self, topic: &str, values: Vec<Scalar>) -> Result<()>;

    /// Send a notification to the application that registered the automaton.
    ///
    /// # Errors
    ///
    /// Implementations return an error if the channel back to the
    /// application is gone.
    fn send(&mut self, values: Vec<Scalar>) -> Result<()>;

    /// Print a line on the cache's standard output (`print()`).
    fn print(&mut self, text: &str);

    /// Look up the row keyed by `key` in persistent table `table`.
    ///
    /// # Errors
    ///
    /// Implementations return an error if the table does not exist.
    fn assoc_lookup(&mut self, table: &str, key: &str) -> Result<Option<Vec<Scalar>>>;

    /// Insert (or update) the row keyed by `key` in persistent table `table`.
    ///
    /// # Errors
    ///
    /// Implementations return an error if the table does not exist or the
    /// values do not match its schema.
    fn assoc_insert(&mut self, table: &str, key: &str, values: Vec<Scalar>) -> Result<()>;

    /// Whether a row keyed by `key` exists in persistent table `table`.
    ///
    /// # Errors
    ///
    /// Implementations return an error if the table does not exist.
    fn assoc_has_entry(&mut self, table: &str, key: &str) -> Result<bool>;

    /// Remove the row keyed by `key` from persistent table `table`.
    ///
    /// # Errors
    ///
    /// Implementations return an error if the table does not exist.
    fn assoc_remove(&mut self, table: &str, key: &str) -> Result<()>;

    /// Number of rows in persistent table `table`.
    ///
    /// # Errors
    ///
    /// Implementations return an error if the table does not exist.
    fn assoc_size(&mut self, table: &str) -> Result<usize>;

    /// All keys of persistent table `table`, in primary-key order.
    ///
    /// # Errors
    ///
    /// Implementations return an error if the table does not exist.
    fn assoc_keys(&mut self, table: &str) -> Result<Vec<String>>;
}

/// An in-memory [`HostInterface`] that records every effect, for tests,
/// examples and benchmarks.
#[derive(Debug, Default)]
pub struct RecordingHost {
    /// Tuples published with `publish()`, as `(topic, values)` pairs.
    pub published: Vec<(String, Vec<Scalar>)>,
    /// Notifications sent with `send()`.
    pub sent: Vec<Vec<Scalar>>,
    /// Lines printed with `print()`.
    pub printed: Vec<String>,
    /// Persistent tables, keyed by table name then primary key.
    pub tables: HashMap<String, BTreeMap<String, Vec<Scalar>>>,
    /// The value returned by `now()`.
    pub clock: Timestamp,
}

impl RecordingHost {
    /// Create a host whose clock starts at `clock` nanoseconds.
    pub fn with_clock(clock: Timestamp) -> Self {
        RecordingHost {
            clock,
            ..Default::default()
        }
    }

    /// Pre-populate a persistent table row (e.g. an allowance).
    pub fn seed_table(&mut self, table: &str, key: &str, values: Vec<Scalar>) {
        self.tables
            .entry(table.to_owned())
            .or_default()
            .insert(key.to_owned(), values);
    }
}

impl HostInterface for RecordingHost {
    fn now(&self) -> Timestamp {
        self.clock
    }

    fn publish(&mut self, topic: &str, values: Vec<Scalar>) -> Result<()> {
        self.published.push((topic.to_owned(), values));
        Ok(())
    }

    fn send(&mut self, values: Vec<Scalar>) -> Result<()> {
        self.sent.push(values);
        Ok(())
    }

    fn print(&mut self, text: &str) {
        self.printed.push(text.to_owned());
    }

    fn assoc_lookup(&mut self, table: &str, key: &str) -> Result<Option<Vec<Scalar>>> {
        Ok(self
            .tables
            .get(table)
            .and_then(|rows| rows.get(key))
            .cloned())
    }

    fn assoc_insert(&mut self, table: &str, key: &str, values: Vec<Scalar>) -> Result<()> {
        self.tables
            .entry(table.to_owned())
            .or_default()
            .insert(key.to_owned(), values);
        Ok(())
    }

    fn assoc_has_entry(&mut self, table: &str, key: &str) -> Result<bool> {
        Ok(self
            .tables
            .get(table)
            .is_some_and(|rows| rows.contains_key(key)))
    }

    fn assoc_remove(&mut self, table: &str, key: &str) -> Result<()> {
        if let Some(rows) = self.tables.get_mut(table) {
            rows.remove(key);
        }
        Ok(())
    }

    fn assoc_size(&mut self, table: &str) -> Result<usize> {
        Ok(self.tables.get(table).map_or(0, BTreeMap::len))
    }

    fn assoc_keys(&mut self, table: &str) -> Result<Vec<String>> {
        Ok(self
            .tables
            .get(table)
            .map(|rows| rows.keys().cloned().collect())
            .unwrap_or_default())
    }
}

/// The stack-machine interpreter for one automaton instance.
#[derive(Debug)]
pub struct Vm {
    program: Arc<Program>,
    locals: Vec<Value>,
    current_topic: String,
    /// Total number of instructions executed, for diagnostics and benches.
    instructions_executed: u64,
}

impl Vm {
    /// Create an interpreter for `program` with default-initialised locals.
    pub fn new(program: Arc<Program>) -> Self {
        let locals = program
            .locals()
            .iter()
            .map(|local| match &local.kind {
                LocalKind::Subscription { .. } => Value::Null,
                LocalKind::Association { index } => Value::Assoc(*index),
                LocalKind::Declared(ty) => ty.default_value(),
            })
            .collect();
        Vm {
            program,
            locals,
            current_topic: String::new(),
            instructions_executed: 0,
        }
    }

    /// The compiled program this VM animates.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Number of bytecode instructions executed so far.
    pub fn instructions_executed(&self) -> u64 {
        self.instructions_executed
    }

    /// Current value of the named local variable, for tests and debugging.
    pub fn local(&self, name: &str) -> Option<&Value> {
        let ix = self.program.locals().iter().position(|l| l.name == name)?;
        self.locals.get(ix)
    }

    /// Execute the `initialization` clause once, before any event delivery.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors raised by the clause.
    pub fn run_initialization(&mut self, host: &mut dyn HostInterface) -> Result<()> {
        let code = Arc::clone(&self.program);
        self.execute(code.init_code(), host)
    }

    /// Deliver one event on `topic` and execute the `behavior` clause.
    ///
    /// The subscription variable(s) bound to `topic` are updated to refer to
    /// `event` before execution, and `currentTopic()` reports `topic`.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors raised by the clause.
    pub fn run_behavior(
        &mut self,
        topic: &str,
        event: &Tuple,
        host: &mut dyn HostInterface,
    ) -> Result<()> {
        let program = Arc::clone(&self.program);
        let mut subscribed = false;
        for sub in program.subscriptions() {
            if sub.topic == topic {
                self.locals[sub.slot] = Value::Event(Rc::new(event.clone()));
                subscribed = true;
            }
        }
        if !subscribed {
            return Err(Error::runtime(format!(
                "automaton is not subscribed to topic `{topic}`"
            )));
        }
        self.current_topic = topic.to_owned();
        self.execute(program.behavior_code(), host)
    }

    fn execute(&mut self, code: &[Instr], host: &mut dyn HostInterface) -> Result<()> {
        let mut stack: Vec<Value> = Vec::with_capacity(16);
        let mut pc = 0usize;
        let program = Arc::clone(&self.program);
        while pc < code.len() {
            self.instructions_executed += 1;
            match &code[pc] {
                Instr::PushConst(ix) => {
                    let v = match &program.consts()[*ix] {
                        Const::Int(i) => Value::Int(*i),
                        Const::Real(r) => Value::Real(*r),
                        Const::Str(s) => Value::string(s.clone()),
                        Const::Bool(b) => Value::Bool(*b),
                    };
                    stack.push(v);
                }
                Instr::LoadLocal(slot) => stack.push(self.locals[*slot].clone()),
                Instr::StoreLocal(slot) => {
                    let v = pop(&mut stack)?;
                    self.locals[*slot] = v;
                }
                Instr::LoadField { slot, name_const } => {
                    let field = match &program.consts()[*name_const] {
                        Const::Str(s) => s.clone(),
                        other => {
                            return Err(Error::runtime(format!(
                                "corrupt field-name constant {other:?}"
                            )))
                        }
                    };
                    let value = match &self.locals[*slot] {
                        Value::Event(t) => t.field(&field).map(Value::from).ok_or_else(|| {
                            Error::runtime(format!(
                                "event on `{}` has no attribute `{field}`",
                                t.schema().name()
                            ))
                        })?,
                        Value::Null => {
                            return Err(Error::runtime(format!(
                                "no event has been delivered for `{}` yet",
                                program.locals()[*slot].name
                            )))
                        }
                        other => {
                            return Err(Error::runtime(format!(
                                "field access on a {}",
                                other.type_name()
                            )))
                        }
                    };
                    stack.push(value);
                }
                Instr::Neg => {
                    let v = pop(&mut stack)?;
                    let out = match v {
                        Value::Int(i) => Value::Int(-i),
                        Value::Real(r) => Value::Real(-r),
                        other => {
                            return Err(Error::runtime(format!(
                                "cannot negate a {}",
                                other.type_name()
                            )))
                        }
                    };
                    stack.push(out);
                }
                Instr::Not => {
                    let v = pop(&mut stack)?;
                    stack.push(Value::Bool(!v.truthy()?));
                }
                Instr::Add => binary(&mut stack, add)?,
                Instr::Sub => binary(&mut stack, |a, b| {
                    numeric(a, b, "-", |x, y| x - y, |x, y| x.checked_sub(y))
                })?,
                Instr::Mul => binary(&mut stack, |a, b| {
                    numeric(a, b, "*", |x, y| x * y, |x, y| x.checked_mul(y))
                })?,
                Instr::Div => binary(&mut stack, div)?,
                Instr::Rem => binary(&mut stack, rem)?,
                Instr::CmpEq => binary(&mut stack, |a, b| Ok(Value::Bool(a.gapl_eq(&b))))?,
                Instr::CmpNe => binary(&mut stack, |a, b| Ok(Value::Bool(!a.gapl_eq(&b))))?,
                Instr::CmpLt => compare(&mut stack, |o| o == std::cmp::Ordering::Less)?,
                Instr::CmpLe => compare(&mut stack, |o| o != std::cmp::Ordering::Greater)?,
                Instr::CmpGt => compare(&mut stack, |o| o == std::cmp::Ordering::Greater)?,
                Instr::CmpGe => compare(&mut stack, |o| o != std::cmp::Ordering::Less)?,
                Instr::And => binary(&mut stack, |a, b| {
                    Ok(Value::Bool(a.truthy()? && b.truthy()?))
                })?,
                Instr::Or => binary(&mut stack, |a, b| {
                    Ok(Value::Bool(a.truthy()? || b.truthy()?))
                })?,
                Instr::Jump(target) => {
                    pc = *target;
                    continue;
                }
                Instr::JumpIfFalse(target) => {
                    let v = pop(&mut stack)?;
                    if !v.truthy()? {
                        pc = *target;
                        continue;
                    }
                }
                Instr::Pop => {
                    pop(&mut stack)?;
                }
                Instr::CallBuiltin { builtin, argc } => {
                    if stack.len() < *argc {
                        return Err(Error::runtime("operand stack underflow in call"));
                    }
                    let args = stack.split_off(stack.len() - argc);
                    let mut ctx = BuiltinCtx {
                        host,
                        current_topic: &self.current_topic,
                        program: &program,
                    };
                    let result = builtins::call(*builtin, args, &mut ctx)?;
                    stack.push(result);
                }
                Instr::Halt => break,
            }
            pc += 1;
        }
        Ok(())
    }
}

fn pop(stack: &mut Vec<Value>) -> Result<Value> {
    stack
        .pop()
        .ok_or_else(|| Error::runtime("operand stack underflow"))
}

fn binary(stack: &mut Vec<Value>, f: impl FnOnce(Value, Value) -> Result<Value>) -> Result<()> {
    let rhs = pop(stack)?;
    let lhs = pop(stack)?;
    let out = f(lhs, rhs)?;
    stack.push(out);
    Ok(())
}

fn compare(stack: &mut Vec<Value>, f: impl FnOnce(std::cmp::Ordering) -> bool) -> Result<()> {
    binary(stack, |a, b| Ok(Value::Bool(f(a.gapl_cmp(&b)?))))
}

fn is_int_like(v: &Value) -> bool {
    matches!(v, Value::Int(_) | Value::Tstamp(_) | Value::Bool(_))
}

fn add(a: Value, b: Value) -> Result<Value> {
    match (&a, &b) {
        (Value::Str(_) | Value::Identifier(_), _) | (_, Value::Str(_) | Value::Identifier(_)) => {
            Ok(Value::string(format!("{a}{b}")))
        }
        _ => numeric(a, b, "+", |x, y| x + y, |x, y| x.checked_add(y)),
    }
}

fn numeric(
    a: Value,
    b: Value,
    op: &str,
    real_op: impl FnOnce(f64, f64) -> f64,
    int_op: impl FnOnce(i64, i64) -> Option<i64>,
) -> Result<Value> {
    if is_int_like(&a) && is_int_like(&b) {
        let (x, y) = (a.as_int().expect("int-like"), b.as_int().expect("int-like"));
        return int_op(x, y)
            .map(Value::Int)
            .ok_or_else(|| Error::runtime(format!("integer overflow in `{op}`")));
    }
    match (a.as_real(), b.as_real()) {
        (Some(x), Some(y)) => Ok(Value::Real(real_op(x, y))),
        _ => Err(Error::runtime(format!(
            "cannot apply `{op}` to {} and {}",
            a.type_name(),
            b.type_name()
        ))),
    }
}

fn div(a: Value, b: Value) -> Result<Value> {
    if is_int_like(&a) && is_int_like(&b) {
        let (x, y) = (a.as_int().expect("int-like"), b.as_int().expect("int-like"));
        if y == 0 {
            return Err(Error::runtime("integer division by zero"));
        }
        return Ok(Value::Int(x / y));
    }
    match (a.as_real(), b.as_real()) {
        (Some(x), Some(y)) => Ok(Value::Real(x / y)),
        _ => Err(Error::runtime(format!(
            "cannot divide {} by {}",
            a.type_name(),
            b.type_name()
        ))),
    }
}

fn rem(a: Value, b: Value) -> Result<Value> {
    if is_int_like(&a) && is_int_like(&b) {
        let (x, y) = (a.as_int().expect("int-like"), b.as_int().expect("int-like"));
        if y == 0 {
            return Err(Error::runtime("integer remainder by zero"));
        }
        return Ok(Value::Int(x % y));
    }
    match (a.as_real(), b.as_real()) {
        (Some(x), Some(y)) => Ok(Value::Real(x % y)),
        _ => Err(Error::runtime("remainder requires numeric operands")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use crate::event::{AttrType, Schema};

    fn flows_tuple(nbytes: i64, daddr: &str, at: Timestamp) -> Tuple {
        let schema = Arc::new(
            Schema::new(
                "Flows",
                vec![("daddr", AttrType::Str), ("nbytes", AttrType::Int)],
            )
            .unwrap(),
        );
        Tuple::new(
            schema,
            vec![Scalar::Str(daddr.into()), Scalar::Int(nbytes)],
            at,
        )
        .unwrap()
    }

    fn run_once(src: &str, tuple: &Tuple, host: &mut RecordingHost) -> Vm {
        let program = Arc::new(compile(src).unwrap());
        let mut vm = Vm::new(program);
        vm.run_initialization(host).unwrap();
        vm.run_behavior("Flows", tuple, host).unwrap();
        vm
    }

    #[test]
    fn arithmetic_and_locals() {
        let src = r#"
            subscribe f to Flows;
            int a; real r; string s;
            initialization { a = 2 + 3 * 4; r = 1.0 / 4.0; s = String('x=', a); }
            behavior { a = a - 1; }
        "#;
        let mut host = RecordingHost::default();
        let vm = run_once(src, &flows_tuple(1, "h", 0), &mut host);
        assert_eq!(vm.local("a").unwrap().as_int(), Some(13));
        assert_eq!(vm.local("r").unwrap().as_real(), Some(0.25));
        assert_eq!(vm.local("s").unwrap().as_text().unwrap(), "x=14");
    }

    #[test]
    fn event_field_access_and_send() {
        let src = r#"
            subscribe f to Flows;
            int total;
            initialization { total = 0; }
            behavior { total = total + f.nbytes; send(total, f.daddr); }
        "#;
        let program = Arc::new(compile(src).unwrap());
        let mut vm = Vm::new(program);
        let mut host = RecordingHost::default();
        vm.run_initialization(&mut host).unwrap();
        vm.run_behavior("Flows", &flows_tuple(100, "10.0.0.9", 5), &mut host)
            .unwrap();
        vm.run_behavior("Flows", &flows_tuple(50, "10.0.0.9", 6), &mut host)
            .unwrap();
        assert_eq!(vm.local("total").unwrap().as_int(), Some(150));
        assert_eq!(
            host.sent,
            vec![
                vec![Scalar::Int(100), Scalar::Str("10.0.0.9".into())],
                vec![Scalar::Int(150), Scalar::Str("10.0.0.9".into())],
            ]
        );
    }

    #[test]
    fn while_loop_and_compound_assignment() {
        let src = r#"
            subscribe f to Flows;
            int i, sum;
            behavior {
                i = 0; sum = 0;
                while (i < 10) { sum += i; i += 1; }
            }
        "#;
        let mut host = RecordingHost::default();
        let vm = run_once(src, &flows_tuple(1, "h", 0), &mut host);
        assert_eq!(vm.local("sum").unwrap().as_int(), Some(45));
    }

    #[test]
    fn if_else_chains() {
        let src = r#"
            subscribe f to Flows;
            string verdict;
            behavior {
                if (f.nbytes > 1000)
                    verdict = 'big';
                else if (f.nbytes > 100)
                    verdict = 'medium';
                else
                    verdict = 'small';
            }
        "#;
        let mut host = RecordingHost::default();
        let vm = run_once(src, &flows_tuple(500, "h", 0), &mut host);
        assert_eq!(vm.local("verdict").unwrap().as_text().unwrap(), "medium");
        let vm = run_once(src, &flows_tuple(5, "h", 0), &mut host);
        assert_eq!(vm.local("verdict").unwrap().as_text().unwrap(), "small");
        let vm = run_once(src, &flows_tuple(5000, "h", 0), &mut host);
        assert_eq!(vm.local("verdict").unwrap().as_text().unwrap(), "big");
    }

    #[test]
    fn the_bandwidth_automaton_of_fig_4_behaves_as_described() {
        let src = r#"
            subscribe f to Flows;
            associate a with Allowances;
            associate b with BWUsage;
            int n, limit;
            identifier ip;
            sequence s;
            behavior {
                ip = Identifier(f.daddr);
                if (hasEntry(a, ip)) {
                    limit = seqElement(lookup(a, ip), 1);
                    if (hasEntry(b, ip))
                        n = seqElement(lookup(b, ip), 1);
                    else
                        n = 0;
                    n += f.nbytes;
                    s = Sequence(f.daddr, n);
                    if (n > limit)
                        send(s, limit, 'limit exceeded');
                    insert(b, ip, s);
                }
            }
        "#;
        let program = Arc::new(compile(src).unwrap());
        let mut vm = Vm::new(program);
        let mut host = RecordingHost::default();
        host.seed_table(
            "Allowances",
            "10.0.0.9",
            vec![Scalar::Str("10.0.0.9".into()), Scalar::Int(150)],
        );
        vm.run_initialization(&mut host).unwrap();

        // Unmonitored address: nothing happens.
        vm.run_behavior("Flows", &flows_tuple(100, "10.9.9.9", 1), &mut host)
            .unwrap();
        assert!(host.sent.is_empty());
        assert!(!host.tables.contains_key("BWUsage"));

        // First flow for the monitored address: usage recorded, below limit.
        vm.run_behavior("Flows", &flows_tuple(100, "10.0.0.9", 2), &mut host)
            .unwrap();
        assert!(host.sent.is_empty());
        assert_eq!(
            host.tables["BWUsage"]["10.0.0.9"],
            vec![Scalar::Str("10.0.0.9".into()), Scalar::Int(100)]
        );

        // Second flow pushes usage past the 150-byte allowance.
        vm.run_behavior("Flows", &flows_tuple(100, "10.0.0.9", 3), &mut host)
            .unwrap();
        assert_eq!(host.sent.len(), 1);
        assert_eq!(
            host.sent[0],
            vec![
                Scalar::Str("10.0.0.9".into()),
                Scalar::Int(200),
                Scalar::Int(150),
                Scalar::Str("limit exceeded".into()),
            ]
        );
        assert_eq!(
            host.tables["BWUsage"]["10.0.0.9"],
            vec![Scalar::Str("10.0.0.9".into()), Scalar::Int(200)]
        );
    }

    #[test]
    fn current_topic_and_multiple_subscriptions() {
        let src = r#"
            subscribe t to Timer;
            subscribe s to Test;
            int count;
            string last;
            initialization { count = 0; }
            behavior {
                if (currentTopic() == 'Timer')
                    last = 'timer';
                else {
                    count += 1;
                    last = 'test';
                }
            }
        "#;
        let program = Arc::new(compile(src).unwrap());
        let mut vm = Vm::new(program);
        let mut host = RecordingHost::default();
        vm.run_initialization(&mut host).unwrap();

        let test_schema = Arc::new(Schema::new("Test", vec![("v", AttrType::Int)]).unwrap());
        let timer_schema =
            Arc::new(Schema::new("Timer", vec![("tstamp", AttrType::Tstamp)]).unwrap());
        let test = Tuple::new(test_schema, vec![Scalar::Int(1)], 1).unwrap();
        let timer = Tuple::new(timer_schema, vec![Scalar::Tstamp(2)], 2).unwrap();

        vm.run_behavior("Test", &test, &mut host).unwrap();
        vm.run_behavior("Test", &test, &mut host).unwrap();
        vm.run_behavior("Timer", &timer, &mut host).unwrap();
        assert_eq!(vm.local("count").unwrap().as_int(), Some(2));
        assert_eq!(vm.local("last").unwrap().as_text().unwrap(), "timer");
    }

    #[test]
    fn delivery_on_unsubscribed_topic_is_an_error() {
        let program = Arc::new(compile("subscribe f to Flows; behavior { }").unwrap());
        let mut vm = Vm::new(program);
        let mut host = RecordingHost::default();
        let err = vm
            .run_behavior("Other", &flows_tuple(1, "h", 0), &mut host)
            .unwrap_err();
        assert!(err.to_string().contains("not subscribed"));
    }

    #[test]
    fn missing_event_field_is_a_runtime_error() {
        let src = "subscribe f to Flows; int x; behavior { x = f.nosuch; }";
        let program = Arc::new(compile(src).unwrap());
        let mut vm = Vm::new(program);
        let mut host = RecordingHost::default();
        let err = vm
            .run_behavior("Flows", &flows_tuple(1, "h", 0), &mut host)
            .unwrap_err();
        assert!(err.to_string().contains("no attribute"));
    }

    #[test]
    fn division_by_zero_is_reported() {
        let src = "subscribe f to Flows; int x; behavior { x = 1 / (x * 0); }";
        let program = Arc::new(compile(src).unwrap());
        let mut vm = Vm::new(program);
        let mut host = RecordingHost::default();
        let err = vm
            .run_behavior("Flows", &flows_tuple(1, "h", 0), &mut host)
            .unwrap_err();
        assert!(err.to_string().contains("division by zero"));
    }

    #[test]
    fn windows_and_timers_drive_the_continuous_query_model_of_fig_2() {
        let src = r#"
            subscribe event to Readings;
            subscribe x to Timer;
            window w;
            initialization {
                w = Window(sequence, SECS, 60);
            }
            behavior {
                if (currentTopic() == 'Readings')
                    append(w, Sequence(event.value));
                else
                    if (currentTopic() == 'Timer') {
                        send(w);
                        w = Window(sequence, SECS, 60);
                    }
            }
        "#;
        let program = Arc::new(compile(src).unwrap());
        let mut vm = Vm::new(program);
        let mut host = RecordingHost::default();
        vm.run_initialization(&mut host).unwrap();

        let readings = Arc::new(Schema::new("Readings", vec![("value", AttrType::Int)]).unwrap());
        let timer = Arc::new(Schema::new("Timer", vec![("tstamp", AttrType::Tstamp)]).unwrap());
        for v in 1..=3i64 {
            let t = Tuple::new(readings.clone(), vec![Scalar::Int(v)], v as u64).unwrap();
            vm.run_behavior("Readings", &t, &mut host).unwrap();
        }
        let tick = Tuple::new(timer, vec![Scalar::Tstamp(10)], 10).unwrap();
        vm.run_behavior("Timer", &tick, &mut host).unwrap();
        assert_eq!(host.sent.len(), 1);
        assert_eq!(
            host.sent[0],
            vec![Scalar::Int(1), Scalar::Int(2), Scalar::Int(3)]
        );
    }

    #[test]
    fn frequent_algorithm_from_fig_14_finds_the_heavy_hitter() {
        let src = r#"
            subscribe e to Urls;
            map T;
            iterator i;
            identifier id;
            int count;
            int k;
            initialization { k = 5; T = Map(int); }
            behavior {
                id = Identifier(e.host);
                if (hasEntry(T, id)) {
                    count = lookup(T, id);
                    count += 1;
                    insert(T, id, count);
                } else if (mapSize(T) < (k-1))
                    insert(T, id, 1);
                else {
                    i = Iterator(T);
                    while (hasNext(i)) {
                        id = next(i);
                        count = lookup(T, id);
                        count -= 1;
                        if (count == 0)
                            remove(T, id);
                        else
                            insert(T, id, count);
                    }
                }
            }
        "#;
        let program = Arc::new(compile(src).unwrap());
        let mut vm = Vm::new(program);
        let mut host = RecordingHost::default();
        vm.run_initialization(&mut host).unwrap();
        let urls = Arc::new(Schema::new("Urls", vec![("host", AttrType::Str)]).unwrap());
        let deliver = |host_name: &str, vm: &mut Vm, h: &mut RecordingHost| {
            let t = Tuple::new(urls.clone(), vec![Scalar::Str(host_name.into())], 0).unwrap();
            vm.run_behavior("Urls", &t, h).unwrap();
        };
        // 40 requests to the heavy hitter, 20 spread over rare hosts.
        for i in 0..60 {
            if i % 3 != 2 {
                deliver("popular.example.com", &mut vm, &mut host);
            } else {
                deliver(&format!("rare{i}.example.com"), &mut vm, &mut host);
            }
        }
        match vm.local("T").unwrap() {
            Value::Map(m) => assert!(m.borrow().has_entry("popular.example.com")),
            other => panic!("T should be a map, got {other:?}"),
        }
    }

    #[test]
    fn instruction_counter_increases() {
        let src = "subscribe f to Flows; int i; behavior { i = 0; while (i < 5) i += 1; }";
        let mut host = RecordingHost::default();
        let vm = run_once(src, &flows_tuple(1, "h", 0), &mut host);
        assert!(vm.instructions_executed() > 20);
    }

    #[test]
    fn publish_routes_through_host() {
        let src = r#"
            subscribe f to Flows;
            behavior { publish('Derived', f.daddr, f.nbytes * 2); }
        "#;
        let mut host = RecordingHost::default();
        run_once(src, &flows_tuple(21, "10.0.0.1", 0), &mut host);
        assert_eq!(
            host.published,
            vec![(
                "Derived".to_string(),
                vec![Scalar::Str("10.0.0.1".into()), Scalar::Int(42)]
            )]
        );
    }
}
