#!/usr/bin/env sh
# Fan-out performance snapshot: insert throughput with 1,000 registered
# automata at 1% guard selectivity, predicate-indexed dispatch vs the
# naive all-subscribers fan-out. Writes BENCH_fanout.json at the
# repository root and fails if the speedup regresses below the 10x
# acceptance floor.
set -eu

cd "$(dirname "$0")/.."

echo "==> snapshot: BENCH_fanout.json"
cargo run --release -p cep_bench --bin bench_fanout

speedup=$(grep -o '"speedup": [0-9.]*' BENCH_fanout.json | tail -1 | cut -d' ' -f2)
if [ -z "${speedup}" ]; then
    echo "FAIL: speedup missing from BENCH_fanout.json" >&2
    exit 1
fi
echo "indexed dispatch speedup at 1000 automata / 1% selectivity: ${speedup}x (floor: 10x)"
awk "BEGIN { exit !(${speedup} >= 10.0) }" || {
    echo "FAIL: fan-out speedup ${speedup}x below the 10x floor" >&2
    exit 1
}

echo "fan-out snapshot complete"
