//! The three stock-analysis queries of the paper's Cayuga comparison
//! (§6.5, Fig. 18), expressed against this crate's NFA model.
//!
//! All three queries run over a stock-tick stream whose schema has (at
//! least) the attributes `name` (the stock symbol, a string) and `price`
//! (a real). The synthetic dataset lives in the `cep-workloads` crate.
//!
//! * **Q1** — the basic operator `SELECT * FROM Stocks PUBLISH T`: every
//!   event is copied to an output stream.
//! * **Q2** — the double-top (M-shaped) price formation: the price of a
//!   stock rises to a first peak, falls to a trough, rises again to a
//!   second peak of roughly the same height, then falls.
//! * **Q3** — the `FOLD` example: detect continuous runs of increasing
//!   prices for each stock and report the run when it ends.

use gapl::event::Scalar;

use crate::nfa::{Nfa, NfaBuilder, TransitionEffect};

fn price_of(event: &gapl::event::Tuple) -> f64 {
    event
        .field("price")
        .and_then(|p| p.as_real())
        .unwrap_or(0.0)
}

fn name_of(event: &gapl::event::Tuple) -> Scalar {
    event.field("name").unwrap_or(Scalar::Str("".into()))
}

/// Q1: `SELECT * FROM Stocks PUBLISH T` — a pass-through query; every event
/// becomes a match carrying the event's attributes.
pub fn q1_select_publish() -> Nfa {
    let mut b = NfaBuilder::new("Q1-select-publish");
    let start = b.add_state("start", false);
    let out = b.add_state("published", true);
    b.transition(
        start,
        out,
        TransitionEffect::Move,
        |_, _| true,
        |bind, ev| {
            // Copy every attribute into the output binding, mirroring the
            // re-publication of the full tuple on the output stream.
            for attr in ev.schema().attributes() {
                if let Some(v) = ev.field(&attr.name) {
                    bind.set(attr.name.clone(), v);
                }
            }
        },
    );
    b.build()
}

/// Q2: the double-top (M-shaped) formation, per stock.
///
/// `tolerance` is the maximum relative difference between the two peaks for
/// the pattern to count (the paper's chart analysis uses "roughly equal"
/// peaks; 2 % is a common choice).
pub fn q2_double_top(tolerance: f64) -> Nfa {
    let mut b = NfaBuilder::new("Q2-double-top");
    b.partition_by("name");
    let start = b.add_state("start", false);
    let rising1 = b.add_state("rising-to-first-peak", false);
    let falling1 = b.add_state("falling-to-trough", false);
    let rising2 = b.add_state("rising-to-second-peak", false);
    let matched = b.add_state("double-top", true);

    // A: anchor the pattern at any event.
    b.transition(
        start,
        rising1,
        TransitionEffect::Move,
        |_, _| true,
        |bind, ev| {
            let p = price_of(ev);
            bind.set("name", name_of(ev));
            bind.set("start", Scalar::Real(p));
            bind.set("prev", Scalar::Real(p));
            bind.set("peak1", Scalar::Real(p));
        },
    );

    // B: keep climbing to the first peak.
    b.transition(
        rising1,
        rising1,
        TransitionEffect::Move,
        |bind, ev| price_of(ev) > bind.get_real("prev").unwrap_or(f64::MAX),
        |bind, ev| {
            let p = price_of(ev);
            bind.set("prev", Scalar::Real(p));
            bind.set("peak1", Scalar::Real(p));
        },
    );
    // B -> C: the price turns down after a genuine climb.
    b.transition(
        rising1,
        falling1,
        TransitionEffect::Move,
        |bind, ev| {
            let p = price_of(ev);
            let prev = bind.get_real("prev").unwrap_or(f64::MAX);
            let peak1 = bind.get_real("peak1").unwrap_or(0.0);
            let start = bind.get_real("start").unwrap_or(f64::MAX);
            p < prev && peak1 > start
        },
        |bind, ev| {
            let p = price_of(ev);
            bind.set("prev", Scalar::Real(p));
            bind.set("trough", Scalar::Real(p));
        },
    );

    // C: keep falling to the trough.
    b.transition(
        falling1,
        falling1,
        TransitionEffect::Move,
        |bind, ev| price_of(ev) < bind.get_real("prev").unwrap_or(0.0),
        |bind, ev| {
            let p = price_of(ev);
            bind.set("prev", Scalar::Real(p));
            bind.set("trough", Scalar::Real(p));
        },
    );
    // C -> D: the price turns up again from a trough below the first peak.
    b.transition(
        falling1,
        rising2,
        TransitionEffect::Move,
        |bind, ev| {
            let p = price_of(ev);
            let prev = bind.get_real("prev").unwrap_or(0.0);
            let peak1 = bind.get_real("peak1").unwrap_or(0.0);
            let trough = bind.get_real("trough").unwrap_or(f64::MAX);
            p > prev && trough < peak1
        },
        |bind, ev| {
            let p = price_of(ev);
            bind.set("prev", Scalar::Real(p));
            bind.set("peak2", Scalar::Real(p));
        },
    );

    // D: keep climbing to the second peak.
    b.transition(
        rising2,
        rising2,
        TransitionEffect::Move,
        |bind, ev| price_of(ev) > bind.get_real("prev").unwrap_or(f64::MAX),
        |bind, ev| {
            let p = price_of(ev);
            bind.set("prev", Scalar::Real(p));
            bind.set("peak2", Scalar::Real(p));
        },
    );
    // D -> E/F: the price turns down from a second peak of ~equal height.
    b.transition(
        rising2,
        matched,
        TransitionEffect::Move,
        move |bind, ev| {
            let p = price_of(ev);
            let prev = bind.get_real("prev").unwrap_or(f64::MAX);
            let peak1 = bind.get_real("peak1").unwrap_or(0.0);
            let peak2 = bind.get_real("peak2").unwrap_or(0.0);
            let trough = bind.get_real("trough").unwrap_or(f64::MAX);
            p < prev
                && peak2 > trough
                && peak1 > 0.0
                && ((peak2 - peak1).abs() / peak1) <= tolerance
        },
        |bind, ev| {
            bind.set("end", Scalar::Real(price_of(ev)));
        },
    );

    b.build()
}

/// Q3: `FOLD` — maximal runs of increasing prices per stock; a match is
/// produced when a run of at least `min_len` rising ticks ends.
pub fn q3_increasing_runs(min_len: i64) -> Nfa {
    let mut b = NfaBuilder::new("Q3-increasing-runs");
    b.partition_by("name");
    let start = b.add_state("start", false);
    let folding = b.add_state("folding", false);
    let done = b.add_state("run-ended", true);

    b.transition(
        start,
        folding,
        TransitionEffect::Move,
        |_, _| true,
        |bind, ev| {
            let p = price_of(ev);
            bind.set("name", name_of(ev));
            bind.set("first", Scalar::Real(p));
            bind.set("prev", Scalar::Real(p));
            bind.set("len", Scalar::Int(1));
        },
    );
    // FOLD iteration: the run continues while the price keeps rising.
    b.transition(
        folding,
        folding,
        TransitionEffect::Move,
        |bind, ev| price_of(ev) > bind.get_real("prev").unwrap_or(f64::MAX),
        |bind, ev| {
            let p = price_of(ev);
            bind.set("prev", Scalar::Real(p));
            bind.set("last", Scalar::Real(p));
            bind.add_int("len", 1);
        },
    );
    // Termination: the run ends with a non-increasing tick.
    b.transition(
        folding,
        done,
        TransitionEffect::Move,
        move |bind, ev| {
            price_of(ev) <= bind.get_real("prev").unwrap_or(f64::MAX)
                && bind.get_int("len").unwrap_or(0) >= min_len
        },
        |_, _| (),
    );

    b.build()
}

/// A reference (non-NFA) implementation of Q3 used to validate the engine:
/// returns, per maximal increasing run of length ≥ `min_len`, the stock
/// name and the run length, in stream order of run end. Only the *maximal*
/// runs are reported (the NFA also reports sub-runs because a fresh
/// instance starts at every event; see the tests for the relationship).
pub fn reference_maximal_runs(events: &[gapl::event::Tuple], min_len: i64) -> Vec<(String, i64)> {
    use std::collections::HashMap;
    let mut state: HashMap<String, (f64, i64)> = HashMap::new();
    let mut out = Vec::new();
    for ev in events {
        let name = name_of(ev).to_string();
        let price = price_of(ev);
        match state.get_mut(&name) {
            None => {
                state.insert(name, (price, 1));
            }
            Some((prev, len)) => {
                if price > *prev {
                    *len += 1;
                    *prev = price;
                } else {
                    if *len >= min_len {
                        out.push((name.clone(), *len));
                    }
                    *prev = price;
                    *len = 1;
                }
            }
        }
    }
    for (name, (_, len)) in state {
        if len >= min_len {
            out.push((name, len));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use gapl::event::{AttrType, Schema, Tuple};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::new(
                "Stocks",
                vec![
                    ("name", AttrType::Str),
                    ("price", AttrType::Real),
                    ("volume", AttrType::Int),
                ],
            )
            .unwrap(),
        )
    }

    fn stream(prices: &[(&str, f64)]) -> Vec<Tuple> {
        prices
            .iter()
            .enumerate()
            .map(|(i, (name, price))| {
                Tuple::new(
                    schema(),
                    vec![
                        Scalar::Str((*name).into()),
                        Scalar::Real(*price),
                        Scalar::Int(100),
                    ],
                    i as u64,
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn q1_publishes_every_event() {
        let events = stream(&[("A", 1.0), ("B", 2.0), ("A", 3.0)]);
        let mut engine = Engine::new(q1_select_publish());
        engine.run(&events);
        assert_eq!(engine.matches().len(), 3);
        assert_eq!(engine.matches()[2].bindings.get_real("price"), Some(3.0));
        assert_eq!(engine.matches()[2].bindings.get_str("name"), Some("A"));
        // Q1 never keeps instances alive between events.
        assert_eq!(engine.live_instances(), 0);
    }

    #[test]
    fn q2_detects_a_clean_double_top() {
        // A classic M shape: up to 12, down to 9, up to 12.1, down.
        let events = stream(&[
            ("ACME", 10.0),
            ("ACME", 11.0),
            ("ACME", 12.0),
            ("ACME", 10.5),
            ("ACME", 9.0),
            ("ACME", 10.0),
            ("ACME", 12.1),
            ("ACME", 11.0),
        ]);
        let mut engine = Engine::new(q2_double_top(0.02));
        engine.run(&events);
        assert!(
            !engine.matches().is_empty(),
            "the M-shaped pattern should be detected"
        );
        let m = &engine.matches()[0].bindings;
        assert_eq!(m.get_str("name"), Some("ACME"));
        assert!(m.get_real("peak1").unwrap() >= 12.0);
        assert!(m.get_real("trough").unwrap() <= 9.0 + 1e-9);
    }

    #[test]
    fn q2_ignores_monotone_or_mismatched_peaks() {
        // Monotone rise: no double top.
        let events = stream(&[("A", 1.0), ("A", 2.0), ("A", 3.0), ("A", 4.0)]);
        let mut engine = Engine::new(q2_double_top(0.02));
        engine.run(&events);
        assert!(engine.matches().is_empty());

        // Second peak far below the first: no double top at 2 % tolerance.
        let events = stream(&[
            ("A", 10.0),
            ("A", 12.0),
            ("A", 9.0),
            ("A", 10.0),
            ("A", 9.5),
        ]);
        let mut engine = Engine::new(q2_double_top(0.02));
        engine.run(&events);
        assert!(engine.matches().is_empty());
    }

    #[test]
    fn q2_separates_partitions() {
        // The M shape is split across two different stocks: no match.
        let events = stream(&[
            ("A", 10.0),
            ("B", 11.0),
            ("A", 12.0),
            ("B", 9.0),
            ("A", 10.0),
            ("B", 12.1),
            ("A", 11.0),
        ]);
        let mut engine = Engine::new(q2_double_top(0.02));
        engine.run(&events);
        assert!(engine.matches().is_empty());
    }

    #[test]
    fn q3_reports_runs_when_they_end() {
        let events = stream(&[
            ("A", 1.0),
            ("A", 2.0),
            ("A", 3.0),
            ("A", 2.5), // run of 3 ends here
            ("B", 5.0),
            ("B", 6.0),
            ("B", 4.0), // run of 2 ends here
        ]);
        let mut engine = Engine::new(q3_increasing_runs(3));
        engine.run(&events);
        // The maximal run A:1→2→3 (length 3) is reported; B's run has
        // length 2 and is not.
        let lens: Vec<i64> = engine
            .matches()
            .iter()
            .filter_map(|m| m.bindings.get_int("len"))
            .collect();
        assert!(lens.contains(&3));
        assert!(lens.iter().all(|l| *l >= 3));

        let reference = reference_maximal_runs(&events, 3);
        assert_eq!(reference, vec![("A".to_string(), 3)]);
        // Every maximal run found by the reference is also found by the NFA
        // (the NFA additionally reports sub-runs, by design).
        for (name, len) in reference {
            assert!(engine.matches().iter().any(|m| {
                m.bindings.get_str("name") == Some(name.as_str())
                    && m.bindings.get_int("len") == Some(len)
            }));
        }
    }

    #[test]
    fn q3_counts_trailing_runs_in_the_reference() {
        let events = stream(&[("A", 1.0), ("A", 2.0), ("A", 3.0)]);
        let reference = reference_maximal_runs(&events, 2);
        assert_eq!(reference, vec![("A".to_string(), 3)]);
    }

    #[test]
    fn nfa_instance_counts_grow_with_pattern_complexity() {
        let events = stream(&[("A", 1.0); 50]);
        let mut q1 = Engine::new(q1_select_publish());
        q1.run(&events);
        let mut q3 = Engine::new(q3_increasing_runs(3));
        q3.run(&events);
        // The FOLD query keeps instances alive; the pass-through does not.
        assert!(q3.max_live_instances() > q1.max_live_instances());
    }
}
