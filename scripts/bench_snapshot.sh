#!/usr/bin/env sh
# Performance snapshot of the query engine, seeding the perf trajectory:
#
#   1. the criterion benches covering the read path (`query_engine`:
#      full scan vs `since τ` window, plan cache, compiled predicates;
#      `cache_paths`: insert/select round trips) — human-readable timing
#      per iteration;
#   2. the `bench_query` binary, which measures ops/sec for a full-scan
#      vs a 1%-window select at 1k/10k/100k rows and writes the result
#      to BENCH_query.json at the repository root.
#
# The acceptance bar for the zero-copy engine is a >= 10x window speedup
# at 100k rows; the script fails if BENCH_query.json misses it. The
# floor is enforced by the bench crate's `check_floor` binary: a missing
# file, missing key, or unparsable metric is a hard failure — a bench
# that did not produce its number must never count as a pass.
set -eu

cd "$(dirname "$0")/.."

echo "==> criterion: query engine"
cargo bench -p cep_bench --bench query_engine

echo "==> criterion: cache paths"
cargo bench -p cep_bench --bench cache_paths

echo "==> snapshot: BENCH_query.json"
cargo run --release -p cep_bench --bin bench_query

cargo run --release -q -p cep_bench --bin check_floor -- \
    BENCH_query.json window_speedup 10.0 \
    "100k-row 1% window speedup"

echo "benchmark snapshot complete"
