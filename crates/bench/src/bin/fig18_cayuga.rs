//! Regenerates Fig. 18: wall-clock time of the three stock queries on the
//! Cayuga-style NFA engine vs the cache-side GAPL automata, over the full
//! synthetic dataset (112,635 ticks by default).
//!
//! Run with `cargo run --release -p cep-bench --bin fig18_cayuga`.

use cep_bench::fig18;
use cep_workloads::StockConfig;

fn main() {
    let events: usize = std::env::var("FIG18_EVENTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(112_635);
    let symbols: usize = std::env::var("FIG18_SYMBOLS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);

    println!("Fig. 18 — benchmarking against Cayuga ({events} stock ticks, {symbols} symbols)\n");
    println!(
        "{:>4} {:>14} {:>14} {:>10} {:>16} {:>16}",
        "", "cayuga (s)", "cache (s)", "speedup", "cayuga outputs", "cache outputs"
    );
    let rows = fig18::run(StockConfig {
        events,
        symbols,
        ..StockConfig::default()
    });
    for row in &rows {
        println!(
            "{:>4} {:>14.3} {:>14.3} {:>9.1}x {:>16} {:>16}",
            row.query,
            row.cayuga.as_secs_f64(),
            row.cache.as_secs_f64(),
            row.speedup(),
            row.cayuga_outputs,
            row.cache_outputs
        );
    }
    println!(
        "\nPaper shape: the cache wins all three queries — roughly an order of magnitude \
         on Q1, ~2x on Q2 and the largest margin on the FOLD-style Q3."
    );
}
