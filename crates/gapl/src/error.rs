//! Error types for the GAPL language pipeline and runtime.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// The error type returned by every fallible public function in this crate.
///
/// The variants correspond to the stages of the language pipeline plus the
/// data-model constructors.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The lexer encountered an invalid character or unterminated literal.
    Lex {
        /// 1-based line of the offending input.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// The parser encountered an unexpected token.
    Parse {
        /// 1-based line of the offending token.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// Semantic analysis / bytecode generation failed.
    Compile {
        /// Explanation of the failure.
        message: String,
    },
    /// An automaton misbehaved at run time (type error, missing field,
    /// arity mismatch, ...).
    Runtime {
        /// Explanation of the failure.
        message: String,
    },
    /// The event data model was used inconsistently (schema/tuple arity or
    /// type mismatch, duplicate attribute names, ...).
    Data {
        /// Explanation of the failure.
        message: String,
    },
}

impl Error {
    /// Construct a [`Error::Runtime`] with the given message.
    pub fn runtime(message: impl Into<String>) -> Self {
        Error::Runtime {
            message: message.into(),
        }
    }

    /// Construct a [`Error::Compile`] with the given message.
    pub fn compile(message: impl Into<String>) -> Self {
        Error::Compile {
            message: message.into(),
        }
    }

    /// Construct a [`Error::Data`] with the given message.
    pub fn data(message: impl Into<String>) -> Self {
        Error::Data {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex { line, message } => write!(f, "lex error at line {line}: {message}"),
            Error::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            Error::Compile { message } => write!(f, "compile error: {message}"),
            Error::Runtime { message } => write!(f, "runtime error: {message}"),
            Error::Data { message } => write!(f, "data model error: {message}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_numbers() {
        let e = Error::Lex {
            line: 3,
            message: "bad char".into(),
        };
        assert_eq!(e.to_string(), "lex error at line 3: bad char");
        let e = Error::Parse {
            line: 7,
            message: "unexpected token".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn constructors_produce_expected_variants() {
        assert!(matches!(Error::runtime("x"), Error::Runtime { .. }));
        assert!(matches!(Error::compile("x"), Error::Compile { .. }));
        assert!(matches!(Error::data("x"), Error::Data { .. }));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
