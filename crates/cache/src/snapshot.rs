//! Epoch-published table snapshots: the lock-free read path.
//!
//! Every table publishes an immutable [`TableSnapshot`] that readers
//! load with a single shared-pointer clone and evaluate **entirely
//! outside the table mutex**. The snapshot is a chunked, append-only
//! row log:
//!
//! * sealed chunks are immutable and shared (`Arc`) between snapshot
//!   generations — publishing a new generation never copies rows;
//! * the open tail chunk uses write-once slots ([`OnceLock`]): the
//!   single writer (which holds the table mutex) fills the next slot
//!   and then advances the snapshot's `visible` watermark with one
//!   `Release` store. Readers load `visible` with `Acquire` and may
//!   touch only slots below it, so a half-written row is never
//!   observable and no reader ever blocks on a writer.
//!
//! **Publish protocol** (the epoch rule): rows become readable when
//! `visible` advances, *never* when their slot is written. On a durable
//! table the watermark is advanced only after the row's write-ahead-log
//! record has been appended **and** group-committed, so a reader can
//! never observe a row whose WAL record is not yet durable
//! (flush-before-visible; see `docs/architecture.md`).
//!
//! **Memory reclamation** is refcount-epoch based: a new snapshot
//! generation (chunk seal, compaction, stream eviction passing a chunk
//! boundary, replication reset) is swapped into the table's
//! `SharedTableState` slot; readers holding the previous `Arc` keep a
//! consistent frozen view, and the old generation is freed when the
//! last such reader drops it. No hazard pointers, no deferred-free
//! lists — the `Arc` *is* the epoch.
//!
//! Keyed state (persistent-table primary keys) lives beside the log in
//! a reader/writer-locked map that writers touch only for the map
//! update itself — microseconds, never across WAL I/O — so `lookup`
//! and `keys` never contend with the insert+commit critical section
//! either.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;

use gapl::event::{Schema, Timestamp, Tuple};

use crate::table::TableKind;

/// Rows per chunk. Sealing (and therefore snapshot republication) is a
/// once-per-`CHUNK`-inserts event; everything in between is one slot
/// write plus one atomic store.
pub(crate) const CHUNK: usize = 1024;

/// Sentinel for [`RowEntry::replaced_by`]: the row is live.
pub(crate) const LIVE: u64 = u64::MAX;

/// One entry of the shared row log.
#[derive(Debug)]
pub(crate) struct RowEntry {
    /// Sort key for `since τ` binary searches; monotone over the log
    /// (insertions clamp, tombstones inherit the high-water mark).
    pub tstamp: Timestamp,
    /// The stored row (shared, never deep-copied).
    pub tuple: Tuple,
    /// Primary key for keyed (persistent) tables; `None` on streams
    /// and tombstones' removed-row echoes. Lets compaction rebuild the
    /// key map without re-deriving keys from tuples.
    pub key: Option<Arc<str>>,
    /// Absolute log index of the entry that superseded this one
    /// (an upsert's new version or a removal's tombstone); [`LIVE`]
    /// while current. A reader whose view ends at `end` treats the
    /// entry as live iff `replaced_by >= end`: the supersession
    /// happened at or after its horizon, so *its* version of history
    /// still shows this row. Stored `Release` strictly before the
    /// superseding entry becomes visible.
    pub replaced_by: AtomicU64,
    /// A removal marker: occupies a log position (so removals advance
    /// `visible` and take effect for later readers) but is never
    /// yielded to a reader.
    pub tombstone: bool,
}

impl RowEntry {
    /// Whether a reader whose visible horizon is `end` should yield
    /// this entry.
    #[inline]
    fn live_at(&self, end: u64) -> bool {
        !self.tombstone && self.replaced_by.load(Ordering::Acquire) >= end
    }
}

/// A fixed-capacity run of write-once row slots.
#[derive(Debug)]
struct Chunk {
    slots: Box<[OnceLock<RowEntry>]>,
}

impl Chunk {
    fn new() -> Chunk {
        Chunk {
            slots: (0..CHUNK).map(|_| OnceLock::new()).collect(),
        }
    }
}

/// An immutable, atomically published view of one table's row log.
///
/// "Immutable" structurally: the chunk list and `base` never change
/// after publication. The two watermarks (`visible`, `start`) are the
/// only mutable cells, advanced monotonically by the single writer; a
/// superseded generation's watermarks simply stop advancing, freezing
/// the view for readers that still hold it.
#[derive(Debug)]
pub struct TableSnapshot {
    schema: Arc<Schema>,
    kind: TableKind,
    /// Absolute log index of `chunks[0].slots[0]`.
    base: u64,
    chunks: Vec<Arc<Chunk>>,
    /// One past the newest committed (readable) row, as an absolute
    /// index. `Release`-stored by the writer after the slots below it
    /// are filled (and, for durable tables, after their WAL records
    /// are on disk); `Acquire`-loaded by readers.
    visible: AtomicU64,
    /// Oldest retained row (stream eviction); always `>= base`.
    start: AtomicU64,
}

impl TableSnapshot {
    /// An empty snapshot for a fresh table.
    pub(crate) fn empty(schema: Arc<Schema>, kind: TableKind) -> TableSnapshot {
        TableSnapshot {
            schema,
            kind,
            base: 0,
            chunks: vec![Arc::new(Chunk::new())],
            visible: AtomicU64::new(0),
            start: AtomicU64::new(0),
        }
    }

    /// The schema the snapshot's rows conform to. Cached plans key on
    /// this `Arc`'s identity: it is stable across snapshot generations
    /// of the same table instance, so plan revalidation is a pointer
    /// compare.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The table kind.
    pub fn kind(&self) -> TableKind {
        self.kind
    }

    /// One past the newest readable row (absolute index).
    #[inline]
    pub(crate) fn end(&self) -> u64 {
        self.visible.load(Ordering::Acquire)
    }

    /// The oldest retained row (absolute index).
    #[inline]
    pub(crate) fn first(&self) -> u64 {
        self.start.load(Ordering::Acquire)
    }

    /// Rows currently readable (streams: the retained window; keyed
    /// tables count tombstones and stale versions too — callers use
    /// the key map for a live-row count).
    pub(crate) fn window_len(&self) -> usize {
        let end = self.end();
        end.saturating_sub(self.first().min(end)) as usize
    }

    /// The committed row at absolute index `idx`.
    ///
    /// # Panics
    ///
    /// Panics when `idx` addresses a slot the writer has not filled;
    /// callers stay below a previously loaded `end()` (readers) or
    /// below the staging tail (the writer).
    #[inline]
    pub(crate) fn row(&self, idx: u64) -> &RowEntry {
        let off = (idx - self.base) as usize;
        self.chunks[off / CHUNK].slots[off % CHUNK]
            .get()
            .expect("row index below the visible watermark is always initialised")
    }

    /// First absolute index in `[lo, hi)` whose row's timestamp is
    /// strictly after `tau` (the log is timestamp-sorted).
    fn partition_after(&self, tau: Timestamp, mut lo: u64, mut hi: u64) -> u64 {
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.row(mid).tstamp <= tau {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Iterate the live rows of the `since` window, in time-of-insertion
    /// order, without cloning a single tuple. The visible horizon is
    /// loaded once, so the iteration is one consistent point-in-time
    /// view: it observes every row committed before the call and none
    /// after, exactly like the mutex path's cloned window did.
    pub(crate) fn range(&self, since: Option<Timestamp>) -> SnapRange<'_> {
        let end = self.end();
        let first = self.first().min(end);
        let idx = match since {
            None => first,
            Some(tau) => self.partition_after(tau, first, end),
        };
        SnapRange {
            snap: self,
            idx,
            end,
            cur: &[],
            cur_start: idx,
        }
    }

    /// The `since` window as cloned tuples (legacy-shaped helper for
    /// the mutex baseline path and checkpoints).
    pub(crate) fn collect_since(&self, since: Option<Timestamp>) -> Vec<Tuple> {
        self.range(since).cloned().collect()
    }

    // ---- writer side (single writer, table mutex held) ----

    /// One past the last slot this generation can hold.
    pub(crate) fn capacity_end(&self) -> u64 {
        self.base + (self.chunks.len() * CHUNK) as u64
    }

    /// Fill the slot at absolute index `idx`. The row stays invisible
    /// until [`TableSnapshot::commit_visible`] passes it.
    pub(crate) fn stage(&self, idx: u64, row: RowEntry) {
        let off = (idx - self.base) as usize;
        let ok = self.chunks[off / CHUNK].slots[off % CHUNK].set(row).is_ok();
        debug_assert!(ok, "a log slot is staged exactly once");
    }

    /// Advance the visible watermark to at least `upto` (monotone; the
    /// single writer may commit on behalf of an earlier staged prefix,
    /// see the group-commit ordering note in `cache.rs`).
    pub(crate) fn commit_visible(&self, upto: u64) {
        // Single writer: a plain read-modify-write under the table
        // mutex; `Release` pairs with readers' `Acquire` of `end()`.
        if self.visible.load(Ordering::Relaxed) < upto {
            self.visible.store(upto, Ordering::Release);
        }
    }

    /// Advance the eviction watermark (streams dropping their oldest
    /// rows). Chunks wholly below it are unlinked at the next seal.
    pub(crate) fn evict_to(&self, idx: u64) {
        if self.start.load(Ordering::Relaxed) < idx {
            self.start.store(idx, Ordering::Release);
        }
    }

    /// A successor generation with one fresh chunk appended and every
    /// chunk wholly below the eviction watermark unlinked. Shares all
    /// surviving chunks; copies no rows.
    pub(crate) fn sealed_extend(&self) -> TableSnapshot {
        let start = self.start.load(Ordering::Relaxed);
        let mut base = self.base;
        let mut chunks = Vec::with_capacity(self.chunks.len() + 1);
        for chunk in &self.chunks {
            if base + (CHUNK as u64) <= start && chunks.is_empty() {
                // Every row of this chunk is evicted; readers of older
                // generations keep it alive through their own Arc.
                base += CHUNK as u64;
            } else {
                chunks.push(Arc::clone(chunk));
            }
        }
        chunks.push(Arc::new(Chunk::new()));
        TableSnapshot {
            schema: Arc::clone(&self.schema),
            kind: self.kind,
            base,
            chunks,
            visible: AtomicU64::new(self.visible.load(Ordering::Relaxed)),
            start: AtomicU64::new(start),
        }
    }

    /// A compacted generation holding exactly `rows` (already in log
    /// order, all live), rebased to start at `base`. Used when stale
    /// entries outnumber live ones.
    pub(crate) fn rebuilt(
        schema: Arc<Schema>,
        kind: TableKind,
        base: u64,
        rows: Vec<RowEntry>,
    ) -> TableSnapshot {
        let n = rows.len() as u64;
        let mut chunks = Vec::with_capacity(rows.len() / CHUNK + 1);
        let mut chunk = Chunk::new();
        for (i, row) in rows.into_iter().enumerate() {
            if i > 0 && i % CHUNK == 0 {
                chunks.push(Arc::new(std::mem::replace(&mut chunk, Chunk::new())));
            }
            let ok = chunk.slots[i % CHUNK].set(row).is_ok();
            debug_assert!(ok);
        }
        chunks.push(Arc::new(chunk));
        TableSnapshot {
            schema,
            kind,
            base,
            chunks,
            visible: AtomicU64::new(base + n),
            start: AtomicU64::new(base),
        }
    }
}

/// Borrowed iterator over the live tuples of one snapshot window.
///
/// Walks chunk slices directly (one division per chunk, not per row):
/// this iterator is the per-row inner loop of every lock-free `select`,
/// so the per-row cost is one bounds-checked slot read plus the
/// liveness load.
pub(crate) struct SnapRange<'a> {
    snap: &'a TableSnapshot,
    idx: u64,
    end: u64,
    /// Slots of the chunk containing `idx` (empty until first use and
    /// across chunk boundaries).
    cur: &'a [OnceLock<RowEntry>],
    /// Absolute log index of `cur[0]`.
    cur_start: u64,
}

impl<'a> Iterator for SnapRange<'a> {
    type Item = &'a Tuple;

    fn next(&mut self) -> Option<&'a Tuple> {
        while self.idx < self.end {
            let off = (self.idx - self.cur_start) as usize;
            if off >= self.cur.len() {
                let chunk = ((self.idx - self.snap.base) as usize) / CHUNK;
                self.cur = &self.snap.chunks[chunk].slots;
                self.cur_start = self.snap.base + (chunk * CHUNK) as u64;
                continue;
            }
            self.idx += 1;
            let row = self.cur[off]
                .get()
                .expect("row index below the visible watermark is always initialised");
            if row.live_at(self.end) {
                return Some(&row.tuple);
            }
        }
        None
    }
}

/// The reader-reachable state of one table, shared between the store's
/// [`crate::table::TableHandle`] and the writer-owned
/// [`crate::table::Table`]: the published snapshot slot plus the keyed
/// row map.
#[derive(Debug)]
pub(crate) struct SharedTableState {
    /// The current snapshot generation. Swapped only on seal,
    /// compaction or replication reset; the write guard is held for
    /// one pointer store, so the reader's `read()+clone` is never
    /// blocked by row-level work.
    slot: RwLock<Arc<TableSnapshot>>,
    /// Primary key → (absolute log index of the live version, row).
    /// Empty and untouched for streams.
    pub(crate) keys: RwLock<HashMap<Arc<str>, (u64, Tuple)>>,
}

impl SharedTableState {
    pub(crate) fn new_published(snapshot: Arc<TableSnapshot>) -> SharedTableState {
        SharedTableState {
            slot: RwLock::new(snapshot),
            keys: RwLock::new(HashMap::new()),
        }
    }

    /// The current snapshot: the reader's one stop.
    pub(crate) fn load(&self) -> Arc<TableSnapshot> {
        Arc::clone(&self.slot.read())
    }

    /// Publish a new generation.
    pub(crate) fn store(&self, snapshot: Arc<TableSnapshot>) {
        *self.slot.write() = snapshot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapl::event::{AttrType, Scalar};

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::new("S", vec![("v", AttrType::Int)]).unwrap())
    }

    fn row(s: &Arc<Schema>, v: i64, ts: u64) -> RowEntry {
        RowEntry {
            tstamp: ts,
            tuple: Tuple::new(Arc::clone(s), vec![Scalar::Int(v)], ts).unwrap(),
            key: None,
            replaced_by: AtomicU64::new(LIVE),
            tombstone: false,
        }
    }

    #[test]
    fn staged_rows_are_invisible_until_committed() {
        let s = schema();
        let snap = TableSnapshot::empty(Arc::clone(&s), TableKind::Ephemeral);
        snap.stage(0, row(&s, 1, 10));
        assert_eq!(snap.range(None).count(), 0);
        snap.commit_visible(1);
        assert_eq!(snap.range(None).count(), 1);
    }

    #[test]
    fn since_window_binary_search_matches_filter() {
        let s = schema();
        let snap = TableSnapshot::empty(Arc::clone(&s), TableKind::Ephemeral);
        for i in 0..100u64 {
            snap.stage(i, row(&s, i as i64, i * 2));
        }
        snap.commit_visible(100);
        for tau in [0u64, 1, 7, 99, 197, 198, 1000] {
            let indexed: Vec<u64> = snap.range(Some(tau)).map(|t| t.tstamp()).collect();
            let naive: Vec<u64> = snap
                .range(None)
                .map(|t| t.tstamp())
                .filter(|ts| *ts > tau)
                .collect();
            assert_eq!(indexed, naive, "tau={tau}");
        }
    }

    #[test]
    fn seal_extends_past_chunk_capacity_and_shares_chunks() {
        let s = schema();
        let mut cur = Arc::new(TableSnapshot::empty(Arc::clone(&s), TableKind::Ephemeral));
        let total = (CHUNK * 2 + 5) as u64;
        for i in 0..total {
            if i == cur.capacity_end() {
                cur = Arc::new(cur.sealed_extend());
            }
            cur.stage(i, row(&s, i as i64, i));
            cur.commit_visible(i + 1);
        }
        assert_eq!(cur.range(None).count() as u64, total);
        assert_eq!(cur.row(0).tuple.tstamp(), 0);
    }

    #[test]
    fn eviction_trims_the_window_and_seal_unlinks_dead_chunks() {
        let s = schema();
        let mut cur = Arc::new(TableSnapshot::empty(Arc::clone(&s), TableKind::Ephemeral));
        let total = (CHUNK * 3) as u64;
        let capacity = 10u64;
        for i in 0..total {
            if i == cur.capacity_end() {
                cur = Arc::new(cur.sealed_extend());
            }
            cur.stage(i, row(&s, i as i64, i));
            cur.commit_visible(i + 1);
            if i + 1 > capacity {
                cur.evict_to(i + 1 - capacity);
            }
        }
        assert_eq!(cur.window_len() as u64, capacity);
        let first = cur.range(None).next().unwrap().tstamp();
        assert_eq!(first, total - capacity);
        // The final generation kept only the chunks the window needs.
        assert!(cur.chunks.len() <= 2);
    }

    #[test]
    fn replaced_rows_stay_visible_to_older_horizons() {
        let s = schema();
        let snap = TableSnapshot::empty(Arc::clone(&s), TableKind::Persistent);
        snap.stage(0, row(&s, 1, 1));
        snap.commit_visible(1);
        // Supersede row 0 with row 1 (an upsert): mark, then commit.
        snap.row(0).replaced_by.store(1, Ordering::Release);
        snap.stage(1, row(&s, 2, 2));
        snap.commit_visible(2);
        // A reader at horizon 1 (cut before the upsert) sees the old row.
        assert!(snap.row(0).live_at(1));
        // A reader at horizon 2 sees only the replacement.
        assert!(!snap.row(0).live_at(2));
        let vals: Vec<i64> = snap
            .range(None)
            .map(|t| t.values()[0].as_int().unwrap())
            .collect();
        assert_eq!(vals, vec![2]);
    }
}
