//! The GAPL built-in function library.
//!
//! Built-ins are resolved by name at compile time (an unknown function name
//! is a compile error, which the cache reports back to the registering
//! application, per §5 of the paper) and invoked by the
//! [`Instr::CallBuiltin`](crate::program::Instr::CallBuiltin) instruction.
//!
//! The set follows the paper's listings: aggregate constructors
//! (`Sequence`, `Map`, `Window`, `Identifier`, `Iterator`), map operations
//! (`insert`, `lookup`, `hasEntry`, `remove`, `mapSize`), iterator
//! operations (`hasNext`, `next`), sequence operations (`seqElement`,
//! `seqSize`, `append`), window operations (`winSize`, `winClear`,
//! `lsqSlope`), effectful operations (`send`, `publish`, `print`), time
//! operations (`tstampNow`, `tstampDiff`, `hourInDay`), conversions
//! (`float`, `int`, `String`), the native `frequent` heavy-hitter step of
//! §6.4, and helpers (`currentTopic`, `delete`, `abs`, `min`, `max`).

use std::cell::RefCell;
use std::rc::Rc;

use crate::error::{Error, Result};
use crate::event::Scalar;
use crate::program::Program;
use crate::value::{DeclType, IteratorData, MapData, Value, WindowData};
use crate::vm::HostInterface;

/// Identifies a built-in function. The numeric ordering is insignificant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BuiltinId {
    // Constructors
    Sequence,
    Map,
    Window,
    Identifier,
    Iterator,
    // Map / association operations
    Insert,
    Lookup,
    HasEntry,
    Remove,
    MapSize,
    // Iterator operations
    HasNext,
    Next,
    // Sequence operations
    SeqElement,
    SeqSize,
    Append,
    // Window operations
    WinSize,
    WinClear,
    LsqSlope,
    // Effects
    Send,
    Publish,
    Print,
    // Time
    TstampNow,
    TstampDiff,
    HourInDay,
    // Conversions
    Float,
    Int,
    StringOf,
    // Misc
    CurrentTopic,
    Delete,
    Frequent,
    Abs,
    Min,
    Max,
}

impl BuiltinId {
    /// Resolve a source-level function name to a built-in.
    pub fn from_name(name: &str) -> Option<BuiltinId> {
        Some(match name {
            "Sequence" => BuiltinId::Sequence,
            "Map" => BuiltinId::Map,
            "Window" => BuiltinId::Window,
            "Identifier" => BuiltinId::Identifier,
            "Iterator" => BuiltinId::Iterator,
            "insert" => BuiltinId::Insert,
            "lookup" => BuiltinId::Lookup,
            "hasEntry" => BuiltinId::HasEntry,
            "remove" => BuiltinId::Remove,
            "mapSize" => BuiltinId::MapSize,
            "hasNext" => BuiltinId::HasNext,
            "next" => BuiltinId::Next,
            "seqElement" => BuiltinId::SeqElement,
            "seqSize" => BuiltinId::SeqSize,
            "append" => BuiltinId::Append,
            "winSize" => BuiltinId::WinSize,
            "winClear" => BuiltinId::WinClear,
            "lsqSlope" => BuiltinId::LsqSlope,
            "send" => BuiltinId::Send,
            "publish" => BuiltinId::Publish,
            "print" => BuiltinId::Print,
            "tstampNow" => BuiltinId::TstampNow,
            "tstampDiff" => BuiltinId::TstampDiff,
            "hourInDay" => BuiltinId::HourInDay,
            "float" => BuiltinId::Float,
            "int" => BuiltinId::Int,
            "String" => BuiltinId::StringOf,
            "currentTopic" => BuiltinId::CurrentTopic,
            "delete" => BuiltinId::Delete,
            "frequent" => BuiltinId::Frequent,
            "abs" => BuiltinId::Abs,
            "min" => BuiltinId::Min,
            "max" => BuiltinId::Max,
            _ => return None,
        })
    }

    /// The source-level name of this built-in.
    pub fn name(self) -> &'static str {
        match self {
            BuiltinId::Sequence => "Sequence",
            BuiltinId::Map => "Map",
            BuiltinId::Window => "Window",
            BuiltinId::Identifier => "Identifier",
            BuiltinId::Iterator => "Iterator",
            BuiltinId::Insert => "insert",
            BuiltinId::Lookup => "lookup",
            BuiltinId::HasEntry => "hasEntry",
            BuiltinId::Remove => "remove",
            BuiltinId::MapSize => "mapSize",
            BuiltinId::HasNext => "hasNext",
            BuiltinId::Next => "next",
            BuiltinId::SeqElement => "seqElement",
            BuiltinId::SeqSize => "seqSize",
            BuiltinId::Append => "append",
            BuiltinId::WinSize => "winSize",
            BuiltinId::WinClear => "winClear",
            BuiltinId::LsqSlope => "lsqSlope",
            BuiltinId::Send => "send",
            BuiltinId::Publish => "publish",
            BuiltinId::Print => "print",
            BuiltinId::TstampNow => "tstampNow",
            BuiltinId::TstampDiff => "tstampDiff",
            BuiltinId::HourInDay => "hourInDay",
            BuiltinId::Float => "float",
            BuiltinId::Int => "int",
            BuiltinId::StringOf => "String",
            BuiltinId::CurrentTopic => "currentTopic",
            BuiltinId::Delete => "delete",
            BuiltinId::Frequent => "frequent",
            BuiltinId::Abs => "abs",
            BuiltinId::Min => "min",
            BuiltinId::Max => "max",
        }
    }

    /// All built-ins, for enumeration in docs and benches.
    pub fn all() -> &'static [BuiltinId] {
        use BuiltinId::*;
        &[
            Sequence,
            Map,
            Window,
            Identifier,
            Iterator,
            Insert,
            Lookup,
            HasEntry,
            Remove,
            MapSize,
            HasNext,
            Next,
            SeqElement,
            SeqSize,
            Append,
            WinSize,
            WinClear,
            LsqSlope,
            Send,
            Publish,
            Print,
            TstampNow,
            TstampDiff,
            HourInDay,
            Float,
            Int,
            StringOf,
            CurrentTopic,
            Delete,
            Frequent,
            Abs,
            Min,
            Max,
        ]
    }
}

/// Execution context handed to built-ins by the VM.
pub(crate) struct BuiltinCtx<'a> {
    pub host: &'a mut dyn HostInterface,
    pub current_topic: &'a str,
    pub program: &'a Program,
}

fn arity_error(id: BuiltinId, expected: &str, got: usize) -> Error {
    Error::runtime(format!(
        "{} expects {expected} argument(s), got {got}",
        id.name()
    ))
}

fn type_error(id: BuiltinId, expected: &str, got: &Value) -> Error {
    Error::runtime(format!(
        "{} expects {expected}, got a {}",
        id.name(),
        got.type_name()
    ))
}

fn key_text(id: BuiltinId, v: &Value) -> Result<String> {
    match v {
        Value::Identifier(s) | Value::Str(s) => Ok(s.to_string()),
        Value::Int(i) => Ok(i.to_string()),
        Value::Tstamp(t) => Ok(t.to_string()),
        other => Err(type_error(id, "an identifier key", other)),
    }
}

fn assoc_table(program: &Program, index: usize) -> Result<&str> {
    program
        .associations()
        .get(index)
        .map(|a| a.table.as_str())
        .ok_or_else(|| Error::runtime(format!("invalid association handle #{index}")))
}

fn scalars_to_sequence(values: Vec<Scalar>) -> Value {
    Value::sequence(values.into_iter().map(Value::from).collect())
}

fn decl_type_arg(id: BuiltinId, v: &Value) -> Result<DeclType> {
    let text = v
        .as_text()
        .ok_or_else(|| type_error(id, "a type keyword", v))?;
    DeclType::from_keyword(&text)
        .ok_or_else(|| Error::runtime(format!("{}: unknown element type `{text}`", id.name())))
}

/// Invoke built-in `id` with `args` (in source order).
pub(crate) fn call(id: BuiltinId, mut args: Vec<Value>, ctx: &mut BuiltinCtx<'_>) -> Result<Value> {
    match id {
        BuiltinId::Sequence => Ok(Value::sequence(args)),
        BuiltinId::Map => {
            let vt = if args.is_empty() {
                DeclType::Int
            } else {
                decl_type_arg(id, &args[0])?
            };
            Ok(Value::Map(Rc::new(RefCell::new(MapData::new(vt)))))
        }
        BuiltinId::Window => {
            if args.len() != 3 {
                return Err(arity_error(id, "3 (type, SECS|ROWS, size)", args.len()));
            }
            let et = decl_type_arg(id, &args[0])?;
            let kind = args[1]
                .as_text()
                .ok_or_else(|| type_error(id, "SECS or ROWS", &args[1]))?;
            let n = args[2]
                .as_int()
                .ok_or_else(|| type_error(id, "an integer size", &args[2]))?;
            if n < 0 {
                return Err(Error::runtime("Window size must be non-negative"));
            }
            let data = match kind.to_ascii_uppercase().as_str() {
                "SECS" | "SECONDS" => WindowData::secs(et, n as u64),
                "ROWS" | "COUNT" => WindowData::rows(et, n as usize),
                other => {
                    return Err(Error::runtime(format!(
                        "Window kind must be SECS or ROWS, got `{other}`"
                    )))
                }
            };
            Ok(Value::Window(Rc::new(RefCell::new(data))))
        }
        BuiltinId::Identifier => {
            if args.is_empty() {
                return Err(arity_error(id, "at least 1", 0));
            }
            let mut text = String::new();
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    text.push(':');
                }
                text.push_str(&format!("{a}"));
            }
            Ok(Value::identifier(text))
        }
        BuiltinId::Iterator => {
            let [arg] = take_args::<1>(id, &mut args)?;
            match arg {
                Value::Map(m) => {
                    let keys = m
                        .borrow()
                        .keys()
                        .into_iter()
                        .map(Value::identifier)
                        .collect();
                    Ok(Value::Iterator(Rc::new(RefCell::new(IteratorData::over(
                        keys,
                    )))))
                }
                Value::Window(w) => Ok(Value::Iterator(Rc::new(RefCell::new(IteratorData::over(
                    w.borrow().values(),
                ))))),
                Value::Sequence(s) => Ok(Value::Iterator(Rc::new(RefCell::new(
                    IteratorData::over(s.borrow().clone()),
                )))),
                Value::Assoc(ix) => {
                    let table = assoc_table(ctx.program, ix)?;
                    let keys = ctx.host.assoc_keys(table)?;
                    Ok(Value::Iterator(Rc::new(RefCell::new(IteratorData::over(
                        keys.into_iter().map(Value::identifier).collect(),
                    )))))
                }
                other => Err(type_error(
                    id,
                    "a map, window, sequence or association",
                    &other,
                )),
            }
        }

        BuiltinId::Insert => {
            if args.len() != 3 {
                return Err(arity_error(id, "3 (container, key, value)", args.len()));
            }
            let value = args.pop().expect("len checked");
            let key = args.pop().expect("len checked");
            let container = args.pop().expect("len checked");
            let key = key_text(id, &key)?;
            match container {
                Value::Map(m) => {
                    m.borrow_mut().insert(key, value);
                    Ok(Value::Null)
                }
                Value::Assoc(ix) => {
                    let table = assoc_table(ctx.program, ix)?;
                    let mut scalars = Vec::new();
                    value.flatten_scalars(&mut scalars)?;
                    ctx.host.assoc_insert(table, &key, scalars)?;
                    Ok(Value::Null)
                }
                other => Err(type_error(id, "a map or association", &other)),
            }
        }
        BuiltinId::Lookup => {
            let [container, key] = take_args::<2>(id, &mut args)?;
            let key = key_text(id, &key)?;
            match container {
                Value::Map(m) => Ok(m.borrow().lookup(&key).unwrap_or(Value::Null)),
                Value::Assoc(ix) => {
                    let table = assoc_table(ctx.program, ix)?;
                    match ctx.host.assoc_lookup(table, &key)? {
                        Some(values) => Ok(scalars_to_sequence(values)),
                        None => Ok(Value::Null),
                    }
                }
                other => Err(type_error(id, "a map or association", &other)),
            }
        }
        BuiltinId::HasEntry => {
            let [container, key] = take_args::<2>(id, &mut args)?;
            let key = key_text(id, &key)?;
            match container {
                Value::Map(m) => Ok(Value::Bool(m.borrow().has_entry(&key))),
                Value::Assoc(ix) => {
                    let table = assoc_table(ctx.program, ix)?;
                    Ok(Value::Bool(ctx.host.assoc_has_entry(table, &key)?))
                }
                other => Err(type_error(id, "a map or association", &other)),
            }
        }
        BuiltinId::Remove => {
            let [container, key] = take_args::<2>(id, &mut args)?;
            let key = key_text(id, &key)?;
            match container {
                Value::Map(m) => Ok(m.borrow_mut().remove(&key).unwrap_or(Value::Null)),
                Value::Assoc(ix) => {
                    let table = assoc_table(ctx.program, ix)?;
                    ctx.host.assoc_remove(table, &key)?;
                    Ok(Value::Null)
                }
                other => Err(type_error(id, "a map or association", &other)),
            }
        }
        BuiltinId::MapSize => {
            let [container] = take_args::<1>(id, &mut args)?;
            match container {
                Value::Map(m) => Ok(Value::Int(m.borrow().len() as i64)),
                Value::Assoc(ix) => {
                    let table = assoc_table(ctx.program, ix)?;
                    Ok(Value::Int(ctx.host.assoc_size(table)? as i64))
                }
                other => Err(type_error(id, "a map or association", &other)),
            }
        }

        BuiltinId::HasNext => {
            let [it] = take_args::<1>(id, &mut args)?;
            match it {
                Value::Iterator(i) => Ok(Value::Bool(i.borrow().has_next())),
                other => Err(type_error(id, "an iterator", &other)),
            }
        }
        BuiltinId::Next => {
            let [it] = take_args::<1>(id, &mut args)?;
            match it {
                Value::Iterator(i) => Ok(i.borrow_mut().advance().unwrap_or(Value::Null)),
                other => Err(type_error(id, "an iterator", &other)),
            }
        }

        BuiltinId::SeqElement => {
            let [seq, index] = take_args::<2>(id, &mut args)?;
            let ix = index
                .as_int()
                .ok_or_else(|| type_error(id, "an integer index", &index))?;
            match seq {
                Value::Sequence(s) => {
                    let s = s.borrow();
                    s.get(ix as usize).cloned().ok_or_else(|| {
                        Error::runtime(format!(
                            "seqElement index {ix} out of bounds (sequence has {} elements)",
                            s.len()
                        ))
                    })
                }
                Value::Event(t) => t
                    .value_at(ix as usize)
                    .cloned()
                    .map(Value::from)
                    .ok_or_else(|| Error::runtime(format!("seqElement index {ix} out of bounds"))),
                other => Err(type_error(id, "a sequence", &other)),
            }
        }
        BuiltinId::SeqSize => {
            let [seq] = take_args::<1>(id, &mut args)?;
            match seq {
                Value::Sequence(s) => Ok(Value::Int(s.borrow().len() as i64)),
                Value::Event(t) => Ok(Value::Int(t.values().len() as i64)),
                other => Err(type_error(id, "a sequence", &other)),
            }
        }
        BuiltinId::Append => {
            let [container, value] = take_args::<2>(id, &mut args)?;
            match container {
                Value::Window(w) => {
                    let now = ctx.host.now();
                    w.borrow_mut().append(now, value);
                    Ok(Value::Null)
                }
                Value::Sequence(s) => {
                    s.borrow_mut().push(value);
                    Ok(Value::Null)
                }
                other => Err(type_error(id, "a window or sequence", &other)),
            }
        }

        BuiltinId::WinSize => {
            let [w] = take_args::<1>(id, &mut args)?;
            match w {
                Value::Window(w) => Ok(Value::Int(w.borrow().len() as i64)),
                other => Err(type_error(id, "a window", &other)),
            }
        }
        BuiltinId::WinClear => {
            let [w] = take_args::<1>(id, &mut args)?;
            match w {
                Value::Window(w) => {
                    w.borrow_mut().clear();
                    Ok(Value::Null)
                }
                other => Err(type_error(id, "a window", &other)),
            }
        }
        BuiltinId::LsqSlope => {
            let [w] = take_args::<1>(id, &mut args)?;
            match w {
                Value::Window(w) => {
                    let w = w.borrow();
                    Ok(Value::Real(least_squares_slope(w.iter().filter_map(
                        |(t, v)| v.as_real().map(|y| (*t as f64 / 1e9, y)),
                    ))))
                }
                other => Err(type_error(id, "a window", &other)),
            }
        }

        BuiltinId::Send => {
            let mut scalars = Vec::new();
            for a in &args {
                a.flatten_scalars(&mut scalars)?;
            }
            ctx.host.send(scalars)?;
            Ok(Value::Null)
        }
        BuiltinId::Publish => {
            if args.is_empty() {
                return Err(arity_error(id, "at least 1 (topic, values...)", 0));
            }
            let topic_arg = args.remove(0);
            let topic = match &topic_arg {
                Value::Str(s) | Value::Identifier(s) => s.to_string(),
                Value::Event(t) => t.schema().name().to_owned(),
                other => return Err(type_error(id, "a topic name", other)),
            };
            let mut scalars = Vec::new();
            for a in &args {
                a.flatten_scalars(&mut scalars)?;
            }
            ctx.host.publish(&topic, scalars)?;
            Ok(Value::Null)
        }
        BuiltinId::Print => {
            let text: Vec<String> = args.iter().map(|a| format!("{a}")).collect();
            ctx.host.print(&text.join(" "));
            Ok(Value::Null)
        }

        BuiltinId::TstampNow => Ok(Value::Tstamp(ctx.host.now())),
        BuiltinId::TstampDiff => {
            let [a, b] = take_args::<2>(id, &mut args)?;
            let (a, b) = match (a.as_int(), b.as_int()) {
                (Some(a), Some(b)) => (a, b),
                _ => return Err(Error::runtime("tstampDiff expects two timestamps")),
            };
            Ok(Value::Int(a - b))
        }
        BuiltinId::HourInDay => {
            let [t] = take_args::<1>(id, &mut args)?;
            let ns = t
                .as_int()
                .ok_or_else(|| type_error(id, "a timestamp", &t))?;
            let secs_in_day = (ns / 1_000_000_000).rem_euclid(86_400);
            Ok(Value::Int(secs_in_day / 3_600))
        }

        BuiltinId::Float => {
            let [v] = take_args::<1>(id, &mut args)?;
            v.as_real()
                .map(Value::Real)
                .ok_or_else(|| type_error(id, "a numeric value", &v))
        }
        BuiltinId::Int => {
            let [v] = take_args::<1>(id, &mut args)?;
            match &v {
                Value::Str(s) | Value::Identifier(s) => s
                    .trim()
                    .parse::<i64>()
                    .map(Value::Int)
                    .map_err(|_| Error::runtime(format!("int: cannot parse `{s}`"))),
                _ => v
                    .as_int()
                    .map(Value::Int)
                    .ok_or_else(|| type_error(id, "a numeric value", &v)),
            }
        }
        BuiltinId::StringOf => {
            let mut text = String::new();
            for a in &args {
                text.push_str(&format!("{a}"));
            }
            Ok(Value::string(text))
        }

        BuiltinId::CurrentTopic => Ok(Value::string(ctx.current_topic)),
        BuiltinId::Delete => Ok(Value::Null),
        BuiltinId::Frequent => {
            if args.len() != 3 {
                return Err(arity_error(id, "3 (map, identifier, k)", args.len()));
            }
            let k = args.pop().expect("len checked");
            let ident = args.pop().expect("len checked");
            let map = args.pop().expect("len checked");
            let k = k
                .as_int()
                .ok_or_else(|| type_error(id, "an integer k", &k))?;
            let key = key_text(id, &ident)?;
            match map {
                Value::Map(m) => {
                    frequent_step(&mut m.borrow_mut(), &key, k.max(2) as usize);
                    Ok(Value::Null)
                }
                other => Err(type_error(id, "a map", &other)),
            }
        }
        BuiltinId::Abs => {
            let [v] = take_args::<1>(id, &mut args)?;
            match v {
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Real(r) => Ok(Value::Real(r.abs())),
                other => Err(type_error(id, "a numeric value", &other)),
            }
        }
        BuiltinId::Min | BuiltinId::Max => {
            let [a, b] = take_args::<2>(id, &mut args)?;
            let ord = a.gapl_cmp(&b)?;
            let pick_a = if id == BuiltinId::Min {
                ord != std::cmp::Ordering::Greater
            } else {
                ord != std::cmp::Ordering::Less
            };
            Ok(if pick_a { a } else { b })
        }
    }
}

fn take_args<const N: usize>(id: BuiltinId, args: &mut Vec<Value>) -> Result<[Value; N]> {
    if args.len() != N {
        return Err(arity_error(id, &N.to_string(), args.len()));
    }
    let mut out: [Value; N] = std::array::from_fn(|_| Value::Null);
    for slot in out.iter_mut().rev() {
        *slot = args.pop().expect("length checked above");
    }
    Ok(out)
}

/// One step of the Misra–Gries "frequent" algorithm (Fig. 14 / [17]):
/// stores at most `k - 1` counters; items occurring more than `n/k` times
/// are guaranteed to be present in the map after processing `n` items.
pub(crate) fn frequent_step(map: &mut MapData, key: &str, k: usize) {
    if let Some(count) = map.lookup(key).and_then(|v| v.as_int()) {
        map.insert(key.to_owned(), Value::Int(count + 1));
    } else if map.len() < k.saturating_sub(1) {
        map.insert(key.to_owned(), Value::Int(1));
    } else {
        let keys = map.keys();
        for existing in keys {
            let count = map.lookup(&existing).and_then(|v| v.as_int()).unwrap_or(0) - 1;
            if count <= 0 {
                map.remove(&existing);
            } else {
                map.insert(existing, Value::Int(count));
            }
        }
    }
}

/// Ordinary least-squares slope of `(x, y)` points; 0.0 for fewer than two
/// points or a degenerate x spread.
pub(crate) fn least_squares_slope(points: impl Iterator<Item = (f64, f64)>) -> f64 {
    let pts: Vec<(f64, f64)> = points.collect();
    let n = pts.len() as f64;
    if pts.len() < 2 {
        return 0.0;
    }
    let sx: f64 = pts.iter().map(|(x, _)| x).sum();
    let sy: f64 = pts.iter().map(|(_, y)| y).sum();
    let sxx: f64 = pts.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = pts.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < f64::EPSILON {
        0.0
    } else {
        (n * sxy - sx * sy) / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for id in BuiltinId::all() {
            assert_eq!(BuiltinId::from_name(id.name()), Some(*id));
        }
        assert_eq!(BuiltinId::from_name("nosuch"), None);
    }

    #[test]
    fn frequent_step_keeps_heavy_hitters() {
        let mut m = MapData::new(DeclType::Int);
        // 60 a's, 30 b's, 10 distinct others, k = 4 (store 3 counters).
        let mut stream = Vec::new();
        for _ in 0..60 {
            stream.push("a".to_string());
        }
        for _ in 0..30 {
            stream.push("b".to_string());
        }
        for i in 0..10 {
            stream.push(format!("x{i}"));
        }
        // interleave deterministically
        stream.sort();
        for item in &stream {
            frequent_step(&mut m, item, 4);
        }
        // a occurs 60 > 100/4 times, so it must be present.
        assert!(m.has_entry("a"));
        assert!(m.len() <= 3);
    }

    #[test]
    fn least_squares_slope_of_a_line_is_exact() {
        let slope = least_squares_slope((0..10).map(|i| (i as f64, 3.0 * i as f64 + 1.0)));
        assert!((slope - 3.0).abs() < 1e-9);
        assert_eq!(least_squares_slope(std::iter::empty()), 0.0);
        assert_eq!(least_squares_slope([(1.0, 5.0)].into_iter()), 0.0);
        // Degenerate x spread.
        assert_eq!(
            least_squares_slope([(2.0, 1.0), (2.0, 9.0)].into_iter()),
            0.0
        );
    }
}
