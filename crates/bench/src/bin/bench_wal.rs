//! Write-ahead-log benchmark snapshot: durable insert throughput with 16
//! concurrent clients, group commit vs one fsync per insert, written as
//! `BENCH_wal.json` for the performance trajectory.
//!
//! The scenario is the durability hot path at its most contended: every
//! client hammers the *same* persistent table (distinct keys), so all
//! records funnel into one log shard. Under [`SyncPolicy::Immediate`]
//! each insert performs its own `fsync` while holding the table lock —
//! the classic one-flush-per-commit baseline. Under the default
//! [`SyncPolicy::Group`] the insert appends while holding the lock but
//! waits for durability after releasing it, and the first waiter
//! flushes for everyone queued behind it — one `fsync` commits a whole
//! convoy, which is where the speedup comes from. The emitted JSON
//! records the achieved flush counts so the amortisation is visible,
//! not inferred.
//!
//! Run with `cargo run --release -p cep_bench --bin bench_wal` (output
//! path override: `BENCH_WAL_OUT`; per-client insert count:
//! `BENCH_WAL_INSERTS`). `scripts/bench_wal.sh` wraps this with the
//! ≥5x floor check, and `scripts/ci.sh` runs it as part of the tier-1
//! gate.

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use gapl::event::Scalar;
use pscache::{CacheBuilder, SyncPolicy};

const CLIENTS: usize = 16;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Scratch directory for one benchmark run.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bench-wal-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Inserts/sec (and the flush count) for `CLIENTS` threads inserting
/// `per_client` distinct-keyed rows each into one durable table.
fn durable_insert_throughput(policy: SyncPolicy, name: &str, per_client: usize) -> (f64, u64) {
    let dir = scratch(name);
    let cache = CacheBuilder::new()
        .durability(&dir)
        .sync_policy(policy)
        .open()
        .expect("open durable cache");
    cache
        .execute("create persistenttable KV (k varchar(24) primary key, v integer)")
        .expect("create table");

    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..CLIENTS {
            let cache = cache.clone();
            scope.spawn(move || {
                for i in 0..per_client {
                    cache
                        .insert(
                            "KV",
                            vec![
                                Scalar::Str(format!("client{t:02}-row{i:06}").into()),
                                Scalar::Int(i as i64),
                            ],
                        )
                        .expect("durable insert");
                }
            });
        }
    });
    let elapsed = start.elapsed();

    let stats = cache.wal_stats().expect("durability is enabled");
    assert_eq!(
        cache.table_len("KV").expect("table exists"),
        CLIENTS * per_client
    );
    drop(cache);
    let _ = fs::remove_dir_all(&dir);
    (
        (CLIENTS * per_client) as f64 / elapsed.as_secs_f64(),
        stats.syncs,
    )
}

fn main() {
    let per_client = env_usize("BENCH_WAL_INSERTS", 200);
    let out = std::env::var("BENCH_WAL_OUT").unwrap_or_else(|_| "BENCH_wal.json".into());

    // Warm-up: touch the temp filesystem and page cache once so neither
    // measured run pays first-use costs.
    durable_insert_throughput(SyncPolicy::Group, "warmup", per_client / 4 + 1);

    let (single_tps, single_syncs) =
        durable_insert_throughput(SyncPolicy::Immediate, "immediate", per_client);
    let (group_tps, group_syncs) =
        durable_insert_throughput(SyncPolicy::Group, "group", per_client);
    let speedup = group_tps / single_tps;
    let total = (CLIENTS * per_client) as f64;

    let json = format!(
        "{{\n  \"scenario\": \"{clients} concurrent clients, durable inserts into one persistent table\",\n  \"clients\": {clients},\n  \"inserts_per_client\": {per_client},\n  \"single_fsync_tps\": {single_tps:.1},\n  \"single_fsync_syncs\": {single_syncs},\n  \"group_commit_tps\": {group_tps:.1},\n  \"group_commit_syncs\": {group_syncs},\n  \"group_commit_mean_group_size\": {group_size:.2},\n  \"group_commit_speedup\": {speedup:.2}\n}}\n",
        clients = CLIENTS,
        per_client = per_client,
        single_tps = single_tps,
        single_syncs = single_syncs,
        group_tps = group_tps,
        group_syncs = group_syncs,
        group_size = total / group_syncs.max(1) as f64,
        speedup = speedup,
    );
    fs::write(&out, &json).expect("write benchmark snapshot");
    println!("{json}");
    println!(
        "group commit: {group_tps:.0} inserts/s over {group_syncs} fsyncs; \
         single-fsync baseline: {single_tps:.0} inserts/s over {single_syncs} fsyncs; \
         speedup {speedup:.1}x -> {out}"
    );
}
