//! The primary side of replication: a TCP listener that serves the WAL
//! stream to follower subscriptions.
//!
//! Each accepted connection performs the bootstrap handshake
//! (snapshot + disk backlog up to the hub watermark at attach time),
//! then settles into the live loop: sealed frame batches from the
//! [`ReplHub`](super::hub::ReplHub) as they commit, heartbeats when the
//! stream is idle, and follower acks flowing back on a side thread for
//! lag accounting. The ordering argument lives with the hub; this
//! module only has to *attach the subscriber before reading disk* so
//! that every record is either in the backlog it reads or in the live
//! stream it forwards — never in neither.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use crate::cache::CacheInner;
use crate::error::{Error, Result};
use crate::repl::proto::{self, FollowerMsg, PrimaryMsg};
use crate::wal;

/// How often the primary beacons its commit watermark on an idle stream.
pub(crate) const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(200);

/// Target size of one bootstrap `Frames` message: large enough to
/// amortise syscalls, small enough that a follower starts applying
/// while the rest of the backlog is still in flight.
const BOOTSTRAP_CHUNK_BYTES: usize = 256 * 1024;

/// A bound replication listener; dropped (or stopped) with the cache.
#[derive(Debug)]
pub(crate) struct ReplListener {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
}

impl ReplListener {
    /// Bind `addr` (port 0 for an ephemeral port) and serve the WAL
    /// stream of the cache behind `inner` until stopped. The listener
    /// holds only a weak reference: it never keeps a dropped cache
    /// alive.
    pub fn bind(addr: impl ToSocketAddrs, inner: Weak<CacheInner>) -> Result<ReplListener> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| Error::repl(format!("binding the replication listener failed: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| Error::repl(e.to_string()))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let conns: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_workers = Arc::clone(&workers);
        let accept_conns = Arc::clone(&conns);
        let accept = std::thread::Builder::new()
            .name("pscache-repl-accept".into())
            .spawn(move || {
                for (conn_id, stream) in (0_u64..).zip(listener.incoming()) {
                    if accept_shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { break };
                    if let Ok(clone) = stream.try_clone() {
                        accept_conns.lock().insert(conn_id, clone);
                    }
                    let inner = inner.clone();
                    let shutdown = Arc::clone(&accept_shutdown);
                    let conns = Arc::clone(&accept_conns);
                    let worker = std::thread::Builder::new()
                        .name(format!("pscache-repl-conn-{conn_id}"))
                        .spawn(move || {
                            let _ = serve_conn(&inner, stream, &shutdown);
                            conns.lock().remove(&conn_id);
                        })
                        .expect("spawning a replication worker never fails");
                    // Reap workers whose connection already ended, so a
                    // crash-looping follower cannot grow this vector for
                    // the listener's whole lifetime.
                    let mut workers = accept_workers.lock();
                    workers.retain(|w| !w.is_finished());
                    workers.push(worker);
                }
            })
            .expect("spawning the replication accept thread never fails");

        Ok(ReplListener {
            local_addr,
            shutdown,
            accept: Some(accept),
            workers,
            conns,
        })
    }

    /// The address the listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting, close every follower connection, and join all
    /// threads.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        for (_, stream) in self.conns.lock().drain() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        let workers: Vec<JoinHandle<()>> = std::mem::take(&mut *self.workers.lock());
        for worker in workers {
            let _ = worker.join();
        }
    }
}

impl Drop for ReplListener {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop();
        }
    }
}

fn serve_conn(
    inner: &Weak<CacheInner>,
    stream: TcpStream,
    shutdown: &Arc<AtomicBool>,
) -> Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| Error::repl(e.to_string()))?);
    let writer = BufWriter::new(stream.try_clone().map_err(|e| Error::repl(e.to_string()))?);
    proto::read_magic(&mut reader)?;
    let Some(FollowerMsg::Subscribe { from_lsn }) = FollowerMsg::read(&mut reader)? else {
        return Err(Error::repl("expected a Subscribe to open the stream"));
    };
    // The accepted connection must never keep a dropped cache alive:
    // the strong reference is held only across the bootstrap reads, and
    // the live loop runs on the hub alone.
    let (hub, sub_id, rx, attach_lsn, snapshot, frames) = {
        let Some(cache) = inner.upgrade() else {
            return Ok(());
        };
        let hub = Arc::clone(
            cache
                .repl_hub()
                .ok_or_else(|| Error::repl("replication is served only by durable caches"))?,
        );
        // Attach the live subscription *before* reading disk: every
        // sealed record is now either in the backlog (lsn <= the attach
        // watermark) or will arrive on `rx` (lsn above it).
        let (sub_id, rx, attach_lsn) = hub.subscribe();
        // Seed the lag accounting with what the follower claims to
        // have, so one resuming subscriber does not read as "the whole
        // history behind" until its first ack lands.
        hub.note_ack(sub_id, from_lsn.min(attach_lsn));
        // A follower claiming records the primary does not have
        // diverged (typically: the primary restarted and lost an
        // unacknowledged tail). Force a checkpoint so a snapshot exists
        // that captures the primary's authoritative state, then reset
        // the follower to it.
        let bootstrap = (|| {
            if from_lsn > attach_lsn {
                cache.checkpoint()?;
            }
            cache.repl_bootstrap()
        })();
        match bootstrap {
            Ok((snapshot, frames)) => (hub, sub_id, rx, attach_lsn, snapshot, frames),
            Err(e) => {
                hub.unsubscribe(sub_id);
                return Err(e);
            }
        }
    };
    let result = stream_to_follower(
        &hub, sub_id, rx, attach_lsn, from_lsn, snapshot, frames, reader, writer, &stream, shutdown,
    );
    hub.unsubscribe(sub_id);
    let _ = stream.shutdown(std::net::Shutdown::Both);
    result
}

#[allow(clippy::too_many_arguments)]
fn stream_to_follower(
    hub: &Arc<super::hub::ReplHub>,
    sub_id: u64,
    rx: crossbeam::channel::Receiver<super::hub::StreamBatch>,
    attach_lsn: u64,
    from_lsn: u64,
    snapshot: Option<Vec<u8>>,
    frames: Vec<(u64, Vec<u8>)>,
    reader: BufReader<TcpStream>,
    mut writer: BufWriter<TcpStream>,
    stream: &TcpStream,
    shutdown: &Arc<AtomicBool>,
) -> Result<()> {
    let mut reset = false;
    if let Some(snap_bytes) = &snapshot {
        let high = wal::scan_snapshot_high_watermark(snap_bytes)?;
        if from_lsn < high || from_lsn > attach_lsn {
            PrimaryMsg::Snapshot(snap_bytes.clone()).write(&mut writer)?;
            hub.note_snapshot_served();
            reset = true;
        }
    } else if from_lsn > attach_lsn {
        return Err(Error::repl(
            "diverged follower but no snapshot could be produced",
        ));
    }

    // After a reset the follower filters snapshot-covered records by
    // per-table watermark, so ship the full disk backlog; otherwise
    // only the records it is missing.
    let effective_from = if reset { 0 } else { from_lsn };
    let mut chunk: Vec<u8> = Vec::new();
    for (lsn, frame) in &frames {
        if *lsn <= effective_from || *lsn > attach_lsn {
            continue;
        }
        chunk.extend_from_slice(frame);
        if chunk.len() >= BOOTSTRAP_CHUNK_BYTES {
            PrimaryMsg::Frames(std::mem::take(&mut chunk)).write(&mut writer)?;
        }
    }
    if !chunk.is_empty() {
        PrimaryMsg::Frames(chunk).write(&mut writer)?;
    }
    PrimaryMsg::Heartbeat {
        commit_lsn: hub.commit_lsn(),
    }
    .write(&mut writer)?;

    // Acks arrive on a side thread so a slow ack can never stall the
    // stream (and vice versa).
    let closed = Arc::new(AtomicBool::new(false));
    let ack_closed = Arc::clone(&closed);
    let ack_hub = Arc::clone(hub);
    let ack_thread = std::thread::Builder::new()
        .name("pscache-repl-acks".into())
        .spawn(move || {
            let mut reader = reader;
            // Anything other than an ack — a renewed Subscribe, a clean
            // close, a transport error — ends the connection.
            while let Ok(Some(FollowerMsg::Ack { lsn })) = FollowerMsg::read(&mut reader) {
                ack_hub.note_ack(sub_id, lsn);
            }
            ack_closed.store(true, Ordering::Release);
        })
        .expect("spawning the ack reader never fails");

    // The live loop: forward committed batches as they arrive, beacon
    // the watermark when idle.
    let result = loop {
        if shutdown.load(Ordering::Acquire) || closed.load(Ordering::Acquire) {
            break Ok(());
        }
        match rx.recv_timeout(HEARTBEAT_INTERVAL) {
            Ok((_hi, first)) => {
                let mut batch = first.to_vec();
                // Coalesce whatever else has already committed into one
                // message — keeps the frame rate bounded under load.
                while let Ok((_h, more)) = rx.try_recv() {
                    batch.extend_from_slice(&more);
                }
                if let Err(e) = PrimaryMsg::Frames(batch).write(&mut writer) {
                    break Err(e);
                }
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                if let Err(e) = (PrimaryMsg::Heartbeat {
                    commit_lsn: hub.commit_lsn(),
                })
                .write(&mut writer)
                {
                    break Err(e);
                }
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break Ok(()),
        }
    };

    // Unblock and reap the ack reader.
    let _ = stream.shutdown(std::net::Shutdown::Both);
    let _ = ack_thread.join();
    result
}
