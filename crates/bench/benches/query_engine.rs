//! Criterion benchmarks of the zero-copy query engine: the paper's
//! periodic-query workload (`select * from T since τ`, Fig. 1) against
//! hot event tables at several table sizes.
//!
//! Three axes:
//!
//! * **full scan vs windowed** — the indexed `since` path binary-searches
//!   the time-ordered suffix, so a 1% window over a 100k-row table should
//!   run orders of magnitude faster than a full scan;
//! * **plan-cached vs re-parsed SQL** — repeated query texts skip the
//!   parser and name resolution entirely;
//! * **predicate evaluation** — compiled (by-index) predicates over
//!   string and integer columns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gapl::event::Scalar;
use pscache::{Cache, CacheBuilder, Query};

const SIZES: [usize; 3] = [1_000, 10_000, 100_000];

/// A stream table with `rows` tuples at timestamps 1..=rows.
fn populated_cache(rows: usize) -> Cache {
    let cache = CacheBuilder::new().manual_clock().build();
    cache
        .execute(&format!(
            "create table Flows (srcip varchar(16), nbytes integer) capacity {rows}"
        ))
        .expect("create table");
    let clock = cache.manual_clock().expect("manual clock").clone();
    // Chunk so timestamps resolve to 0.1% of the table: batches share one
    // insertion timestamp by design, and the windowed queries below need
    // the 1% boundary to fall *inside* the data at every size.
    let chunk_rows = (rows / 1000).max(1);
    for chunk in (0..rows).collect::<Vec<_>>().chunks(chunk_rows) {
        clock.advance(chunk.len() as u64);
        cache
            .insert_batch(
                "Flows",
                chunk
                    .iter()
                    .map(|i| {
                        vec![
                            Scalar::from(format!("10.0.{}.{}", (i / 250) % 250, i % 250)),
                            Scalar::Int(*i as i64),
                        ]
                    })
                    .collect(),
            )
            .expect("insert batch");
    }
    cache
}

fn bench_full_scan_vs_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_since_window");
    for rows in SIZES {
        let cache = populated_cache(rows);
        let full = Query::new("Flows");
        group.bench_function(BenchmarkId::new("full_scan", rows), |b| {
            b.iter(|| cache.select(&full).expect("select"));
        });
        // A 1% window at the tail of the table.
        let tau = cache
            .select(&Query::new("Flows"))
            .expect("select")
            .max_tstamp()
            .expect("non-empty")
            - (rows as u64) / 100;
        let windowed = Query::new("Flows").since(tau);
        group.bench_function(BenchmarkId::new("window_1pct", rows), |b| {
            b.iter(|| cache.select(&windowed).expect("select"));
        });
    }
    group.finish();
}

fn bench_plan_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_plan_cache");
    let cache = populated_cache(10_000);
    let sql = "select srcip, nbytes from Flows where nbytes >= 9900 limit 16";
    // Warm the cache so the hot path is measured.
    cache.execute(sql).expect("select");
    group.bench_function("cached_sql_text", |b| {
        b.iter(|| cache.execute(sql).expect("select"));
    });
    let programmatic = Query::new("Flows")
        .columns(["srcip", "nbytes"])
        .filter(pscache::Predicate::compare(
            "nbytes",
            pscache::Comparison::Ge,
            9900i64,
        ))
        .limit(16);
    group.bench_function("programmatic_recompiled", |b| {
        b.iter(|| cache.select(&programmatic).expect("select"));
    });
    group.finish();
}

fn bench_compiled_predicates(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_predicates");
    let cache = populated_cache(10_000);
    let by_int = Query::new("Flows").filter(pscache::Predicate::compare(
        "nbytes",
        pscache::Comparison::Gt,
        5_000i64,
    ));
    group.bench_function("int_predicate_10k", |b| {
        b.iter(|| cache.select(&by_int).expect("select"));
    });
    let by_str = Query::new("Flows").filter(pscache::Predicate::compare(
        "srcip",
        pscache::Comparison::Eq,
        "10.0.3.7",
    ));
    group.bench_function("str_predicate_10k", |b| {
        b.iter(|| cache.select(&by_str).expect("select"));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_full_scan_vs_window,
    bench_plan_cache,
    bench_compiled_predicates
);
criterion_main!(benches);
