//! A synthetic stock-tick dataset standing in for the anonymised dataset
//! shipped with the Cayuga distribution (112,635 events, §6.5).
//!
//! Prices follow a per-symbol random walk with occasional injected
//! double-top (M-shaped) formations and monotone runs so that the Q2 and
//! Q3 queries of Fig. 18 have non-trivial matches.

use gapl::event::{AttrType, Scalar, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One stock tick.
#[derive(Debug, Clone, PartialEq)]
pub struct StockTick {
    /// Stock symbol.
    pub name: String,
    /// Trade price.
    pub price: f64,
    /// Trade volume.
    pub volume: i64,
}

impl StockTick {
    /// The tick as scalar values, in [`StockGenerator::schema`] order.
    pub fn to_scalars(&self) -> Vec<Scalar> {
        vec![
            Scalar::Str(self.name.as_str().into()),
            Scalar::Real(self.price),
            Scalar::Int(self.volume),
        ]
    }
}

/// Configuration of the stock generator. The default event count matches
/// the paper's dataset size.
#[derive(Debug, Clone)]
pub struct StockConfig {
    /// Total number of ticks (paper: 112,635).
    pub events: usize,
    /// Number of distinct symbols.
    pub symbols: usize,
    /// Probability that a symbol starts an injected double-top formation at
    /// any given tick.
    pub double_top_rate: f64,
    /// Probability that a symbol starts an injected monotone run.
    pub run_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StockConfig {
    fn default() -> Self {
        StockConfig {
            events: 112_635,
            symbols: 50,
            double_top_rate: 0.002,
            run_rate: 0.005,
            seed: 2012,
        }
    }
}

/// Per-symbol walk state.
#[derive(Debug, Clone)]
struct SymbolState {
    name: String,
    price: f64,
    /// Remaining scripted price deltas from an injected pattern.
    script: Vec<f64>,
}

/// Deterministic generator of [`StockTick`]s.
#[derive(Debug)]
pub struct StockGenerator {
    config: StockConfig,
    rng: StdRng,
    symbols: Vec<SymbolState>,
}

impl StockGenerator {
    /// Create a generator from a configuration.
    pub fn new(config: StockConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let symbols = (0..config.symbols.max(1))
            .map(|i| SymbolState {
                name: Self::symbol_name(i),
                price: rng.gen_range(20.0..200.0),
                script: Vec::new(),
            })
            .collect();
        StockGenerator {
            config,
            rng,
            symbols,
        }
    }

    /// A small configuration for fast tests (5,000 ticks, 10 symbols).
    pub fn small() -> Self {
        Self::new(StockConfig {
            events: 5_000,
            symbols: 10,
            ..StockConfig::default()
        })
    }

    /// The schema of the `Stocks` stream.
    pub fn schema() -> Schema {
        Schema::new(
            "Stocks",
            vec![
                ("name", AttrType::Str),
                ("price", AttrType::Real),
                ("volume", AttrType::Int),
            ],
        )
        .expect("the Stocks schema is statically valid")
    }

    /// The `create table` statement for the `Stocks` stream.
    pub fn create_table_sql() -> &'static str {
        "create table Stocks (name varchar(8), price real, volume integer)"
    }

    /// The symbol name of index `i`.
    pub fn symbol_name(i: usize) -> String {
        format!("SYM{i:03}")
    }

    /// Total number of ticks this generator will produce.
    pub fn len(&self) -> usize {
        self.config.events
    }

    /// True when configured for zero ticks.
    pub fn is_empty(&self) -> bool {
        self.config.events == 0
    }

    /// Generate the full tick stream.
    pub fn generate(&mut self) -> Vec<StockTick> {
        (0..self.config.events).map(|_| self.next_tick()).collect()
    }

    fn next_tick(&mut self) -> StockTick {
        let ix = self.rng.gen_range(0..self.symbols.len());
        // Borrow-friendly: decide on pattern injection before mutating.
        let inject_double_top = self.symbols[ix].script.is_empty()
            && self
                .rng
                .gen_bool(self.config.double_top_rate.clamp(0.0, 1.0));
        let inject_run = !inject_double_top
            && self.symbols[ix].script.is_empty()
            && self.rng.gen_bool(self.config.run_rate.clamp(0.0, 1.0));

        if inject_double_top {
            let amplitude = self.rng.gen_range(2.0..8.0);
            let script = Self::double_top_script(amplitude);
            self.symbols[ix].script = script;
        } else if inject_run {
            let len = self.rng.gen_range(4..12);
            let step = self.rng.gen_range(0.2..1.5);
            self.symbols[ix].script = vec![step; len];
        }

        let delta = if let Some(d) = self.symbols[ix].script.pop() {
            d
        } else {
            self.rng.gen_range(-1.0..1.0)
        };
        let volume = self.rng.gen_range(100..10_000);
        let state = &mut self.symbols[ix];
        state.price = (state.price + delta).max(1.0);
        StockTick {
            name: state.name.clone(),
            price: (state.price * 100.0).round() / 100.0,
            volume,
        }
    }

    /// The scripted deltas of an M-shaped formation (stored reversed so the
    /// generator can `pop()` them in order): rise, fall, rise to roughly the
    /// same peak, fall.
    fn double_top_script(amplitude: f64) -> Vec<f64> {
        let up = amplitude / 3.0;
        let sequence = vec![
            up,
            up,
            up, // first peak
            -up,
            -up, // trough
            up,
            up,        // second peak (≈ first: 3·up − 2·up + 2·up = 3·up)
            up * 0.01, // a hair above, still within tolerance
            -up,
            -up, // confirmation fall
        ];
        sequence.into_iter().rev().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_the_configured_number_of_ticks() {
        let mut g = StockGenerator::small();
        assert_eq!(g.len(), 5_000);
        assert!(!g.is_empty());
        let ticks = g.generate();
        assert_eq!(ticks.len(), 5_000);
        let schema = StockGenerator::schema();
        assert!(schema.check(&ticks[0].to_scalars()).is_ok());
    }

    #[test]
    fn prices_stay_positive_and_symbols_stay_in_range() {
        let mut g = StockGenerator::small();
        for tick in g.generate() {
            assert!(tick.price >= 1.0);
            assert!(tick.volume >= 100);
            assert!(tick.name.starts_with("SYM"));
            let ix: usize = tick.name[3..].parse().unwrap();
            assert!(ix < 10);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = StockGenerator::small().generate();
        let b = StockGenerator::small().generate();
        assert_eq!(a, b);
        let c = StockGenerator::new(StockConfig {
            events: 5_000,
            symbols: 10,
            seed: 99,
            ..StockConfig::default()
        })
        .generate();
        assert_ne!(a, c);
    }

    #[test]
    fn the_stream_contains_monotone_runs_and_double_tops() {
        let mut g = StockGenerator::new(StockConfig {
            events: 20_000,
            symbols: 5,
            ..StockConfig::default()
        });
        let ticks = g.generate();
        // Count, per symbol, the longest run of strictly increasing prices.
        use std::collections::HashMap;
        let mut prev: HashMap<&str, f64> = HashMap::new();
        let mut run: HashMap<&str, usize> = HashMap::new();
        let mut longest = 0usize;
        for t in &ticks {
            let entry = run.entry(&t.name).or_insert(1);
            if let Some(p) = prev.get(t.name.as_str()) {
                if t.price > *p {
                    *entry += 1;
                    longest = longest.max(*entry);
                } else {
                    *entry = 1;
                }
            }
            prev.insert(&t.name, t.price);
        }
        assert!(
            longest >= 4,
            "injected monotone runs should produce runs of length >= 4, got {longest}"
        );
    }
}
