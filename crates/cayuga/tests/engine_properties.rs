//! Property-based tests of the NFA engine against brute-force references
//! on randomly generated stock streams.

use std::sync::Arc;

use proptest::prelude::*;

use cayuga::queries::{q1_select_publish, q3_increasing_runs, reference_maximal_runs};
use cayuga::Engine;
use gapl::event::{AttrType, Scalar, Schema, Tuple};

fn schema() -> Arc<Schema> {
    Arc::new(
        Schema::new(
            "Stocks",
            vec![("name", AttrType::Str), ("price", AttrType::Real)],
        )
        .expect("valid schema"),
    )
}

/// Build a tuple stream from `(symbol index, price)` pairs.
fn stream(ticks: &[(u8, f64)]) -> Vec<Tuple> {
    let schema = schema();
    ticks
        .iter()
        .enumerate()
        .map(|(i, (sym, price))| {
            Tuple::new(
                Arc::clone(&schema),
                vec![Scalar::Str(format!("S{sym}").into()), Scalar::Real(*price)],
                i as u64,
            )
            .expect("valid tuple")
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Q1 is a pass-through: exactly one match per event, carrying the
    /// event's own attributes, and no live instances linger.
    #[test]
    fn q1_produces_exactly_one_match_per_event(
        ticks in proptest::collection::vec((0u8..4, 1.0f64..100.0), 0..120),
    ) {
        let events = stream(&ticks);
        let mut engine = Engine::new(q1_select_publish());
        engine.run(&events);
        prop_assert_eq!(engine.matches().len(), events.len());
        prop_assert_eq!(engine.live_instances(), 0);
        for (m, event) in engine.matches().iter().zip(&events) {
            prop_assert_eq!(m.bindings.get("price").cloned(), event.field("price"));
            prop_assert_eq!(m.at, event.tstamp());
        }
    }

    /// Q3: every maximal increasing run (of length ≥ 3) that closes within
    /// the stream is also reported by the NFA, for every partition.
    #[test]
    fn q3_detects_every_closed_maximal_run(
        ticks in proptest::collection::vec((0u8..3, 1.0f64..50.0), 0..150),
    ) {
        let events = stream(&ticks);
        let reference = reference_maximal_runs(&events, 3);
        let mut engine = Engine::new(q3_increasing_runs(3));
        engine.run(&events);
        // The reference also flushes still-open runs at end of stream; the
        // NFA only reports runs that have visibly ended, so compare against
        // the closed prefix per partition.
        let closed: Vec<&(String, i64)> = reference
            .iter()
            .filter(|(name, len)| {
                // A run is closed if some later event of the same partition
                // is not part of it; conservatively, require that the NFA
                // report it — unless it is the trailing run of that
                // partition (which never closes).
                let last_of_partition = events
                    .iter()
                    .rev()
                    .find(|e| e.field("name").map(|n| n.to_string()) == Some(name.clone()));
                match last_of_partition {
                    None => false,
                    Some(last) => {
                        // If the run length equals the longest increasing
                        // suffix ending at the last event, it may still be
                        // open; skip it.
                        let mut suffix = 1i64;
                        let mut prev = last.field("price").and_then(|p| p.as_real()).unwrap_or(0.0);
                        for e in events
                            .iter()
                            .rev()
                            .skip_while(|e| !std::ptr::eq(*e, last))
                            .skip(1)
                            .filter(|e| e.field("name").map(|n| n.to_string()) == Some(name.clone()))
                        {
                            let p = e.field("price").and_then(|p| p.as_real()).unwrap_or(0.0);
                            if p < prev {
                                suffix += 1;
                                prev = p;
                            } else {
                                break;
                            }
                        }
                        *len != suffix
                    }
                }
            })
            .collect();
        for (name, len) in closed {
            prop_assert!(
                engine.matches().iter().any(|m| {
                    m.bindings.get_str("name") == Some(name.as_str())
                        && m.bindings.get_int("len") == Some(*len)
                }),
                "NFA missed closed run {name}:{len}"
            );
        }
    }

    /// Engine bookkeeping invariants: instance counts never decrease, the
    /// maximum live count is at least the final live count, and processing
    /// the same stream twice through two engines gives identical matches.
    #[test]
    fn engine_bookkeeping_is_consistent_and_deterministic(
        ticks in proptest::collection::vec((0u8..3, 1.0f64..50.0), 0..100),
    ) {
        let events = stream(&ticks);
        let mut a = Engine::new(q3_increasing_runs(2));
        let mut b = Engine::new(q3_increasing_runs(2));
        a.run(&events);
        b.run(&events);
        prop_assert_eq!(a.matches(), b.matches());
        prop_assert_eq!(a.events_processed(), events.len() as u64);
        prop_assert!(a.max_live_instances() >= a.live_instances());
        prop_assert!(a.instances_created() >= a.matches().len() as u64);
    }
}
