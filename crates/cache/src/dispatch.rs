//! The predicate-indexed dispatch layer: decides, per published tuple,
//! which automata can possibly be affected — *before* anything is
//! enqueued or a VM is woken.
//!
//! Every topic owns a [`TopicDispatch`]: a monotone counter of tuples
//! published on the topic plus a copy-on-write [`SubscriberIndex`]. The
//! index sorts each subscriber into the cheapest structure its compiled
//! [`Prefilter`] admits:
//!
//! * **equality buckets** — guards of the exact shape
//!   `event.col == literal` hash straight to their bucket, so probing
//!   is O(1) no matter how many thousand automata watch distinct keys;
//! * **range bands** — single-column conjunctions of numeric
//!   comparisons (`lo <= event.col && event.col < hi`) become an
//!   interval test;
//! * **scanned guards** — anything else extractable (disjunctions,
//!   multi-column conjunctions, `!=`) is evaluated per tuple with
//!   [`Guard::matches`];
//! * **catch-all** — opaque automata receive everything.
//!
//! # Equivalence with the VM
//!
//! A bucket or band may only *prune*; it must never skip an automaton
//! the VM would have matched. The VM compares numerics through `f64`
//! ([`gapl::value::Value::gapl_cmp`]), so bucket keys canonicalise every
//! numeric scalar to the bit pattern of its `f64` view (with `-0.0`
//! folded into `+0.0`): two scalars hash to the same bucket **iff** the
//! VM considers them `==`. Band endpoints are compared as `f64` for the
//! same reason, and a NaN attribute (which the VM turns into a runtime
//! error) conservatively admits. String buckets use plain string
//! equality, which is the VM's string `==`.
//!
//! Registration and publication synchronise through the per-topic
//! [`RwLock`]: a publisher increments `published` and snapshots the
//! index under the read lock, a registrar swaps the index and reads its
//! `published` baseline under the write lock. An automaton's exact
//! `skipped_by_prefilter` count is therefore derivable at any time as
//! `(published − baseline) − delivered`, costing the hot path nothing.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use gapl::event::{AttrType, Scalar, Schema, Tuple};
use gapl::prefilter::{Guard, GuardOp, Prefilter};
use gapl::program::Const;

use crate::runtime::AutomatonId;

/// `f64` bits with `-0.0` canonicalised to `+0.0`, so numerically equal
/// values always share a bucket key.
fn canonical_bits(f: f64) -> u64 {
    if f == 0.0 {
        0
    } else {
        f.to_bits()
    }
}

/// The numeric view the VM uses for comparisons
/// (mirrors `gapl::value::Value::as_real`, including `bool` as 0/1).
fn numeric_view(s: &Scalar) -> Option<f64> {
    match s {
        Scalar::Int(i) => Some(*i as f64),
        Scalar::Real(r) => Some(*r),
        Scalar::Tstamp(t) => Some(*t as f64),
        Scalar::Bool(b) => Some(f64::from(u8::from(*b))),
        Scalar::Str(_) => None,
    }
}

/// A bucket key: canonical numeric bits or a shared string.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum EqKey {
    Num(u64),
    Str(Arc<str>),
}

/// The key a tuple attribute probes with.
fn probe_key(value: &Scalar) -> EqKey {
    match value {
        Scalar::Str(s) => EqKey::Str(Arc::clone(s)),
        other => EqKey::Num(canonical_bits(
            numeric_view(other).expect("non-string scalars are numeric"),
        )),
    }
}

/// The key a guard literal registers under, given the column's type —
/// `None` when the literal can never hash-match the column's values
/// (e.g. a number against a string column), in which case the guard is
/// evaluated by scan instead.
fn literal_key(col_ty: AttrType, value: &Const) -> Option<EqKey> {
    match (col_ty, value) {
        (AttrType::Str, Const::Str(s)) => Some(EqKey::Str(Arc::from(s.as_str()))),
        (AttrType::Str, _) | (_, Const::Str(_)) => None,
        (_, Const::Int(i)) => Some(EqKey::Num(canonical_bits(*i as f64))),
        (_, Const::Real(r)) if !r.is_nan() => Some(EqKey::Num(canonical_bits(*r))),
        (_, Const::Real(_)) => None,
        (_, Const::Bool(b)) => Some(EqKey::Num(canonical_bits(f64::from(u8::from(*b))))),
    }
}

fn literal_as_f64(value: &Const) -> Option<f64> {
    match value {
        Const::Int(i) => Some(*i as f64),
        Const::Real(r) => Some(*r),
        Const::Bool(b) => Some(f64::from(u8::from(*b))),
        Const::Str(_) => None,
    }
}

/// A closed/open numeric interval on one column; the `bool` is
/// "inclusive".
#[derive(Debug, Clone, PartialEq)]
struct Band {
    col: usize,
    lo: Option<(f64, bool)>,
    hi: Option<(f64, bool)>,
}

impl Band {
    fn unconstrained(col: usize) -> Band {
        Band {
            col,
            lo: None,
            hi: None,
        }
    }

    /// Tighten the band with one more conjunct. Returns false for
    /// operators a band cannot express.
    fn constrain(&mut self, op: GuardOp, v: f64) -> bool {
        let tighten_lo = |lo: &mut Option<(f64, bool)>, cand: (f64, bool)| {
            *lo = Some(match *lo {
                Some(cur) if cur.0 > cand.0 || (cur.0 == cand.0 && !cur.1) => cur,
                _ => cand,
            });
        };
        let tighten_hi = |hi: &mut Option<(f64, bool)>, cand: (f64, bool)| {
            *hi = Some(match *hi {
                Some(cur) if cur.0 < cand.0 || (cur.0 == cand.0 && !cur.1) => cur,
                _ => cand,
            });
        };
        match op {
            GuardOp::Gt => tighten_lo(&mut self.lo, (v, false)),
            GuardOp::Ge => tighten_lo(&mut self.lo, (v, true)),
            GuardOp::Lt => tighten_hi(&mut self.hi, (v, false)),
            GuardOp::Le => tighten_hi(&mut self.hi, (v, true)),
            GuardOp::Eq => {
                tighten_lo(&mut self.lo, (v, true));
                tighten_hi(&mut self.hi, (v, true));
            }
            GuardOp::Ne => return false,
        }
        true
    }

    /// Whether a value falls inside the band. NaN admits: the VM raises
    /// a runtime error on NaN comparisons, so the event must be
    /// delivered for the error to be observed.
    fn admits(&self, v: f64) -> bool {
        if v.is_nan() {
            return true;
        }
        let above = match self.lo {
            Some((lo, true)) => v >= lo,
            Some((lo, false)) => v > lo,
            None => true,
        };
        let below = match self.hi {
            Some((hi, true)) => v <= hi,
            Some((hi, false)) => v < hi,
            None => true,
        };
        above && below
    }
}

/// Where one subscriber landed in the index.
#[derive(Debug, Clone, PartialEq)]
enum Slot {
    Eq(usize, EqKey),
    Band(Band),
    Scan(Guard),
    CatchAll,
}

fn classify(prefilter: &Prefilter, schema: &Schema) -> Slot {
    let Prefilter::Guard(guard) = prefilter else {
        return Slot::CatchAll;
    };
    if let Some(slot) = eq_slot(guard, schema) {
        return slot;
    }
    if let Some(band) = band_slot(guard, schema) {
        return Slot::Band(band);
    }
    Slot::Scan(guard.clone())
}

/// `event.col == literal` on a schema column becomes an equality bucket.
fn eq_slot(guard: &Guard, schema: &Schema) -> Option<Slot> {
    let Guard::Cmp {
        field,
        op: GuardOp::Eq,
        value,
    } = guard
    else {
        return None;
    };
    let col = schema.index_of(field)?;
    let key = literal_key(schema.attributes()[col].ty, value)?;
    Some(Slot::Eq(col, key))
}

/// A conjunction of numeric comparisons on one numeric column becomes a
/// range band.
fn band_slot(guard: &Guard, schema: &Schema) -> Option<Band> {
    fn conjuncts<'g>(g: &'g Guard, out: &mut Vec<&'g Guard>) {
        match g {
            Guard::All(parts) => parts.iter().for_each(|p| conjuncts(p, out)),
            other => out.push(other),
        }
    }
    let mut parts = Vec::new();
    conjuncts(guard, &mut parts);
    let mut band: Option<Band> = None;
    for part in parts {
        let Guard::Cmp { field, op, value } = part else {
            return None;
        };
        let col = schema.index_of(field)?;
        if !matches!(
            schema.attributes()[col].ty,
            AttrType::Int | AttrType::Real | AttrType::Tstamp
        ) {
            return None;
        }
        let v = literal_as_f64(value)?;
        if v.is_nan() {
            return None;
        }
        match band {
            Some(ref mut b) => {
                // Two distinct columns cannot form one band.
                if b.col != col || !b.constrain(*op, v) {
                    return None;
                }
            }
            None => {
                let mut b = Band::unconstrained(col);
                if !b.constrain(*op, v) {
                    return None;
                }
                band = Some(b);
            }
        }
    }
    band
}

/// The copy-on-write subscriber index of one topic (see the [module
/// documentation](self)).
#[derive(Debug, Default, Clone)]
pub(crate) struct SubscriberIndex {
    /// column → bucket key → subscribers whose guard is `col == key`.
    eq: HashMap<usize, HashMap<EqKey, Vec<AutomatonId>>>,
    bands: Vec<(AutomatonId, Band)>,
    scans: Vec<(AutomatonId, Guard)>,
    catch_all: Vec<AutomatonId>,
    /// Every subscriber, registration-ordered — the naive fan-out set.
    all: Vec<AutomatonId>,
}

impl SubscriberIndex {
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }

    pub fn subscriber_count(&self) -> usize {
        self.all.len()
    }

    /// Every subscriber, for the test-only naive fan-out mode.
    pub fn all(&self) -> &[AutomatonId] {
        &self.all
    }

    /// Append to `out` the ids of every subscriber whose prefilter
    /// matches (or may match) `tuple`. Each subscriber lives in exactly
    /// one structure, so the output is duplicate-free.
    pub fn select_into(&self, tuple: &Tuple, out: &mut Vec<AutomatonId>) {
        for (col, buckets) in &self.eq {
            let Some(value) = tuple.value_at(*col) else {
                continue;
            };
            if let Some(ids) = buckets.get(&probe_key(value)) {
                out.extend_from_slice(ids);
            }
        }
        for (id, band) in &self.bands {
            let admitted = match tuple.value_at(band.col).and_then(numeric_view) {
                Some(v) => band.admits(v),
                // A string where a number was expected: the VM errors,
                // so deliver. Unreachable with schema-checked tuples.
                None => true,
            };
            if admitted {
                out.push(*id);
            }
        }
        for (id, guard) in &self.scans {
            if guard.matches(tuple) {
                out.push(*id);
            }
        }
        out.extend_from_slice(&self.catch_all);
    }

    fn with(&self, id: AutomatonId, prefilter: &Prefilter, schema: &Schema) -> SubscriberIndex {
        let mut next = self.clone();
        if next.all.contains(&id) {
            return next;
        }
        next.all.push(id);
        match classify(prefilter, schema) {
            Slot::Eq(col, key) => next
                .eq
                .entry(col)
                .or_default()
                .entry(key)
                .or_default()
                .push(id),
            Slot::Band(band) => next.bands.push((id, band)),
            Slot::Scan(guard) => next.scans.push((id, guard)),
            Slot::CatchAll => next.catch_all.push(id),
        }
        next
    }

    fn without(&self, id: AutomatonId) -> SubscriberIndex {
        let mut next = self.clone();
        next.all.retain(|a| *a != id);
        next.catch_all.retain(|a| *a != id);
        next.bands.retain(|(a, _)| *a != id);
        next.scans.retain(|(a, _)| *a != id);
        for buckets in next.eq.values_mut() {
            buckets.retain(|_, ids| {
                ids.retain(|a| *a != id);
                !ids.is_empty()
            });
        }
        next.eq.retain(|_, buckets| !buckets.is_empty());
        next
    }
}

/// Per-topic dispatch state: the published-tuple counter and the
/// current subscriber index.
#[derive(Debug)]
pub(crate) struct TopicDispatch {
    published: AtomicU64,
    index: RwLock<Arc<SubscriberIndex>>,
}

impl TopicDispatch {
    fn new() -> TopicDispatch {
        TopicDispatch {
            published: AtomicU64::new(0),
            index: RwLock::new(Arc::new(SubscriberIndex::default())),
        }
    }

    /// Tuples counted as published on this topic so far.
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Acquire)
    }

    /// The current index, without counting a publication.
    pub fn current(&self) -> Arc<SubscriberIndex> {
        Arc::clone(&self.index.read())
    }

    /// Atomically count `n` published tuples and snapshot the index they
    /// will be dispatched against — the one index probe a batch pays.
    pub fn snapshot_and_count(&self, n: u64) -> Arc<SubscriberIndex> {
        let guard = self.index.read();
        self.published.fetch_add(n, Ordering::AcqRel);
        Arc::clone(&guard)
    }

    /// Add a subscriber; returns the `published` baseline to subtract
    /// when deriving its skip count later.
    pub fn add(&self, id: AutomatonId, prefilter: &Prefilter, schema: &Schema) -> u64 {
        let mut guard = self.index.write();
        *guard = Arc::new(guard.with(id, prefilter, schema));
        self.published.load(Ordering::Acquire)
    }

    /// Remove a subscriber; no event published after this swap will be
    /// dispatched to it (in-flight snapshots may still try, and are cut
    /// off at the route table).
    pub fn remove(&self, id: AutomatonId) {
        let mut guard = self.index.write();
        *guard = Arc::new(guard.without(id));
    }
}

/// All per-topic dispatch state, created lazily per topic.
#[derive(Debug, Default)]
pub(crate) struct DispatchIndex {
    topics: RwLock<HashMap<String, Arc<TopicDispatch>>>,
}

impl DispatchIndex {
    /// The topic's dispatch entry, if one exists (read-only: never
    /// inserts, so arbitrary lookups cannot grow the map).
    pub fn get(&self, name: &str) -> Option<Arc<TopicDispatch>> {
        self.topics.read().get(name).cloned()
    }

    /// The topic's dispatch entry, created on first use.
    pub fn topic(&self, name: &str) -> Arc<TopicDispatch> {
        if let Some(td) = self.topics.read().get(name) {
            return Arc::clone(td);
        }
        Arc::clone(
            self.topics
                .write()
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(TopicDispatch::new())),
        )
    }

    /// Forget a topic entirely (table dropped). A later table of the
    /// same name starts from a fresh dispatch entry, so no stale
    /// prefilter buckets compiled against the old schema can route
    /// its tuples.
    pub fn remove_topic(&self, name: &str) {
        self.topics.write().remove(name);
    }

    /// Drop every subscriber from every topic (shutdown).
    pub fn clear_subscribers(&self) {
        for td in self.topics.read().values() {
            *td.index.write() = Arc::new(SubscriberIndex::default());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapl::event::AttrType;

    fn ticks_schema() -> Schema {
        Schema::new(
            "Ticks",
            vec![("sym", AttrType::Str), ("price", AttrType::Int)],
        )
        .unwrap()
    }

    fn tick(sym: &str, price: i64) -> Tuple {
        Tuple::new(
            Arc::new(ticks_schema()),
            vec![Scalar::Str(sym.into()), Scalar::Int(price)],
            1,
        )
        .unwrap()
    }

    fn prefilter_of(src: &str) -> Prefilter {
        gapl::compile(src).unwrap().prefilter().clone()
    }

    fn select(index: &SubscriberIndex, tuple: &Tuple) -> Vec<AutomatonId> {
        let mut out = Vec::new();
        index.select_into(tuple, &mut out);
        out.sort();
        out
    }

    #[test]
    fn equality_guards_land_in_buckets_and_prune() {
        let schema = ticks_schema();
        let mut index = SubscriberIndex::default();
        for (i, sym) in ["A", "B", "A"].iter().enumerate() {
            let p = prefilter_of(&format!(
                "subscribe t to Ticks; behavior {{ if (t.sym == '{sym}') send(1); }}"
            ));
            index = index.with(AutomatonId(i as u64), &p, &schema);
        }
        assert_eq!(index.subscriber_count(), 3);
        assert!(index.scans.is_empty() && index.bands.is_empty() && index.catch_all.is_empty());
        assert_eq!(
            select(&index, &tick("A", 1)),
            vec![AutomatonId(0), AutomatonId(2)]
        );
        assert_eq!(select(&index, &tick("B", 1)), vec![AutomatonId(1)]);
        assert!(select(&index, &tick("C", 1)).is_empty());
    }

    #[test]
    fn numeric_equality_buckets_match_vm_f64_semantics() {
        let schema = ticks_schema();
        let p = prefilter_of("subscribe t to Ticks; behavior { if (t.price == 10.0) send(1); }");
        let index = SubscriberIndex::default().with(AutomatonId(1), &p, &schema);
        // A Real literal matches an Int column through the f64 view,
        // exactly as the VM's `==` does.
        assert_eq!(select(&index, &tick("A", 10)), vec![AutomatonId(1)]);
        assert!(select(&index, &tick("A", 11)).is_empty());
    }

    #[test]
    fn range_conjunctions_become_bands() {
        let schema = ticks_schema();
        let p = prefilter_of(
            "subscribe t to Ticks; behavior { if (t.price >= 10 && t.price < 20) send(1); }",
        );
        let index = SubscriberIndex::default().with(AutomatonId(4), &p, &schema);
        assert_eq!(index.bands.len(), 1);
        assert_eq!(select(&index, &tick("A", 10)), vec![AutomatonId(4)]);
        assert_eq!(select(&index, &tick("A", 19)), vec![AutomatonId(4)]);
        assert!(select(&index, &tick("A", 20)).is_empty());
        assert!(select(&index, &tick("A", 9)).is_empty());
    }

    #[test]
    fn disjunctions_and_opaque_automata_still_route() {
        let schema = ticks_schema();
        let or = prefilter_of(
            "subscribe t to Ticks; behavior { if (t.sym == 'A' || t.price > 100) send(1); }",
        );
        let index = SubscriberIndex::default()
            .with(AutomatonId(1), &or, &schema)
            .with(AutomatonId(2), &Prefilter::Opaque, &schema);
        assert_eq!(index.scans.len(), 1);
        assert_eq!(index.catch_all.len(), 1);
        assert_eq!(
            select(&index, &tick("A", 1)),
            vec![AutomatonId(1), AutomatonId(2)]
        );
        assert_eq!(select(&index, &tick("B", 1)), vec![AutomatonId(2)]);
        assert_eq!(
            select(&index, &tick("B", 200)),
            vec![AutomatonId(1), AutomatonId(2)]
        );
    }

    #[test]
    fn removal_restores_the_empty_index() {
        let schema = ticks_schema();
        let p = prefilter_of("subscribe t to Ticks; behavior { if (t.sym == 'A') send(1); }");
        let index = SubscriberIndex::default().with(AutomatonId(1), &p, &schema);
        let index = index.without(AutomatonId(1));
        assert!(index.is_empty());
        assert!(index.eq.is_empty());
    }

    #[test]
    fn topic_dispatch_counts_and_baselines() {
        let td = TopicDispatch::new();
        assert_eq!(td.published(), 0);
        let idx = td.snapshot_and_count(5);
        assert!(idx.is_empty());
        assert_eq!(td.published(), 5);
        let baseline = td.add(AutomatonId(1), &Prefilter::Opaque, &ticks_schema());
        assert_eq!(baseline, 5);
        td.remove(AutomatonId(1));
        assert!(td.current().is_empty());
    }
}
