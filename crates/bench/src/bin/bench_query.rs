//! Query-engine benchmark snapshot: ops/sec for the full-scan vs
//! windowed (`since τ`, 1% window) select paths at 1k/10k/100k rows,
//! written as `BENCH_query.json` for the performance trajectory.
//!
//! Run with `cargo run --release -p cep_bench --bin bench_query`
//! (the output path can be overridden with `BENCH_QUERY_OUT`).
//! `scripts/bench_snapshot.sh` wraps this together with the criterion
//! benches.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use gapl::event::Scalar;
use pscache::{Cache, CacheBuilder, Query};

const SIZES: [usize; 3] = [1_000, 10_000, 100_000];

fn populated_cache(rows: usize) -> Cache {
    let cache = CacheBuilder::new().manual_clock().build();
    cache
        .execute(&format!(
            "create table Flows (srcip varchar(16), nbytes integer) capacity {rows}"
        ))
        .expect("create table");
    let clock = cache.manual_clock().expect("manual clock").clone();
    // Chunk so timestamps resolve to 0.1% of the table: batches share one
    // insertion timestamp by design, and the windowed queries below need
    // the 1% boundary to fall *inside* the data at every size.
    let chunk_rows = (rows / 1000).max(1);
    for chunk in (0..rows).collect::<Vec<_>>().chunks(chunk_rows) {
        clock.advance(chunk.len() as u64);
        cache
            .insert_batch(
                "Flows",
                chunk
                    .iter()
                    .map(|i| {
                        vec![
                            Scalar::from(format!("10.0.{}.{}", (i / 250) % 250, i % 250)),
                            Scalar::Int(*i as i64),
                        ]
                    })
                    .collect(),
            )
            .expect("insert batch");
    }
    cache
}

/// Run `op` repeatedly for at least `budget`, returning ops/sec.
fn ops_per_sec(budget: Duration, mut op: impl FnMut()) -> f64 {
    // Warm up.
    for _ in 0..3 {
        op();
    }
    let start = Instant::now();
    let mut iterations = 0u64;
    while start.elapsed() < budget {
        op();
        iterations += 1;
    }
    iterations as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let out_path = std::env::var("BENCH_QUERY_OUT").unwrap_or_else(|_| "BENCH_query.json".into());
    let budget = Duration::from_millis(
        std::env::var("BENCH_QUERY_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(500),
    );

    let mut entries = String::new();
    println!("query engine snapshot (budget {budget:?} per measurement)");
    println!(
        "{:>8} {:>16} {:>16} {:>9}",
        "rows", "full_scan/s", "window_1pct/s", "speedup"
    );
    for (i, rows) in SIZES.into_iter().enumerate() {
        let cache = populated_cache(rows);
        let full = Query::new("Flows");
        let full_ops = ops_per_sec(budget, || {
            cache.select(&full).expect("select");
        });
        let tau = cache
            .select(&Query::new("Flows"))
            .expect("select")
            .max_tstamp()
            .expect("non-empty")
            - (rows as u64) / 100;
        let windowed = Query::new("Flows").since(tau);
        let window_ops = ops_per_sec(budget, || {
            cache.select(&windowed).expect("select");
        });
        let speedup = window_ops / full_ops;
        println!("{rows:>8} {full_ops:>16.0} {window_ops:>16.0} {speedup:>8.1}x");
        if i > 0 {
            entries.push_str(",\n");
        }
        write!(
            entries,
            "    {{\"rows\": {rows}, \"full_scan_ops_per_sec\": {full_ops:.1}, \
             \"window_1pct_ops_per_sec\": {window_ops:.1}, \"window_speedup\": {speedup:.2}}}"
        )
        .expect("write to string");
    }

    let json = format!(
        "{{\n  \"bench\": \"query_engine\",\n  \"workload\": \"select * from Flows [since tau] \
         over a hot stream table; tau = 1% tail window\",\n  \"results\": [\n{entries}\n  ]\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write BENCH_query.json");
    println!("\nwrote {out_path}");
}
