//! Stock trend analysis: the three queries of the Cayuga comparison
//! (§6.5, Fig. 18), run both ways.
//!
//! * **Q1** — republish every stock tick onto a second stream.
//! * **Q2** — detect double-top (M-shaped) price formations per stock.
//! * **Q3** — detect continuous runs of increasing prices per stock.
//!
//! The Cayuga side runs the NFA engine from the `cayuga` crate over an
//! in-memory event vector. The cache side follows the paper's methodology:
//! all events are first appended into a window, then a single automaton
//! execution iterates the window and evaluates the query — which is why a
//! single imperative automaton with a map of per-stock state machines beats
//! an engine that must maintain many concurrent NFA instances.
//!
//! Run with `cargo run --release --example stock_analysis`.

use std::sync::Arc;
use std::time::Instant;

use cayuga::queries::{q1_select_publish, q2_double_top, q3_increasing_runs};
use cayuga::Engine;
use cep_workloads::{StockConfig, StockGenerator, StockTick};
use gapl::vm::{RecordingHost, Vm};
use unipubsub::prelude::*;

/// Q2 as an imperative GAPL behaviour evaluated once per tick: a per-stock
/// state machine held in a map, exactly the structure §6.5 describes.
const Q2_GAPL: &str = r#"
    subscribe s to Stocks;
    associate states with DoubleTopState;
    int phase, detections;
    real prev, peak1, trough, peak2;
    sequence st;
    identifier name;
    initialization { detections = 0; }
    behavior {
        name = Identifier(s.name);
        if (hasEntry(states, name)) {
            st = lookup(states, name);
            phase = seqElement(st, 1);
            prev = seqElement(st, 2);
            peak1 = seqElement(st, 3);
            trough = seqElement(st, 4);
            peak2 = seqElement(st, 5);
        } else {
            phase = 0;
            prev = s.price;
            peak1 = s.price;
            trough = s.price;
            peak2 = s.price;
        }
        if (phase == 0) {
            if (s.price > prev) { phase = 1; peak1 = s.price; }
        } else if (phase == 1) {
            if (s.price > prev) peak1 = s.price;
            else { phase = 2; trough = s.price; }
        } else if (phase == 2) {
            if (s.price < prev) trough = s.price;
            else { phase = 3; peak2 = s.price; }
        } else if (phase == 3) {
            if (s.price > prev) peak2 = s.price;
            else {
                if (abs(peak2 - peak1) <= peak1 * 0.02) {
                    detections += 1;
                    send(s.name, peak1, trough, peak2);
                }
                phase = 2;
                trough = s.price;
            }
        }
        prev = s.price;
        insert(states, name, Sequence(s.name, phase, prev, peak1, trough, peak2));
    }
"#;

fn tuples_of(ticks: &[StockTick]) -> Vec<Tuple> {
    let schema = Arc::new(StockGenerator::schema());
    ticks
        .iter()
        .enumerate()
        .map(|(i, t)| Tuple::new(Arc::clone(&schema), t.to_scalars(), i as u64).expect("valid"))
        .collect()
}

fn run_cayuga(name: &str, nfa: cayuga::Nfa, events: &[Tuple]) -> (usize, std::time::Duration) {
    let mut engine = Engine::new(nfa);
    let start = Instant::now();
    engine.run(events);
    let elapsed = start.elapsed();
    println!(
        "  cayuga  {name}: {:>8} matches, {:>10} instances created, {:.3?}",
        engine.matches().len(),
        engine.instances_created(),
        elapsed
    );
    (engine.matches().len(), elapsed)
}

/// Run a GAPL behaviour over an in-memory event vector through the VM, the
/// way the paper times the cache side ("first appending all events in a
/// window, and then iterate over the window and execute the queries").
fn run_gapl(name: &str, source: &str, events: &[Tuple]) -> (usize, std::time::Duration) {
    let program = Arc::new(gapl::compile(source).expect("the example automata compile"));
    let mut vm = Vm::new(program);
    let mut host = RecordingHost::default();
    vm.run_initialization(&mut host)
        .expect("initialization succeeds");
    let start = Instant::now();
    for event in events {
        vm.run_behavior("Stocks", event, &mut host)
            .expect("behaviour execution succeeds");
    }
    let elapsed = start.elapsed();
    let outputs = host.sent.len() + host.published.len();
    println!("  cache   {name}: {outputs:>8} outputs, {elapsed:.3?}");
    (outputs, elapsed)
}

fn main() {
    // A scaled-down dataset for a quick run; the benchmark binary
    // `fig18_cayuga` uses the full 112,635-event configuration.
    let mut generator = StockGenerator::new(StockConfig {
        events: 20_000,
        symbols: 25,
        ..StockConfig::default()
    });
    let ticks = generator.generate();
    let events = tuples_of(&ticks);
    println!("dataset: {} ticks over {} symbols\n", events.len(), 25);

    println!("Q1 — select * from Stocks publish T");
    run_cayuga("Q1", q1_select_publish(), &events);
    run_gapl(
        "Q1",
        "subscribe s to Stocks; behavior { publish('T', s.name, s.price, s.volume); }",
        &events,
    );

    println!("\nQ2 — double-top (M-shaped) detection");
    run_cayuga("Q2", q2_double_top(0.02), &events);
    run_gapl("Q2", Q2_GAPL, &events);

    println!("\nQ3 — continuous runs of increasing prices");
    run_cayuga("Q3", q3_increasing_runs(3), &events);
    run_gapl(
        "Q3",
        r#"
        subscribe s to Stocks;
        associate runs with RunState;
        real prev;
        int len;
        sequence st;
        identifier name;
        behavior {
            name = Identifier(s.name);
            if (hasEntry(runs, name)) {
                st = lookup(runs, name);
                prev = seqElement(st, 1);
                len = seqElement(st, 2);
            } else {
                prev = s.price;
                len = 1;
            }
            if (s.price > prev)
                len += 1;
            else {
                if (len >= 3)
                    send(s.name, len);
                len = 1;
            }
            insert(runs, name, Sequence(s.name, s.price, len));
        }
        "#,
        &events,
    );
}
