//! Read-path benchmark snapshot: selective `select` throughput with 8
//! reader threads against one durable persistent table while 2 writers
//! upsert continuously, lock-free epoch snapshots vs the legacy
//! under-mutex path, written as `BENCH_readpath.json` for the
//! performance trajectory.
//!
//! The legacy path clones an `Arc` per window row *while holding the
//! table mutex* — every query pays O(window) refcount traffic inside
//! the critical section, and every reader convoys with the writers.
//! The snapshot path loads the published `TableSnapshot` with one
//! atomic and evaluates borrowed rows outside any lock: only matching
//! rows are cloned at projection time, so a 1%-selective query touches
//! 1% of the refcounts and zero locks. Both effects are measured here:
//! `read_speedup_8r` (aggregate queries/sec across 8 readers) and
//! `writer_ratio` (upsert throughput with the readers hammering —
//! lock-free reads must never slow writers down).
//!
//! Run with `cargo run --release -p cep_bench --bin bench_readpath`
//! (output override: `BENCH_READPATH_OUT`; table size:
//! `BENCH_READPATH_ROWS`; measured seconds per mode:
//! `BENCH_READPATH_SECS`). `scripts/bench_readpath.sh` wraps this with
//! the ≥4x read floor and ≥0.8x writer floor, and `scripts/ci.sh` runs
//! it as part of the tier-1 gate.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gapl::event::Scalar;
use pscache::{CacheBuilder, SyncPolicy};

const READERS: usize = 8;
const WRITERS: usize = 2;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Scratch directory for one benchmark run.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bench-readpath-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// One mode under full contention: `READERS` threads running a
/// 1%-selective cached `select` and `WRITERS` threads upserting
/// existing keys (stable table size, continuous row replacement — the
/// compaction path runs during the measurement). Returns aggregate
/// (queries/sec, upserts/sec).
fn contended_throughput(mutex_read_path: bool, name: &str, rows: usize, secs: f64) -> (f64, f64) {
    let dir = scratch(name);
    let cache = CacheBuilder::new()
        .durability(&dir)
        .sync_policy(SyncPolicy::Group)
        .mutex_read_path(mutex_read_path)
        .open()
        .expect("open durable cache");
    cache
        .execute("create persistenttable KV (k varchar(24) primary key, v integer)")
        .expect("create table");
    let mut batch = Vec::with_capacity(1000);
    for i in 0..rows {
        batch.push(vec![
            Scalar::Str(format!("row{i:08}").into()),
            Scalar::Int(i as i64),
        ]);
        if batch.len() == 1000 {
            cache
                .insert_batch("KV", std::mem::take(&mut batch))
                .expect("seed batch");
        }
    }
    if !batch.is_empty() {
        cache.insert_batch("KV", batch).expect("seed batch");
    }

    // Matches the top ~1% of values; upserts rewrite rows without
    // moving them across the predicate boundary.
    let sql = format!("select k, v from KV where v >= {}", rows - rows / 100);
    let expected = rows / 100;

    let stop = Arc::new(AtomicBool::new(false));
    let queries = Arc::new(AtomicU64::new(0));
    let writes = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for _ in 0..READERS {
            let cache = cache.clone();
            let stop = Arc::clone(&stop);
            let queries = Arc::clone(&queries);
            let sql = sql.clone();
            scope.spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let got = cache
                        .execute(&sql)
                        .expect("select")
                        .rows()
                        .expect("row response")
                        .rows
                        .len();
                    assert_eq!(got, expected, "selective query returned a wrong count");
                    queries.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        for w in 0..WRITERS {
            let cache = cache.clone();
            let stop = Arc::clone(&stop);
            let writes = Arc::clone(&writes);
            scope.spawn(move || {
                let mut i = w;
                while !stop.load(Ordering::Acquire) {
                    cache
                        .upsert(
                            "KV",
                            vec![
                                Scalar::Str(format!("row{i:08}").into()),
                                Scalar::Int(i as i64),
                            ],
                        )
                        .expect("upsert");
                    i = (i + WRITERS) % rows;
                    writes.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        let start = Instant::now();
        std::thread::sleep(Duration::from_secs_f64(secs));
        stop.store(true, Ordering::Release);
        start
    });
    let q = queries.load(Ordering::Acquire) as f64 / secs;
    let w = writes.load(Ordering::Acquire) as f64 / secs;
    cache.shutdown();
    let _ = fs::remove_dir_all(&dir);
    (q, w)
}

fn main() {
    let rows = env_usize("BENCH_READPATH_ROWS", 8_000);
    let secs = env_f64("BENCH_READPATH_SECS", 2.0);
    let out = std::env::var("BENCH_READPATH_OUT").unwrap_or_else(|_| "BENCH_readpath.json".into());

    // Warm-up: touch the temp filesystem, page cache, and code paths
    // once so neither measured mode pays first-use costs.
    contended_throughput(false, "warmup", rows / 10 + 100, 0.2);

    let (mutex_qps, mutex_wps) = contended_throughput(true, "mutex", rows, secs);
    let (snap_qps, snap_wps) = contended_throughput(false, "snapshot", rows, secs);
    let read_speedup = snap_qps / mutex_qps.max(f64::MIN_POSITIVE);
    let writer_ratio = snap_wps / mutex_wps.max(f64::MIN_POSITIVE);

    let json = format!(
        "{{\n  \"scenario\": \"{READERS} readers (1%-selective cached select) + {WRITERS} upserting writers, one durable persistent table\",\n  \"rows\": {rows},\n  \"readers\": {READERS},\n  \"writers\": {WRITERS},\n  \"measured_secs_per_mode\": {secs},\n  \"mutex_reads_per_sec\": {mutex_qps:.1},\n  \"mutex_writes_per_sec\": {mutex_wps:.1},\n  \"snapshot_reads_per_sec\": {snap_qps:.1},\n  \"snapshot_writes_per_sec\": {snap_wps:.1},\n  \"read_speedup_8r\": {read_speedup:.2},\n  \"writer_ratio\": {writer_ratio:.2}\n}}\n",
    );
    fs::write(&out, &json).expect("write benchmark snapshot");
    println!("{json}");
    println!(
        "snapshot reads: {snap_qps:.0} q/s vs mutex {mutex_qps:.0} q/s -> {read_speedup:.1}x; \
         writers {snap_wps:.0}/s vs {mutex_wps:.0}/s -> {writer_ratio:.2}x -> {out}"
    );
}
