//! The NFA execution engine: instance management and event processing.

use std::collections::HashMap;

use gapl::event::{Scalar, Timestamp, Tuple};

use crate::bindings::Bindings;
use crate::nfa::{Nfa, TransitionEffect};

/// A completed match: the accepting state's bindings plus the timestamp of
/// the event that completed the pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct Match {
    /// Bindings accumulated along the accepted path.
    pub bindings: Bindings,
    /// Timestamp of the completing event.
    pub at: Timestamp,
}

/// One live partial match.
#[derive(Debug, Clone)]
struct Instance {
    state: usize,
    bindings: Bindings,
}

/// Executes one [`Nfa`] over an event stream.
///
/// The engine embodies the execution model the paper contrasts with its
/// imperative automata: every event is offered to every live instance of
/// its partition, matching transitions clone bindings into successor
/// instances, and a fresh instance is (optionally) started for every event
/// so that patterns may begin anywhere. The cost of this generality — many
/// live instances and much copying — is exactly what Fig. 18 measures.
#[derive(Debug)]
pub struct Engine {
    nfa: Nfa,
    /// Live instances, keyed by partition value ("" when unpartitioned).
    partitions: HashMap<String, Vec<Instance>>,
    matches: Vec<Match>,
    events_processed: u64,
    instances_created: u64,
    max_live_instances: usize,
}

impl Engine {
    /// Create an engine for the query.
    pub fn new(nfa: Nfa) -> Self {
        Engine {
            nfa,
            partitions: HashMap::new(),
            matches: Vec::new(),
            events_processed: 0,
            instances_created: 0,
            max_live_instances: 0,
        }
    }

    /// The query being executed.
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// Matches completed so far, in completion order.
    pub fn matches(&self) -> &[Match] {
        &self.matches
    }

    /// Take ownership of the completed matches, clearing the internal list.
    pub fn take_matches(&mut self) -> Vec<Match> {
        std::mem::take(&mut self.matches)
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Total number of instances ever created (a proxy for the engine's
    /// bookkeeping cost).
    pub fn instances_created(&self) -> u64 {
        self.instances_created
    }

    /// The largest number of simultaneously live instances observed.
    pub fn max_live_instances(&self) -> usize {
        self.max_live_instances
    }

    /// Number of instances currently alive.
    pub fn live_instances(&self) -> usize {
        self.partitions.values().map(Vec::len).sum()
    }

    /// Feed one event through the NFA.
    pub fn process(&mut self, event: &Tuple) {
        self.events_processed += 1;
        let partition = match self.nfa.partition_by() {
            Some(attr) => event.field(attr).map(|v| v.to_string()).unwrap_or_default(),
            None => String::new(),
        };

        let instances = self.partitions.entry(partition).or_default();
        let mut next: Vec<Instance> = Vec::with_capacity(instances.len() + 1);

        // Optionally start a fresh instance for this event so that patterns
        // may begin here.
        if self.nfa.spawn_on_every_event {
            instances.push(Instance {
                state: 0,
                bindings: Bindings::new(),
            });
            self.instances_created += 1;
        }

        for instance in instances.drain(..) {
            let state = &self.nfa.states[instance.state];
            let mut fired = false;
            let mut keep_original = false;
            for transition in &state.transitions {
                if (transition.guard)(&instance.bindings, event) {
                    fired = true;
                    let mut bindings = instance.bindings.clone();
                    (transition.update)(&mut bindings, event);
                    let target = &self.nfa.states[transition.target];
                    if target.accepting {
                        self.matches.push(Match {
                            bindings,
                            at: event.tstamp(),
                        });
                    } else {
                        next.push(Instance {
                            state: transition.target,
                            bindings,
                        });
                        self.instances_created += 1;
                    }
                    if transition.effect == TransitionEffect::Fork {
                        keep_original = true;
                    }
                }
            }
            if (!fired && state.skip_unmatched) || keep_original {
                next.push(instance);
            }
        }
        *instances = next;

        let live = self.live_instances();
        if live > self.max_live_instances {
            self.max_live_instances = live;
        }
    }

    /// Feed a whole stream through the NFA.
    pub fn run<'a>(&mut self, events: impl IntoIterator<Item = &'a Tuple>) {
        for event in events {
            self.process(event);
        }
    }

    /// Convenience view of matches as `(partition, value)` pairs when the
    /// query binds `name` and a numeric `value`.
    pub fn matches_as_pairs(&self) -> Vec<(String, Option<Scalar>)> {
        self.matches
            .iter()
            .map(|m| {
                (
                    m.bindings.get_str("name").unwrap_or_default().to_owned(),
                    m.bindings.get("value").cloned(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::NfaBuilder;
    use gapl::event::{AttrType, Schema};
    use std::sync::Arc;

    fn tick_schema() -> Arc<Schema> {
        Arc::new(
            Schema::new(
                "Stocks",
                vec![("name", AttrType::Str), ("price", AttrType::Real)],
            )
            .unwrap(),
        )
    }

    fn tick(name: &str, price: f64, at: u64) -> Tuple {
        Tuple::new(
            tick_schema(),
            vec![Scalar::Str(name.into()), Scalar::Real(price)],
            at,
        )
        .unwrap()
    }

    /// Two consecutive rising prices for the same stock.
    fn rising_pair_nfa() -> Nfa {
        let mut b = NfaBuilder::new("rising-pair");
        b.partition_by("name");
        let start = b.add_state("start", false);
        let first = b.add_state("first", false);
        let done = b.add_state("done", true);
        b.transition(
            start,
            first,
            TransitionEffect::Move,
            |_, _| true,
            |bind, ev| {
                bind.set("name", ev.field("name").unwrap());
                bind.set("p0", ev.field("price").unwrap());
            },
        );
        b.transition(
            first,
            done,
            TransitionEffect::Move,
            |bind, ev| ev.field("price").unwrap().as_real().unwrap() > bind.get_real("p0").unwrap(),
            |bind, ev| {
                bind.set("p1", ev.field("price").unwrap());
            },
        );
        b.build()
    }

    #[test]
    fn detects_rising_pairs_per_partition() {
        let mut engine = Engine::new(rising_pair_nfa());
        let stream = vec![
            tick("A", 10.0, 1),
            tick("B", 5.0, 2),
            tick("A", 11.0, 3), // A: 10 -> 11 rises
            tick("B", 4.0, 4),  // B falls: no match
            tick("B", 6.0, 5),  // B: 4 -> 6 rises
        ];
        engine.run(&stream);
        assert_eq!(engine.matches().len(), 2);
        assert_eq!(engine.matches()[0].bindings.get_str("name"), Some("A"));
        assert_eq!(engine.matches()[0].at, 3);
        assert_eq!(engine.matches()[1].bindings.get_str("name"), Some("B"));
        assert_eq!(engine.events_processed(), 5);
        assert!(engine.instances_created() >= 5);
    }

    #[test]
    fn strict_states_drop_unmatched_instances_and_skip_states_keep_them() {
        // Strict: the rising pair must be consecutive for that stock.
        let mut engine = Engine::new(rising_pair_nfa());
        engine.run(&[tick("A", 10.0, 1), tick("A", 9.0, 2), tick("A", 9.5, 3)]);
        // 10 -> 9 is not rising (instance from t=1 dies); 9 -> 9.5 matches.
        assert_eq!(engine.matches().len(), 1);
        assert_eq!(engine.matches()[0].bindings.get_real("p0"), Some(9.0));

        // Skip-till-next-match keeps the instance alive across the dip.
        let mut b = NfaBuilder::new("skip");
        b.partition_by("name");
        let start = b.add_state("start", false);
        let first = b.add_state("first", false);
        let done = b.add_state("done", true);
        b.skip_unmatched(first);
        b.transition(
            start,
            first,
            TransitionEffect::Move,
            |_, _| true,
            |bind, ev| {
                bind.set("p0", ev.field("price").unwrap());
            },
        );
        b.transition(
            first,
            done,
            TransitionEffect::Move,
            |bind, ev| ev.field("price").unwrap().as_real().unwrap() > bind.get_real("p0").unwrap(),
            |_, _| (),
        );
        let mut engine = Engine::new(b.build());
        engine.run(&[tick("A", 10.0, 1), tick("A", 9.0, 2), tick("A", 10.5, 3)]);
        // The instance that bound p0 = 10 at t=1 survives the dip and
        // matches at t=3; the one from t=2 (p0 = 9) matches as well.
        assert_eq!(engine.matches().len(), 2);
    }

    #[test]
    fn take_matches_clears_the_list_and_counters_accumulate() {
        let mut engine = Engine::new(rising_pair_nfa());
        engine.run(&[tick("A", 1.0, 1), tick("A", 2.0, 2)]);
        assert_eq!(engine.take_matches().len(), 1);
        assert!(engine.matches().is_empty());
        assert!(engine.max_live_instances() >= 1);
        assert_eq!(
            engine.live_instances(),
            engine.partitions.values().map(Vec::len).sum()
        );
    }

    #[test]
    fn fork_keeps_the_original_instance() {
        let mut b = NfaBuilder::new("forky");
        let start = b.add_state("start", false);
        let done = b.add_state("done", true);
        b.spawn_on_every_event(false);
        b.transition(start, done, TransitionEffect::Fork, |_, _| true, |_, _| ());
        let mut engine = Engine::new(b.build());
        // Seed one instance manually by enabling spawn for the first event.
        engine
            .partitions
            .entry(String::new())
            .or_default()
            .push(Instance {
                state: 0,
                bindings: Bindings::new(),
            });
        engine.run(&[tick("A", 1.0, 1), tick("A", 1.0, 2)]);
        // The forked original stays alive, so both events produce a match.
        assert_eq!(engine.matches().len(), 2);
    }
}
