//! The subscription bridge: cross-partition automaton delivery over the
//! replication stream.
//!
//! An automaton registered on one partition must see the **full
//! topic** — rows inserted on every partition, not just the local one.
//! Rather than invent a second fan-out protocol, the bridge rides the
//! transport the cluster already has: each remote partition's primary
//! serves its WAL over the replication listener
//! ([`crate::repl::proto`]), and the bridge subscribes to it exactly
//! like a follower would — except that instead of *applying* the
//! shipped records it **publishes** their insert rows to the local
//! dispatch layer, waking local automata.
//!
//! Properties inherited from the transport, for free:
//!
//! * **Per-partition delivery order.** One thread per peer consumes one
//!   TCP stream of frames in LSN order; rows from a given partition
//!   reach local automata in that partition's insertion order.
//! * **Exactly-once.** Every record carries its LSN; the bridge keeps a
//!   per-peer watermark and drops anything at or below it, so a
//!   reconnect at an arbitrary frame boundary (or a failover re-dial)
//!   can neither skip nor double-deliver a record — the same dedup rule
//!   the follower apply path uses.
//! * **Failover continuity.** A promoted follower's log is an exact
//!   byte prefix-extension of its dead primary's, with the same LSNs.
//!   [`SubBridge::rebind`] points the peer at the promoted node and the
//!   next session resumes from the watermark as if nothing happened.
//!
//! What the bridge deliberately does **not** do: it never inserts the
//! remote rows into local tables (rows live only on their owning
//! partition; queries scatter-gather instead), it skips bootstrap
//! snapshots (retained history is not live traffic — matching local
//! automata, which only see inserts after registration), and it skips
//! the built-in `Timer` topic (each node runs its own timer; bridging
//! remote ticks would deliver N ticks per interval).

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use crate::cache::{Cache, CacheInner, TIMER_TOPIC};
use crate::error::{Error, Result};
use crate::repl::backoff_delay;
use crate::repl::proto::{self, FollowerMsg, PrimaryMsg};
use crate::wal;

/// First retry delay after a failed dial or torn stream.
const BACKOFF_BASE: Duration = Duration::from_millis(50);
/// Retry delays stop growing here.
const BACKOFF_CAP: Duration = Duration::from_secs(2);

/// Shared state of one bridged peer (a remote partition's repl stream).
#[derive(Debug)]
struct PeerShared {
    /// The remote partition's index, for observability and rebinds.
    partition: usize,
    /// The peer's replication endpoint; swapped by [`SubBridge::rebind`].
    addr: Mutex<String>,
    /// Bumped on every rebind; a running session notices and re-dials.
    generation: AtomicU64,
    /// Highest LSN already delivered from this peer — the exactly-once
    /// dedup line, and the `from_lsn` of every (re)subscription.
    watermark: AtomicU64,
    /// Whether a stream is currently established.
    connected: AtomicBool,
    /// Rows published to local automata from this peer.
    rows_delivered: AtomicU64,
    /// The live socket, for unblocking the reader on stop/rebind.
    stream: Mutex<Option<TcpStream>>,
}

/// A running subscription bridge; owned alongside the local [`Cache`].
/// Dropping it stops every peer thread.
#[derive(Debug)]
pub struct SubBridge {
    stop: Arc<AtomicBool>,
    peers: Vec<Arc<PeerShared>>,
    threads: Vec<JoinHandle<()>>,
}

impl SubBridge {
    /// Bridge `cache`'s automata to the replication streams of
    /// `peers` — `(partition index, repl listener address)` pairs,
    /// normally every partition of the cluster except the local one.
    #[must_use]
    pub fn start(cache: &Cache, peers: Vec<(usize, String)>) -> SubBridge {
        let stop = Arc::new(AtomicBool::new(false));
        let inner = cache.inner_weak();
        let mut shareds = Vec::with_capacity(peers.len());
        let mut threads = Vec::with_capacity(peers.len());
        for (partition, addr) in peers {
            let shared = Arc::new(PeerShared {
                partition,
                addr: Mutex::new(addr),
                generation: AtomicU64::new(0),
                watermark: AtomicU64::new(0),
                connected: AtomicBool::new(false),
                rows_delivered: AtomicU64::new(0),
                stream: Mutex::new(None),
            });
            let run_shared = Arc::clone(&shared);
            let run_stop = Arc::clone(&stop);
            let run_inner = inner.clone();
            let thread = std::thread::Builder::new()
                .name(format!("pscache-sub-bridge-{partition}"))
                .spawn(move || run(&run_inner, &run_shared, &run_stop))
                .expect("spawning a bridge thread never fails");
            shareds.push(shared);
            threads.push(thread);
        }
        SubBridge {
            stop,
            peers: shareds,
            threads,
        }
    }

    /// Repoint `partition` at a new replication endpoint — the failover
    /// move after promoting that partition's follower. The running
    /// session is cut and the next one resumes from the delivered
    /// watermark, so no record is skipped or double-delivered across
    /// the switch.
    pub fn rebind(&self, partition: usize, addr: impl Into<String>) {
        let addr = addr.into();
        for peer in &self.peers {
            if peer.partition == partition {
                *peer.addr.lock() = addr.clone();
                peer.generation.fetch_add(1, Ordering::Release);
                if let Some(stream) = peer.stream.lock().as_ref() {
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                }
            }
        }
    }

    /// Total rows published to local automata across all peers.
    #[must_use]
    pub fn rows_delivered(&self) -> u64 {
        self.peers
            .iter()
            .map(|p| p.rows_delivered.load(Ordering::Acquire))
            .sum()
    }

    /// Peers with an established stream right now.
    #[must_use]
    pub fn connected_peers(&self) -> usize {
        self.peers
            .iter()
            .filter(|p| p.connected.load(Ordering::Acquire))
            .count()
    }

    /// Per-peer `(partition, delivered watermark)` pairs.
    #[must_use]
    pub fn watermarks(&self) -> Vec<(usize, u64)> {
        self.peers
            .iter()
            .map(|p| (p.partition, p.watermark.load(Ordering::Acquire)))
            .collect()
    }
}

impl Drop for SubBridge {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        for peer in &self.peers {
            if let Some(stream) = peer.stream.lock().as_ref() {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        }
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

fn run(inner: &Weak<CacheInner>, shared: &Arc<PeerShared>, stop: &Arc<AtomicBool>) {
    let mut attempt: u32 = 0;
    while !stop.load(Ordering::Acquire) {
        let addr = shared.addr.lock().clone();
        let generation = shared.generation.load(Ordering::Acquire);
        if let Ok(stream) = TcpStream::connect(&addr) {
            if let Ok(clone) = stream.try_clone() {
                *shared.stream.lock() = Some(clone);
            }
            shared.connected.store(true, Ordering::Release);
            attempt = 0;
            let _ = session(inner, shared, stop, generation, stream);
            shared.connected.store(false, Ordering::Release);
            *shared.stream.lock() = None;
        }
        if stop.load(Ordering::Acquire) || inner.strong_count() == 0 {
            break;
        }
        // A rebind re-dials immediately; only genuine failures back off.
        if shared.generation.load(Ordering::Acquire) == generation {
            std::thread::sleep(backoff_delay(attempt, BACKOFF_BASE, BACKOFF_CAP));
            attempt = attempt.saturating_add(1);
        } else {
            attempt = 0;
        }
    }
}

/// One established stream: subscribe from the delivered watermark, then
/// publish every new insert record until the connection dies, the
/// bridge stops, or a rebind invalidates this session's generation.
fn session(
    inner: &Weak<CacheInner>,
    shared: &Arc<PeerShared>,
    stop: &Arc<AtomicBool>,
    generation: u64,
    stream: TcpStream,
) -> Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader =
        std::io::BufReader::new(stream.try_clone().map_err(|e| Error::repl(e.to_string()))?);
    let mut writer = std::io::BufWriter::new(stream);
    proto::write_magic(&mut writer)?;
    FollowerMsg::Subscribe {
        from_lsn: shared.watermark.load(Ordering::Acquire),
    }
    .write(&mut writer)?;
    loop {
        if stop.load(Ordering::Acquire) || shared.generation.load(Ordering::Acquire) != generation {
            return Ok(());
        }
        let Some(msg) = PrimaryMsg::read(&mut reader)? else {
            return Ok(());
        };
        let cache = inner.upgrade().ok_or_else(|| Error::repl("cache gone"))?;
        match msg {
            PrimaryMsg::Snapshot(bytes) => {
                // Retained history is not live traffic: skip the rows,
                // advance the watermark past everything the snapshot
                // covers so the following backlog replay deduplicates
                // correctly.
                let high = wal::scan_snapshot_high_watermark(&bytes)?;
                let watermark = shared.watermark.fetch_max(high, Ordering::AcqRel).max(high);
                FollowerMsg::Ack { lsn: watermark }.write(&mut writer)?;
            }
            PrimaryMsg::Frames(bytes) => {
                let delivered = publish_frames(&cache, shared, &bytes);
                FollowerMsg::Ack { lsn: delivered }.write(&mut writer)?;
            }
            PrimaryMsg::Heartbeat { .. } => {}
        }
    }
}

/// Publish the insert records of one shipped frame batch, deduplicating
/// by LSN against the peer watermark. Returns the new watermark.
fn publish_frames(cache: &Arc<CacheInner>, shared: &Arc<PeerShared>, bytes: &[u8]) -> u64 {
    let mut watermark = shared.watermark.load(Ordering::Acquire);
    for (lsn, frame) in wal::split_frames(bytes) {
        if lsn <= watermark {
            continue;
        }
        // A frame that fails to decode is skipped, not fatal: the CRC
        // already validated the bytes, so a decode failure means a
        // record kind this version does not know — ignoring it keeps
        // the bridge forward-compatible.
        if let Ok(wal::ReplayOp::Insert {
            table,
            tstamp,
            rows,
            ..
        }) = wal::decode_record(&frame[8..])
        {
            if !table.starts_with('\u{1}') && table != TIMER_TOPIC {
                let published = cache.publish_remote(&table, &rows, tstamp);
                shared
                    .rows_delivered
                    .fetch_add(published as u64, Ordering::Release);
            }
        }
        watermark = lsn;
        shared.watermark.store(watermark, Ordering::Release);
    }
    watermark
}
