#!/usr/bin/env sh
# Fan-out performance snapshot: insert throughput with 1,000 registered
# automata at 1% guard selectivity, predicate-indexed dispatch vs the
# naive all-subscribers fan-out. Writes BENCH_fanout.json at the
# repository root and fails if the speedup regresses below the 10x
# acceptance floor.
#
# Floors are enforced by the bench crate's `check_floor` binary: a
# missing file, missing key, or unparsable metric is a hard failure —
# a bench that did not produce its number must never count as a pass.
set -eu

cd "$(dirname "$0")/.."

echo "==> snapshot: BENCH_fanout.json"
cargo run --release -p cep_bench --bin bench_fanout

cargo run --release -q -p cep_bench --bin check_floor -- \
    BENCH_fanout.json speedup 10.0 \
    "indexed dispatch speedup at 1000 automata / 1% selectivity"

echo "fan-out snapshot complete"
