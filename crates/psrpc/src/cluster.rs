//! The cluster-aware client: route writes by key, scatter-gather reads.
//!
//! A cluster is N ordinary primaries, each an unmodified
//! [`pscache::Cache`] behind an unmodified RPC server, that have agreed
//! on a [`pscache::HashRing`] partitioning every table's rows by
//! primary key. Nothing coordinates them at runtime — the ring is a
//! pure function of the partition count, so every server (via
//! [`pscache::ClusterSpec`]) and every [`ClusterClient`] derives the
//! same ownership map independently.
//!
//! The client is a thin layer over one pipelined
//! [`CacheClient`] per partition:
//!
//! * **DDL** (`create table`) broadcasts to all partitions, so every
//!   primary holds the same schemas and any of them can serve a
//!   scatter leg. The client remembers the schema, which is what lets
//!   it evaluate gathered rows locally.
//! * **Writes** route by the row's first value — the same display form
//!   the cache uses as the upsert key — straight to the owning
//!   partition. Misrouted writes (a stale ring) come back as the typed
//!   [`Error::NotMine`] redirect and are re-sent once to the named
//!   owner; nothing is applied on the wrong node.
//! * **Batches** split per-partition and fan out as pipelined
//!   `insert_batch` requests — all partitions load in parallel, one
//!   round trip each — then the per-row timestamps are stitched back
//!   into the caller's row order.
//! * **Reads** scatter `select * from T [since τ]` to every partition,
//!   k-way merge the replies by timestamp
//!   ([`pscache::cluster::merge_by_tstamp`]), and run the *full* query
//!   plan — predicate, projection, `order by`, `group by`, `limit` —
//!   over the merged window exactly as an unpartitioned cache would
//!   ([`pscache::cluster::evaluate_gathered`]). Only the `since`
//!   window is pushed down, so no query shape needs partial-aggregate
//!   merge logic.
//! * **Subscriptions** register on one designated partition. With the
//!   cluster's [`pscache::SubBridge`]s running, every partition
//!   observes the full topic stream, so one registration sees
//!   cluster-wide matches.
//!
//! Failover is the client's concern only insofar as re-pointing: when
//! a partition's primary dies and its follower is promoted, call
//! [`ClusterClient::rebind`] with a client for the new address; the
//! ring, and therefore every key's owner, is unchanged.

use std::collections::HashMap;
use std::net::ToSocketAddrs;
use std::sync::Arc;

use gapl::event::{Scalar, Schema};
use parking_lot::RwLock;
use pscache::cluster::{merge_by_tstamp, routing_key, split_batch, GatheredRow};
use pscache::sql::Command;
use pscache::HashRing;

use crate::client::{CacheClient, ClientNotification, ClientResultSet, PendingReply};
use crate::error::{Error, Result};
use crate::message::{CacheReply, HealthReport, Request, WireRow};

/// A client for a cluster of N partition primaries.
///
/// Cheap to share behind an `Arc`; all methods take `&self`. Each
/// partition's underlying [`CacheClient`] is itself pipelined, so
/// concurrent callers interleave on the same connections.
pub struct ClusterClient {
    ring: HashRing,
    /// One client per partition, swappable under a lock so
    /// [`ClusterClient::rebind`] can re-point a partition at its
    /// promoted follower without interrupting other partitions.
    clients: Vec<RwLock<Arc<CacheClient>>>,
    /// Schemas of tables created *through this client*, keyed by table
    /// name — the local half of scatter-gather evaluation.
    schemas: RwLock<HashMap<String, Arc<Schema>>>,
}

impl std::fmt::Debug for ClusterClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterClient")
            .field("partitions", &self.ring.partitions())
            .finish_non_exhaustive()
    }
}

impl ClusterClient {
    /// Connect to a cluster: one address per partition, in partition
    /// order (the order is the identity — address `i` must be the
    /// primary that was configured with `ClusterSpec::new(n, i)`).
    ///
    /// # Errors
    ///
    /// Returns the first connection error; no partial cluster client
    /// is ever handed back.
    pub fn connect<A: ToSocketAddrs>(addrs: &[A]) -> Result<ClusterClient> {
        let clients = addrs
            .iter()
            .map(CacheClient::connect)
            .collect::<Result<Vec<_>>>()?;
        Ok(ClusterClient::from_clients(clients))
    }

    /// Build a cluster client from already-connected per-partition
    /// clients (tests use the in-process transport this way). The ring
    /// is derived from the client count.
    ///
    /// # Panics
    ///
    /// Panics on an empty client list — a zero-partition cluster has
    /// no ring.
    #[must_use]
    pub fn from_clients(clients: Vec<CacheClient>) -> ClusterClient {
        assert!(
            !clients.is_empty(),
            "a cluster needs at least one partition"
        );
        let ring = HashRing::new(clients.len());
        ClusterClient {
            ring,
            clients: clients
                .into_iter()
                .map(|c| RwLock::new(Arc::new(c)))
                .collect(),
            schemas: RwLock::new(HashMap::new()),
        }
    }

    /// Number of partitions in the cluster.
    #[must_use]
    pub fn partitions(&self) -> usize {
        self.clients.len()
    }

    /// The client's ring — byte-identical to every server's.
    #[must_use]
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The current client for `partition` (a cheap `Arc` clone; safe
    /// to hold across a concurrent [`ClusterClient::rebind`], which
    /// swaps the slot rather than closing the old client under you).
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range.
    #[must_use]
    pub fn client(&self, partition: usize) -> Arc<CacheClient> {
        Arc::clone(&self.clients[partition].read())
    }

    /// Re-point `partition` at a new server — the failover move, after
    /// a dead primary's follower has been promoted. The ring is
    /// untouched: ownership never moves, only the address serving it.
    /// In-flight requests on the old client finish (or fail) on the
    /// old connection; new requests use `client`.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range.
    pub fn rebind(&self, partition: usize, client: CacheClient) {
        *self.clients[partition].write() = Arc::new(client);
    }

    /// Execute any SQL-ish command with cluster semantics: `create
    /// table` broadcasts, `insert` routes, `select` scatter-gathers.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Remote`] with the parser's message for text no
    /// partition would accept either, and the routed/broadcast
    /// operation's error otherwise.
    pub fn execute(&self, command: &str) -> Result<CacheReply> {
        let parsed = pscache::sql::parse(command).map_err(|e| Error::Remote {
            message: e.to_string(),
        })?;
        match parsed {
            Command::CreateTable { name, columns, .. } => {
                self.broadcast_ddl(command, &name, &columns)?;
                Ok(CacheReply::Created)
            }
            Command::Insert {
                table,
                values,
                on_duplicate_update,
            } => {
                let tstamp = self.routed_insert(&table, values, on_duplicate_update)?;
                Ok(CacheReply::Inserted {
                    // A routed plain insert never replaces (that would
                    // be a duplicate-key error); only upserts can, and
                    // the scalar `replaced` is not worth a second wire
                    // field here.
                    replaced: false,
                    tstamp,
                })
            }
            Command::InsertBatch {
                table,
                rows,
                on_duplicate_update,
            } => {
                let tstamps = self.batch_insert(&table, rows, on_duplicate_update)?;
                Ok(CacheReply::InsertedBatch { tstamps })
            }
            Command::Select(_) => {
                let rs = self.select(command)?;
                Ok(CacheReply::Rows {
                    columns: rs.columns,
                    rows: rs.rows,
                })
            }
        }
    }

    /// Broadcast a `create table` to every partition (pipelined — one
    /// round-trip wall-clock) and remember the schema for gather-side
    /// evaluation.
    ///
    /// Not atomic: if partition `k` rejects the DDL, partitions
    /// `0..k` keep the table. Re-running then fails on those with
    /// "already exists" — surface the error to the operator rather
    /// than pretending a half-created table is usable.
    fn broadcast_ddl(
        &self,
        command: &str,
        name: &str,
        columns: &[pscache::sql::ColumnDef],
    ) -> Result<()> {
        let schema =
            Schema::new(name, columns.iter().map(|c| (c.name.clone(), c.ty))).map_err(|e| {
                Error::Remote {
                    message: e.to_string(),
                }
            })?;
        let handles = self.scatter(|client| client.begin_execute(command))?;
        for handle in handles {
            match handle.wait()? {
                CacheReply::Created => {}
                other => {
                    return Err(Error::protocol(format!(
                        "unexpected reply to broadcast ddl: {other:?}"
                    )))
                }
            }
        }
        self.schemas
            .write()
            .insert(name.to_owned(), Arc::new(schema));
        Ok(())
    }

    /// Insert one row on its owning partition (fast path, no SQL).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Remote`] when the owner rejects the row, and
    /// [`Error::NotMine`] only if the cluster's ring and this client's
    /// disagree even after following one redirect — a configuration
    /// error (mismatched partition counts), not a transient.
    pub fn insert(&self, table: &str, values: Vec<Scalar>) -> Result<u64> {
        self.routed_insert(table, values, false)
    }

    /// Upsert one row on its owning partition.
    ///
    /// # Errors
    ///
    /// As for [`ClusterClient::insert`].
    pub fn upsert(&self, table: &str, values: Vec<Scalar>) -> Result<u64> {
        self.routed_insert(table, values, true)
    }

    fn routed_insert(&self, table: &str, values: Vec<Scalar>, upsert: bool) -> Result<u64> {
        let key = routing_key(&values);
        let mut target = self.ring.partition_of(&key);
        // One redirect: trust our ring first, then the server's answer.
        // If the second owner also disclaims the key, the cluster's
        // rings disagree with each other and retrying cannot converge.
        for _ in 0..2 {
            let client = self.client(target);
            let sent = if upsert {
                client.upsert(table, values.clone())
            } else {
                client.insert(table, values.clone())
            };
            match sent {
                Err(Error::NotMine { partition }) => target = partition as usize,
                other => return other,
            }
        }
        Err(Error::NotMine {
            partition: target as u64,
        })
    }

    /// Insert many rows in one logical call: split per-partition, fan
    /// out pipelined `insert_batch` requests (all partitions load in
    /// parallel), and return one timestamp per row **in the caller's
    /// row order**.
    ///
    /// Per-partition chunks keep the caller's relative row order, so
    /// subscribed automata on each partition observe the same ordered
    /// run they would have from a single-node batch of those rows.
    ///
    /// # Errors
    ///
    /// The first failing partition's error. Chunks on other partitions
    /// may have been applied — same partial-batch contract as the
    /// single-node `insert_batch`, at partition granularity.
    pub fn insert_batch(&self, table: &str, rows: Vec<Vec<Scalar>>) -> Result<Vec<u64>> {
        self.batch_insert(table, rows, false)
    }

    /// Batched [`ClusterClient::upsert`].
    ///
    /// # Errors
    ///
    /// See [`ClusterClient::insert_batch`].
    pub fn upsert_batch(&self, table: &str, rows: Vec<Vec<Scalar>>) -> Result<Vec<u64>> {
        self.batch_insert(table, rows, true)
    }

    fn batch_insert(&self, table: &str, rows: Vec<Vec<Scalar>>, upsert: bool) -> Result<Vec<u64>> {
        let total = rows.len();
        let mut tstamps = vec![0u64; total];
        let mut pending: Vec<(Vec<usize>, PendingReply)> = Vec::new();
        for (partition, chunk) in split_batch(&self.ring, rows).into_iter().enumerate() {
            if chunk.is_empty() {
                continue;
            }
            let (indices, part_rows): (Vec<usize>, Vec<Vec<Scalar>>) = chunk.into_iter().unzip();
            let handle = self.client(partition).begin_request(Request::InsertBatch {
                table: table.to_owned(),
                rows: part_rows,
                upsert,
            })?;
            pending.push((indices, handle));
        }
        for (indices, handle) in pending {
            match handle.wait()? {
                CacheReply::InsertedBatch { tstamps: chunk } => {
                    for (ix, t) in indices.into_iter().zip(chunk) {
                        tstamps[ix] = t;
                    }
                }
                other => {
                    return Err(Error::protocol(format!(
                        "unexpected reply to insert_batch: {other:?}"
                    )))
                }
            }
        }
        Ok(tstamps)
    }

    /// Run a `select` across the whole cluster and return the same
    /// rows an unpartitioned cache holding every row would have
    /// returned.
    ///
    /// Only the `since τ` window is pushed down; the full plan runs
    /// here over the timestamp-merged window.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Remote`] for parse errors, for tables not
    /// created through this client (the gather side needs the schema —
    /// issue the `create table` through the cluster client), and for
    /// any partition rejecting its scatter leg.
    pub fn select(&self, command: &str) -> Result<ClientResultSet> {
        let query = match pscache::sql::parse(command).map_err(|e| Error::Remote {
            message: e.to_string(),
        })? {
            Command::Select(q) => q,
            other => {
                return Err(Error::Remote {
                    message: format!("expected a select, parsed {other:?}"),
                })
            }
        };
        let schema = self
            .schemas
            .read()
            .get(query.table())
            .cloned()
            .ok_or_else(|| Error::Remote {
                message: format!(
                    "unknown table `{}`: scatter-gather needs the schema; \
                     create the table through this cluster client",
                    query.table()
                ),
            })?;
        let scatter = match query.since_tstamp() {
            Some(t) => format!("select * from {} since {t}", query.table()),
            None => format!("select * from {}", query.table()),
        };
        let handles = self.scatter(|client| client.begin_execute(&scatter))?;
        let mut parts: Vec<Vec<GatheredRow>> = Vec::with_capacity(handles.len());
        for handle in handles {
            match handle.wait()? {
                CacheReply::Rows { rows, .. } => parts.push(
                    rows.into_iter()
                        .map(|r| GatheredRow {
                            tstamp: r.tstamp,
                            values: r.values,
                        })
                        .collect(),
                ),
                other => {
                    return Err(Error::protocol(format!(
                        "expected rows in reply to a scatter leg, got {other:?}"
                    )))
                }
            }
        }
        let merged = merge_by_tstamp(parts);
        let result = pscache::cluster::evaluate_gathered(&query, &schema, merged).map_err(|e| {
            Error::Remote {
                message: e.to_string(),
            }
        })?;
        Ok(ClientResultSet {
            columns: result.columns,
            rows: result
                .rows
                .into_iter()
                .map(|r| WireRow {
                    values: r.values,
                    tstamp: r.tstamp,
                })
                .collect(),
        })
    }

    /// Register an automaton on partition 0, the cluster's designated
    /// subscription home. With the cluster's
    /// [`pscache::SubBridge`]s running, that one registration observes
    /// the **full** topic stream — every partition's inserts — in
    /// per-partition order.
    ///
    /// # Errors
    ///
    /// Compilation errors come back as [`Error::Remote`].
    pub fn register_automaton(&self, source: &str) -> Result<u64> {
        self.register_automaton_at(0, source)
    }

    /// Register an automaton on a specific partition — callers that
    /// spread subscription load pick their own home node.
    ///
    /// # Errors
    ///
    /// As for [`ClusterClient::register_automaton`].
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range.
    pub fn register_automaton_at(&self, partition: usize, source: &str) -> Result<u64> {
        self.client(partition).register_automaton(source)
    }

    /// Unregister an automaton previously registered on `partition`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Remote`] for unknown ids.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range.
    pub fn unregister_automaton(&self, partition: usize, id: u64) -> Result<()> {
        self.client(partition).unregister_automaton(id)
    }

    /// Drain pending notifications from `partition`'s connection (the
    /// one its automata were registered on).
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range.
    #[must_use]
    pub fn drain_notifications(&self, partition: usize) -> Vec<ClientNotification> {
        self.client(partition).drain_notifications()
    }

    /// Health of every partition, gathered in parallel: one report per
    /// partition, in partition order.
    ///
    /// # Errors
    ///
    /// The first unreachable partition's error — a cluster with any
    /// dead partition is not healthy.
    pub fn health(&self) -> Result<Vec<HealthReport>> {
        let handles = self.scatter(|client| client.begin_request(Request::Health))?;
        let mut reports = Vec::with_capacity(handles.len());
        for handle in handles {
            match handle.wait()? {
                CacheReply::Health { report } => reports.push(report),
                other => {
                    return Err(Error::protocol(format!(
                        "unexpected reply to a health request: {other:?}"
                    )))
                }
            }
        }
        Ok(reports)
    }

    /// Observability snapshots from every partition, gathered in
    /// parallel: one per partition, in partition order. Merge them with
    /// [`pscache::MetricsSnapshot::merge`] for a cluster-wide view —
    /// histograms and counters aggregate exactly, because the buckets
    /// are identical on every node.
    ///
    /// # Errors
    ///
    /// The first unreachable partition's error — a fleet-wide scrape
    /// with a silent hole is worse than a loud failure.
    pub fn metrics_all(&self) -> Result<Vec<pscache::MetricsSnapshot>> {
        let handles = self.scatter(|client| client.begin_request(Request::Metrics))?;
        let mut snapshots = Vec::with_capacity(handles.len());
        for handle in handles {
            match handle.wait()? {
                CacheReply::Metrics { snapshot } => snapshots.push(snapshot),
                other => {
                    return Err(Error::protocol(format!(
                        "unexpected reply to a metrics request: {other:?}"
                    )))
                }
            }
        }
        Ok(snapshots)
    }

    /// Ping every partition.
    ///
    /// # Errors
    ///
    /// The first unreachable partition's error.
    pub fn ping_all(&self) -> Result<()> {
        for handle in self.scatter(|client| client.begin_request(Request::Ping))? {
            match handle.wait()? {
                CacheReply::Pong => {}
                other => {
                    return Err(Error::protocol(format!(
                        "unexpected reply to ping: {other:?}"
                    )))
                }
            }
        }
        Ok(())
    }

    /// Issue one pipelined request per partition and hand back the
    /// handles — wall-clock is one round trip to the slowest
    /// partition, not the sum.
    fn scatter<F>(&self, mut send: F) -> Result<Vec<PendingReply>>
    where
        F: FnMut(&CacheClient) -> Result<PendingReply>,
    {
        let mut handles = Vec::with_capacity(self.clients.len());
        for p in 0..self.clients.len() {
            handles.push(send(&self.client(p))?);
        }
        Ok(handles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscache::{Cache, CacheBuilder, ClusterSpec};

    /// An in-process cluster: `n` caches, each configured with its
    /// partition's [`ClusterSpec`] and a manual clock (so timestamps
    /// are deterministic and distinct across partitions: partition `p`
    /// starts its clock at `(p + 1) * 1000`).
    fn in_proc_cluster(n: usize) -> (Vec<Cache>, ClusterClient) {
        let caches: Vec<Cache> = (0..n)
            .map(|p| {
                let cache = CacheBuilder::new().manual_clock().build();
                cache.set_cluster_spec(ClusterSpec::new(n, p));
                cache
                    .manual_clock()
                    .expect("built with a manual clock")
                    .set(((p as u64) + 1) * 1000);
                cache
            })
            .collect();
        let clients = caches
            .iter()
            .map(|c| CacheClient::connect_inproc(c.clone()))
            .collect();
        (caches, ClusterClient::from_clients(clients))
    }

    const DDL: &str = "create table Flows (srcip varchar(16), nbytes integer)";

    fn flow(ip: &str, nbytes: i64) -> Vec<Scalar> {
        vec![Scalar::Str(ip.into()), Scalar::Int(nbytes)]
    }

    #[test]
    fn ddl_broadcasts_to_every_partition() {
        let (caches, cluster) = in_proc_cluster(3);
        cluster.execute(DDL).unwrap();
        for cache in &caches {
            // Every partition can serve its scatter leg.
            assert!(cache.execute("select * from Flows").is_ok());
        }
    }

    #[test]
    fn writes_route_to_the_ring_owner_and_select_gathers_all() {
        let (caches, cluster) = in_proc_cluster(2);
        cluster.execute(DDL).unwrap();
        let total = 64;
        for i in 0..total {
            cluster
                .insert("Flows", flow(&format!("10.0.0.{i}"), i))
                .unwrap();
        }
        // Each row lives on exactly the partition the ring names, and
        // nowhere else.
        let mut per_partition = Vec::new();
        for (p, cache) in caches.iter().enumerate() {
            let rows = cache
                .execute("select * from Flows")
                .unwrap()
                .rows()
                .unwrap();
            for row in &rows.rows {
                let key = routing_key(&row.values);
                assert_eq!(cluster.ring().partition_of(&key), p, "misplaced row");
            }
            per_partition.push(rows.len());
        }
        assert_eq!(per_partition.iter().sum::<usize>(), total as usize);
        assert!(
            per_partition.iter().all(|&c| c > 0),
            "64 keys over 2 partitions left one empty: {per_partition:?}"
        );
        // The gathered view is the union, in global timestamp order.
        let rs = cluster.select("select * from Flows").unwrap();
        assert_eq!(rs.len(), total as usize);
        let tstamps: Vec<u64> = rs.rows.iter().map(|r| r.tstamp).collect();
        let mut sorted = tstamps.clone();
        sorted.sort_unstable();
        assert_eq!(tstamps, sorted, "gather is not timestamp-ordered");
    }

    #[test]
    fn batch_fans_out_and_reassembles_in_row_order() {
        let (caches, cluster) = in_proc_cluster(2);
        cluster.execute(DDL).unwrap();
        let rows: Vec<Vec<Scalar>> = (0..40).map(|i| flow(&format!("h{i}"), i)).collect();
        let tstamps = cluster.insert_batch("Flows", rows.clone()).unwrap();
        assert_eq!(tstamps.len(), rows.len());
        // Partition p's manual clock starts at (p+1)*1000, so every
        // timestamp identifies its partition — check each row's stamp
        // came from the ring owner of that row's key.
        for (row, &t) in rows.iter().zip(&tstamps) {
            let owner = cluster.ring().partition_of(&routing_key(row));
            let band = ((owner as u64) + 1) * 1000;
            assert!(
                (band..band + 1000).contains(&t),
                "row keyed {:?} stamped {t}, expected partition {owner}'s band",
                row[0]
            );
        }
        let on_disk: usize = caches
            .iter()
            .map(|c| {
                c.execute("select * from Flows")
                    .unwrap()
                    .rows()
                    .unwrap()
                    .len()
            })
            .sum();
        assert_eq!(on_disk, rows.len());
    }

    #[test]
    fn full_plan_runs_over_the_gathered_window() {
        let (_caches, cluster) = in_proc_cluster(2);
        cluster.execute(DDL).unwrap();
        for i in 0..20 {
            let ip = if i % 2 == 0 { "even" } else { "odd" };
            cluster.insert("Flows", flow(ip, i)).unwrap();
        }
        let rs = cluster
            .select("select sum(nbytes) from Flows group by srcip order by srcip")
            .unwrap();
        assert_eq!(
            rs.columns,
            vec!["srcip".to_owned(), "sum(nbytes)".to_owned()]
        );
        assert_eq!(rs.rows.len(), 2);
        // 0+2+...+18 = 90 (even), 1+3+...+19 = 100 (odd).
        assert_eq!(rs.rows[0].values[1], Scalar::Int(90));
        assert_eq!(rs.rows[1].values[1], Scalar::Int(100));
    }

    #[test]
    fn misrouted_write_gets_a_typed_redirect() {
        let (caches, cluster) = in_proc_cluster(2);
        cluster.execute(DDL).unwrap();
        // Find a key owned by partition 1 and send it straight to
        // partition 0's server, bypassing the routing layer.
        let key = (0..1000)
            .map(|i| format!("k{i}"))
            .find(|k| cluster.ring().partition_of(k) == 1)
            .expect("some key maps to partition 1");
        let direct = CacheClient::connect_inproc(caches[0].clone());
        match direct.insert("Flows", flow(&key, 1)) {
            Err(Error::NotMine { partition }) => assert_eq!(partition, 1),
            other => panic!("expected a NotMine redirect, got {other:?}"),
        }
        // Nothing was applied on the wrong partition.
        assert!(caches[0]
            .execute("select * from Flows")
            .unwrap()
            .rows()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn stale_client_ring_converges_via_one_redirect() {
        // Servers agree on the production ring; the client is built
        // with a deliberately different (1-vnode) ring, so some keys
        // are misrouted. Every such write must still land exactly once
        // on the true owner, via the server's redirect.
        let (caches, cluster) = in_proc_cluster(2);
        cluster.execute(DDL).unwrap();
        let stale = ClusterClient {
            ring: HashRing::with_vnodes(2, 1),
            clients: (0..2)
                .map(|p| RwLock::new(Arc::new(CacheClient::connect_inproc(caches[p].clone()))))
                .collect(),
            schemas: RwLock::new(HashMap::new()),
        };
        let true_ring = cluster.ring();
        let mut misrouted = 0;
        for i in 0..200 {
            let key = format!("key-{i}");
            if stale.ring.partition_of(&key) != true_ring.partition_of(&key) {
                misrouted += 1;
            }
            stale.insert("Flows", flow(&key, i)).unwrap();
        }
        assert!(misrouted > 0, "test needs at least one disagreeing key");
        let rs = cluster.select("select * from Flows").unwrap();
        assert_eq!(rs.len(), 200, "every write landed exactly once");
    }

    #[test]
    fn select_without_the_schema_is_an_instructive_error() {
        let (caches, cluster) = in_proc_cluster(2);
        // Created behind the cluster client's back.
        for cache in &caches {
            cache.execute(DDL).unwrap();
        }
        match cluster.select("select * from Flows") {
            Err(Error::Remote { message }) => {
                assert!(message.contains("create the table through this cluster client"));
            }
            other => panic!("expected a remote error, got {other:?}"),
        }
    }

    #[test]
    fn health_reports_one_per_partition() {
        let (_caches, cluster) = in_proc_cluster(3);
        let reports = cluster.health().unwrap();
        assert_eq!(reports.len(), 3);
        cluster.ping_all().unwrap();
    }

    #[test]
    fn metrics_scatter_to_every_partition_and_merge() {
        let (caches, cluster) = in_proc_cluster(3);
        for cache in &caches {
            cache.execute(DDL).unwrap();
        }
        for i in 0..30 {
            cluster.insert("Flows", flow(&format!("k-{i}"), i)).unwrap();
        }
        let snapshots = cluster.metrics_all().unwrap();
        assert_eq!(snapshots.len(), 3);
        // Every partition took some share of the 30 hashed writes, so
        // the merged insert counter sees all of them.
        let mut merged = snapshots[0].clone();
        for s in &snapshots[1..] {
            merged.merge(s);
        }
        assert_eq!(merged.counter("rpc_requests_insert"), Some(30));
    }
}
