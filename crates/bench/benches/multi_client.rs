//! Multi-client throughput of the RPC server.
//!
//! The paper's prototype serves every application from one accept loop;
//! the rewritten `psrpc::server` gives each connection its own worker so
//! concurrent clients scale with cores. This benchmark measures aggregate
//! insert throughput (tuples/sec over TCP loopback) as the client count
//! grows, in two shapes:
//!
//! * **disjoint** — each client inserts into its own table, the
//!   embarrassingly parallel case the sharded table store exists for;
//! * **shared** — every client inserts into one table, bounding the win
//!   at the per-table lock while still exercising parallel decode.
//!
//! Run with `cargo bench --bench multi_client`; each case prints
//! tuples/sec directly (wall-clock measurement, no sampling harness).
//!
//! Note: aggregate throughput only scales with the client count when the
//! host actually has spare cores. On a single-core container (as in some
//! CI sandboxes) every case is time-sliced onto the same CPU and the
//! disjoint curve is flat — that is the scheduler, not the server.

use std::time::Instant;

use gapl::event::Scalar;
use pscache::CacheBuilder;
use psrpc::client::CacheClient;
use psrpc::server::RpcServer;

const INSERTS_PER_CLIENT: usize = 4000;

fn run_case(clients: usize, shared: bool) -> f64 {
    let cache = CacheBuilder::new().build();
    if shared {
        cache
            .execute("create table T (client integer, v integer)")
            .expect("create table");
    } else {
        for c in 0..clients {
            cache
                .execute(&format!("create table T{c} (client integer, v integer)"))
                .expect("create table");
        }
    }
    let server = RpcServer::bind(cache, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let client = CacheClient::connect(addr).expect("connect");
                let table = if shared {
                    "T".to_owned()
                } else {
                    format!("T{c}")
                };
                for i in 0..INSERTS_PER_CLIENT {
                    client
                        .insert(&table, vec![Scalar::Int(c as i64), Scalar::Int(i as i64)])
                        .expect("insert");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let elapsed = start.elapsed();
    server.shutdown();
    (clients * INSERTS_PER_CLIENT) as f64 / elapsed.as_secs_f64()
}

fn main() {
    println!("multi_client throughput ({INSERTS_PER_CLIENT} inserts per client, TCP loopback)");
    for &shared in &[false, true] {
        let shape = if shared { "shared" } else { "disjoint" };
        let mut baseline = None;
        for clients in [1usize, 2, 4, 8] {
            let tput = run_case(clients, shared);
            let speedup = tput / *baseline.get_or_insert(tput);
            println!(
                "multi_client/{shape}/clients={clients:<2}  {tput:>12.0} tuples/s  \
                 ({speedup:.2}x vs 1 client)"
            );
        }
    }
}
