//! Tokenizer and recursive-descent parser for the SQL-ish command surface.

use gapl::event::{AttrType, Scalar};

use crate::error::{Error, Result};
use crate::query::{Aggregate, Comparison, Predicate, Query};
use crate::table::TableKind;

use super::ast::{ColumnDef, Command};

/// Parse a single SQL-ish command.
///
/// # Errors
///
/// Returns [`Error::Sql`] describing the first problem encountered.
///
/// # Example
///
/// ```
/// use pscache::sql::{parse, Command};
/// match parse("insert into Flows values ('10.0.0.1', 1500)")? {
///     Command::Insert { table, values, .. } => {
///         assert_eq!(table, "Flows");
///         assert_eq!(values.len(), 2);
///     }
///     other => panic!("unexpected {other:?}"),
/// }
/// # Ok::<(), pscache::Error>(())
/// ```
pub fn parse(input: &str) -> Result<Command> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let cmd = p.command()?;
    p.expect_end()?;
    Ok(cmd)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),
    Int(i64),
    Real(f64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Star,
    Op(String),
}

fn tokenize(input: &str) -> Result<Vec<Tok>> {
    let chars: Vec<char> = input.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c == '(' {
            out.push(Tok::LParen);
            i += 1;
        } else if c == ')' {
            out.push(Tok::RParen);
            i += 1;
        } else if c == ',' {
            out.push(Tok::Comma);
            i += 1;
        } else if c == '*' {
            out.push(Tok::Star);
            i += 1;
        } else if c == '\'' || c == '"' {
            let quote = c;
            let mut s = String::new();
            i += 1;
            loop {
                if i >= chars.len() {
                    return Err(Error::sql("unterminated string literal"));
                }
                if chars[i] == quote {
                    i += 1;
                    break;
                }
                s.push(chars[i]);
                i += 1;
            }
            out.push(Tok::Str(s));
        } else if c.is_ascii_digit()
            || (c == '-' && i + 1 < chars.len() && chars[i + 1].is_ascii_digit())
        {
            let start = i;
            i += 1;
            let mut is_real = false;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                if chars[i] == '.' {
                    is_real = true;
                }
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            if is_real {
                out.push(Tok::Real(
                    text.parse()
                        .map_err(|_| Error::sql(format!("invalid number `{text}`")))?,
                ));
            } else {
                out.push(Tok::Int(
                    text.parse()
                        .map_err(|_| Error::sql(format!("invalid number `{text}`")))?,
                ));
            }
        } else if c == '_' || c.is_alphabetic() {
            let start = i;
            while i < chars.len()
                && (chars[i] == '_' || chars[i].is_alphanumeric() || chars[i] == '.')
            {
                i += 1;
            }
            out.push(Tok::Word(chars[start..i].iter().collect()));
        } else if "=<>!".contains(c) {
            let start = i;
            i += 1;
            while i < chars.len() && "=<>".contains(chars[i]) {
                i += 1;
            }
            out.push(Tok::Op(chars[start..i].iter().collect()));
        } else if c == ';' {
            i += 1; // a trailing semicolon is tolerated
        } else {
            return Err(Error::sql(format!("unexpected character `{c}`")));
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_word(&self) -> Option<String> {
        match self.peek() {
            Some(Tok::Word(w)) => Some(w.to_ascii_lowercase()),
            _ => None,
        }
    }

    /// Consume the next token if it is the given (case-insensitive) keyword.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_word().as_deref() == Some(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(Error::sql(format!(
                "expected keyword `{kw}`, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_word(&mut self) -> Result<String> {
        match self.bump() {
            Some(Tok::Word(w)) => Ok(w),
            other => Err(Error::sql(format!(
                "expected an identifier, found {other:?}"
            ))),
        }
    }

    fn expect_tok(&mut self, tok: &Tok) -> Result<()> {
        match self.bump() {
            Some(t) if &t == tok => Ok(()),
            other => Err(Error::sql(format!("expected {tok:?}, found {other:?}"))),
        }
    }

    fn expect_end(&mut self) -> Result<()> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(Error::sql(format!(
                "unexpected trailing input: {:?}",
                &self.tokens[self.pos..]
            )))
        }
    }

    fn command(&mut self) -> Result<Command> {
        match self.peek_word().as_deref() {
            Some("create") => self.create(),
            Some("insert") => self.insert(),
            Some("select") => self.select().map(Command::Select),
            other => Err(Error::sql(format!(
                "expected `create`, `insert` or `select`, found {other:?}"
            ))),
        }
    }

    fn create(&mut self) -> Result<Command> {
        self.expect_keyword("create")?;
        let kind = if self.eat_keyword("persistenttable") {
            TableKind::Persistent
        } else if self.eat_keyword("table") {
            TableKind::Ephemeral
        } else if self.eat_keyword("persistent") {
            self.expect_keyword("table")?;
            TableKind::Persistent
        } else {
            return Err(Error::sql(
                "expected `table` or `persistenttable` after `create`",
            ));
        };
        let name = self.expect_word()?;
        self.expect_tok(&Tok::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.expect_word()?;
            let ty = self.column_type()?;
            // `primary key` on the first column is accepted and implied.
            if self.eat_keyword("primary") {
                self.expect_keyword("key")?;
            }
            columns.push(ColumnDef { name: col_name, ty });
            match self.bump() {
                Some(Tok::Comma) => continue,
                Some(Tok::RParen) => break,
                other => {
                    return Err(Error::sql(format!(
                        "expected `,` or `)` in column list, found {other:?}"
                    )))
                }
            }
        }
        let mut capacity = None;
        if self.eat_keyword("capacity") {
            match self.bump() {
                Some(Tok::Int(n)) if n > 0 => capacity = Some(n as usize),
                other => {
                    return Err(Error::sql(format!(
                        "expected a positive capacity, found {other:?}"
                    )))
                }
            }
        }
        Ok(Command::CreateTable {
            name,
            kind,
            columns,
            capacity,
        })
    }

    fn column_type(&mut self) -> Result<AttrType> {
        let word = self.expect_word()?.to_ascii_lowercase();
        let ty = match word.as_str() {
            "integer" | "int" | "bigint" => AttrType::Int,
            "real" | "double" | "float" => AttrType::Real,
            "boolean" | "bool" => AttrType::Bool,
            "tstamp" | "timestamp" => AttrType::Tstamp,
            "varchar" | "text" | "string" | "char" => {
                // optional (n)
                if self.peek() == Some(&Tok::LParen) {
                    self.bump();
                    match self.bump() {
                        Some(Tok::Int(_)) => {}
                        other => {
                            return Err(Error::sql(format!(
                                "expected a varchar length, found {other:?}"
                            )))
                        }
                    }
                    self.expect_tok(&Tok::RParen)?;
                }
                AttrType::Str
            }
            other => return Err(Error::sql(format!("unknown column type `{other}`"))),
        };
        Ok(ty)
    }

    fn insert(&mut self) -> Result<Command> {
        self.expect_keyword("insert")?;
        self.expect_keyword("into")?;
        let table = self.expect_word()?;
        self.expect_keyword("values")?;
        // One or more parenthesised rows, comma separated (multi-row
        // inserts travel through the cache's batched insert path).
        let mut rows = Vec::new();
        loop {
            rows.push(self.value_row()?);
            if self.peek() == Some(&Tok::Comma) {
                self.bump();
                continue;
            }
            break;
        }
        let mut on_duplicate_update = false;
        if self.eat_keyword("on") {
            self.expect_keyword("duplicate")?;
            self.expect_keyword("key")?;
            self.expect_keyword("update")?;
            on_duplicate_update = true;
        }
        if rows.len() == 1 {
            Ok(Command::Insert {
                table,
                values: rows.pop().expect("one row is present"),
                on_duplicate_update,
            })
        } else {
            Ok(Command::InsertBatch {
                table,
                rows,
                on_duplicate_update,
            })
        }
    }

    fn value_row(&mut self) -> Result<Vec<Scalar>> {
        self.expect_tok(&Tok::LParen)?;
        let mut values = Vec::new();
        loop {
            values.push(self.literal()?);
            match self.bump() {
                Some(Tok::Comma) => continue,
                Some(Tok::RParen) => return Ok(values),
                other => {
                    return Err(Error::sql(format!(
                        "expected `,` or `)` in value list, found {other:?}"
                    )))
                }
            }
        }
    }

    fn literal(&mut self) -> Result<Scalar> {
        match self.bump() {
            Some(Tok::Int(i)) => Ok(Scalar::Int(i)),
            Some(Tok::Real(r)) => Ok(Scalar::Real(r)),
            Some(Tok::Str(s)) => Ok(Scalar::Str(s.into())),
            Some(Tok::Word(w)) if w.eq_ignore_ascii_case("true") => Ok(Scalar::Bool(true)),
            Some(Tok::Word(w)) if w.eq_ignore_ascii_case("false") => Ok(Scalar::Bool(false)),
            other => Err(Error::sql(format!("expected a literal, found {other:?}"))),
        }
    }

    fn select(&mut self) -> Result<Query> {
        self.expect_keyword("select")?;
        // Projection: *, columns, or aggregates.
        let mut columns: Vec<String> = Vec::new();
        let mut aggregates: Vec<Aggregate> = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.bump();
                }
                Some(Tok::Word(w)) => {
                    let w = w.clone();
                    let lower = w.to_ascii_lowercase();
                    if matches!(lower.as_str(), "count" | "sum" | "avg" | "min" | "max")
                        && self.tokens.get(self.pos + 1) == Some(&Tok::LParen)
                    {
                        self.bump();
                        self.bump();
                        let arg = match self.bump() {
                            Some(Tok::Star) => None,
                            Some(Tok::Word(col)) => Some(col),
                            other => {
                                return Err(Error::sql(format!(
                                    "expected a column or `*` in aggregate, found {other:?}"
                                )))
                            }
                        };
                        self.expect_tok(&Tok::RParen)?;
                        let agg = match (lower.as_str(), arg) {
                            ("count", _) => Aggregate::Count,
                            ("sum", Some(c)) => Aggregate::Sum(c),
                            ("avg", Some(c)) => Aggregate::Avg(c),
                            ("min", Some(c)) => Aggregate::Min(c),
                            ("max", Some(c)) => Aggregate::Max(c),
                            (name, None) => {
                                return Err(Error::sql(format!("{name}() requires a column")))
                            }
                            _ => unreachable!("aggregate names matched above"),
                        };
                        aggregates.push(agg);
                    } else {
                        self.bump();
                        columns.push(w);
                    }
                }
                other => {
                    return Err(Error::sql(format!(
                        "expected a projection, found {other:?}"
                    )))
                }
            }
            if self.peek() == Some(&Tok::Comma) {
                self.bump();
            } else {
                break;
            }
        }

        self.expect_keyword("from")?;
        let table = self.expect_word()?;
        let mut query = Query::new(table);
        if !columns.is_empty() {
            query = query.columns(columns);
        }
        for agg in aggregates {
            query = query.aggregate(agg);
        }

        loop {
            match self.peek_word().as_deref() {
                Some("where") => {
                    self.bump();
                    let predicate = self.predicate()?;
                    query = query.filter(predicate);
                }
                Some("since") => {
                    self.bump();
                    match self.bump() {
                        Some(Tok::Int(t)) if t >= 0 => query = query.since(t as u64),
                        other => {
                            return Err(Error::sql(format!(
                                "expected a timestamp after `since`, found {other:?}"
                            )))
                        }
                    }
                }
                Some("group") => {
                    self.bump();
                    self.expect_keyword("by")?;
                    let col = self.expect_word()?;
                    query = query.group_by(col);
                }
                Some("order") => {
                    self.bump();
                    self.expect_keyword("by")?;
                    let col = self.expect_word()?;
                    let descending = if self.eat_keyword("desc") {
                        true
                    } else {
                        self.eat_keyword("asc");
                        false
                    };
                    query = query.order_by(col, descending);
                }
                Some("limit") => {
                    self.bump();
                    match self.bump() {
                        Some(Tok::Int(n)) if n >= 0 => query = query.limit(n as usize),
                        other => {
                            return Err(Error::sql(format!("expected a limit, found {other:?}")))
                        }
                    }
                }
                _ => break,
            }
        }
        Ok(query)
    }

    fn predicate(&mut self) -> Result<Predicate> {
        self.or_predicate()
    }

    fn or_predicate(&mut self) -> Result<Predicate> {
        let mut lhs = self.and_predicate()?;
        while self.eat_keyword("or") {
            let rhs = self.and_predicate()?;
            lhs = Predicate::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_predicate(&mut self) -> Result<Predicate> {
        let mut lhs = self.primary_predicate()?;
        while self.eat_keyword("and") {
            let rhs = self.primary_predicate()?;
            lhs = Predicate::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn primary_predicate(&mut self) -> Result<Predicate> {
        if self.eat_keyword("not") {
            return Ok(Predicate::Not(Box::new(self.primary_predicate()?)));
        }
        if self.peek() == Some(&Tok::LParen) {
            self.bump();
            let p = self.predicate()?;
            self.expect_tok(&Tok::RParen)?;
            return Ok(p);
        }
        let column = self.expect_word()?;
        let op = match self.bump() {
            Some(Tok::Op(op)) => match op.as_str() {
                "=" | "==" => Comparison::Eq,
                "!=" | "<>" => Comparison::NotEq,
                "<" => Comparison::Lt,
                "<=" => Comparison::Le,
                ">" => Comparison::Gt,
                ">=" => Comparison::Ge,
                other => return Err(Error::sql(format!("unknown comparison `{other}`"))),
            },
            other => {
                return Err(Error::sql(format!(
                    "expected a comparison, found {other:?}"
                )))
            }
        };
        let value = self.literal()?;
        Ok(Predicate::Compare { column, op, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_create_statements() {
        // Fig. 3 — the bandwidth usage tables.
        let cmd = parse(
            "create table Flows (protocol integer, srcip varchar(16), sport integer, \
             dstip varchar(16), dport integer, npkts integer, nbytes integer)",
        )
        .unwrap();
        match cmd {
            Command::CreateTable {
                name,
                kind,
                columns,
                capacity,
            } => {
                assert_eq!(name, "Flows");
                assert_eq!(kind, TableKind::Ephemeral);
                assert_eq!(columns.len(), 7);
                assert_eq!(columns[1].ty, AttrType::Str);
                assert_eq!(capacity, None);
            }
            other => panic!("unexpected {other:?}"),
        }

        let cmd = parse(
            "create persistenttable Allowances (ipaddr varchar(16) primary key, bytes integer)",
        )
        .unwrap();
        match cmd {
            Command::CreateTable { kind, columns, .. } => {
                assert_eq!(kind, TableKind::Persistent);
                assert_eq!(columns[0].name, "ipaddr");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn create_with_capacity_and_alternate_spellings() {
        match parse("create table T (a int, b double, c bool, d timestamp, e text) capacity 128")
            .unwrap()
        {
            Command::CreateTable {
                columns, capacity, ..
            } => {
                assert_eq!(
                    columns.iter().map(|c| c.ty).collect::<Vec<_>>(),
                    vec![
                        AttrType::Int,
                        AttrType::Real,
                        AttrType::Bool,
                        AttrType::Tstamp,
                        AttrType::Str
                    ]
                );
                assert_eq!(capacity, Some(128));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse("create persistent table P (k text, v int)").is_ok());
    }

    #[test]
    fn parses_inserts_with_and_without_upsert() {
        match parse("insert into BWUsage values ('10.0.0.1', 42) on duplicate key update").unwrap()
        {
            Command::Insert {
                table,
                values,
                on_duplicate_update,
            } => {
                assert_eq!(table, "BWUsage");
                assert_eq!(
                    values,
                    vec![Scalar::Str("10.0.0.1".into()), Scalar::Int(42)]
                );
                assert!(on_duplicate_update);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse("insert into T values (1, 2.5, true, false, 'x');").unwrap() {
            Command::Insert { values, .. } => {
                assert_eq!(
                    values,
                    vec![
                        Scalar::Int(1),
                        Scalar::Real(2.5),
                        Scalar::Bool(true),
                        Scalar::Bool(false),
                        Scalar::Str("x".into())
                    ]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_multi_row_inserts_as_batches() {
        match parse("insert into T values (1, 'a'), (2, 'b'), (3, 'c')").unwrap() {
            Command::InsertBatch {
                table,
                rows,
                on_duplicate_update,
            } => {
                assert_eq!(table, "T");
                assert_eq!(rows.len(), 3);
                assert_eq!(rows[0], vec![Scalar::Int(1), Scalar::Str("a".into())]);
                assert_eq!(rows[2], vec![Scalar::Int(3), Scalar::Str("c".into())]);
                assert!(!on_duplicate_update);
            }
            other => panic!("unexpected {other:?}"),
        }
        // A single row still parses to the plain insert command.
        assert!(matches!(
            parse("insert into T values (1)").unwrap(),
            Command::Insert { .. }
        ));
        // The upsert modifier applies to the whole batch.
        assert!(matches!(
            parse("insert into T values ('a', 1), ('b', 2) on duplicate key update").unwrap(),
            Command::InsertBatch {
                on_duplicate_update: true,
                ..
            }
        ));
        // Malformed batches are rejected.
        assert!(parse("insert into T values (1), ").is_err());
        assert!(parse("insert into T values (1), 2").is_err());
    }

    #[test]
    fn parses_select_with_all_clauses() {
        let cmd = parse(
            "select srcip, nbytes from Flows where nbytes > 1000 and (dport = 80 or dport = 443) \
             since 12345 order by nbytes desc limit 10",
        )
        .unwrap();
        match cmd {
            Command::Select(q) => {
                assert_eq!(q.table(), "Flows");
                assert_eq!(q.since_tstamp(), Some(12345));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_select_star_and_aggregates() {
        assert!(matches!(
            parse("select * from Flows").unwrap(),
            Command::Select(_)
        ));
        assert!(matches!(
            parse("select count(*), sum(nbytes), avg(nbytes) from Flows group by srcip").unwrap(),
            Command::Select(_)
        ));
        assert!(matches!(
            parse("select srcip from Flows where not srcip = '10.0.0.1'").unwrap(),
            Command::Select(_)
        ));
    }

    #[test]
    fn negative_numbers_and_strings_lex_correctly() {
        match parse("insert into T values (-5, -2.5, 'hello world')").unwrap() {
            Command::Insert { values, .. } => {
                assert_eq!(values[0], Scalar::Int(-5));
                assert_eq!(values[1], Scalar::Real(-2.5));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn malformed_commands_are_rejected() {
        assert!(parse("").is_err());
        assert!(parse("drop table T").is_err());
        assert!(parse("create table T").is_err());
        assert!(parse("create table T (a unknown_type)").is_err());
        assert!(parse("insert into T values (").is_err());
        assert!(parse("insert into T values (1) on duplicate").is_err());
        assert!(parse("select from T").is_err());
        assert!(parse("select * from T where x").is_err());
        assert!(parse("select * from T since 'yesterday'").is_err());
        assert!(parse("select * from T limit -1").is_err());
        assert!(parse("select * from T extra junk").is_err());
        assert!(parse("insert into T values ('unterminated)").is_err());
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse("SELECT * FROM Flows WHERE nbytes >= 10 ORDER BY nbytes ASC").is_ok());
        assert!(parse("INSERT INTO T VALUES (1)").is_ok());
        assert!(parse("CREATE TABLE T (a INTEGER)").is_ok());
    }
}
