//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset the synthetic workload generators use:
//! [`rngs::StdRng`] (a seedable xoshiro256\*\* generator), the
//! [`SeedableRng`] constructor and the [`Rng`] extension methods
//! `gen`, `gen_range` and `gen_bool`. Distribution quality is good enough
//! for workload synthesis and statistical tests (equidistributed 64-bit
//! outputs, splitmix64 seeding); it makes no cryptographic claims.

/// A source of 64-bit random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly over their whole domain (the `Standard`
/// distribution of the real crate).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable uniformly; implemented for `Range`/`RangeInclusive`
/// over the primitive numeric types.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with an empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_impls!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with an empty range");
                let unit = f64::sample(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_range_impls!(f32, f64);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value uniformly over the type's whole domain.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw a value uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draw `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool needs p in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256\*\* seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            StdRng {
                state: [
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut n = [s0, s1, s2, s3];
            n[2] ^= n[0];
            n[3] ^= n[1];
            n[1] ^= n[2];
            n[0] ^= n[3];
            n[2] ^= t;
            n[3] = n[3].rotate_left(45);
            self.state = n;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-50..50);
            assert!((-50..50).contains(&v));
            let u: usize = rng.gen_range(0..7);
            assert!(u < 7);
            let w: i64 = rng.gen_range(3..=5);
            assert!((3..=5).contains(&w));
            let f: f64 = rng.gen_range(-0.25..0.25);
            assert!((-0.25..0.25).contains(&f));
            let unit: f64 = rng.gen();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn all_ranks_reachable_in_small_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
