//! Error types for the RPC layer.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// The error type returned by the RPC client and server.
#[derive(Debug)]
pub enum Error {
    /// An I/O error on the underlying transport.
    Io(std::io::Error),
    /// The peer sent bytes that do not decode as a valid message.
    Protocol {
        /// Explanation of the failure.
        message: String,
    },
    /// The connection was closed while a response was expected.
    Disconnected,
    /// The cache rejected the request (unknown table, SQL error, automaton
    /// compile error, ...); carries the cache's error text.
    Remote {
        /// The error reported by the cache.
        message: String,
    },
    /// The connection died after a non-idempotent request was fully sent
    /// but before its reply arrived: the server may or may not have
    /// applied it, and a blind retry could apply it twice. A
    /// reconnecting client surfaces this instead of silently re-sending;
    /// the caller decides whether to re-issue (e.g. after reading the
    /// current state back). Idempotent requests — reads, pings, upserts —
    /// are retried internally and never produce this error. Requests
    /// stamped with an idempotency token do not produce it on a dropped
    /// connection either: the server's token table makes their retries
    /// exactly-once. The one remaining producer for tokened mutations is
    /// a [`crate::client::ReconnectPolicy::deadline`] expiring before
    /// the reply arrives — the client stops waiting and abandons the
    /// token with the request, so the mutation's fate is unknown.
    MaybeApplied,
    /// The server's per-client admission control rejected the request
    /// before it was applied (rate, byte or in-flight quota). Retrying
    /// after `retry_after` is always safe; a reconnecting client honors
    /// the delay and retries internally until its policy's deadline.
    Throttled {
        /// The server's suggested backoff before re-sending.
        retry_after: std::time::Duration,
    },
    /// The server answered with a cluster redirect
    /// ([`crate::message::CacheReply::NotMine`]): it does not own the
    /// written key's partition. Nothing was applied; re-send the
    /// identical request to the named partition's primary. The cluster
    /// client ([`crate::cluster::ClusterClient`]) follows the redirect
    /// internally — seeing this error from it means the cluster's
    /// membership and the client's ring disagree.
    NotMine {
        /// The partition that owns the rejected key.
        partition: u64,
    },
}

impl Error {
    /// Construct a [`Error::Protocol`].
    pub fn protocol(message: impl Into<String>) -> Self {
        Error::Protocol {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "rpc i/o error: {e}"),
            Error::Protocol { message } => write!(f, "rpc protocol error: {message}"),
            Error::Disconnected => write!(f, "rpc connection closed"),
            Error::Remote { message } => write!(f, "cache error: {message}"),
            Error::MaybeApplied => write!(
                f,
                "rpc connection lost after the request was sent; it may or may not have been applied"
            ),
            Error::Throttled { retry_after } => write!(
                f,
                "request rejected by admission control; retry after {retry_after:?}"
            ),
            Error::NotMine { partition } => write!(
                f,
                "key belongs to cluster partition {partition}; re-send there"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<pscache::Error> for Error {
    fn from(e: pscache::Error) -> Self {
        match e {
            // Wire-decoding failures (the shared encoder/decoder lives in
            // `pscache::wire`) are protocol errors of this layer.
            pscache::Error::Protocol { message } => Error::Protocol { message },
            // Anything else is the cache rejecting the request.
            other => Error::Remote {
                message: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(Error::protocol("bad tag").to_string().contains("bad tag"));
        assert_eq!(Error::Disconnected.to_string(), "rpc connection closed");
        assert!(Error::MaybeApplied
            .to_string()
            .contains("may or may not have been applied"));
        assert!(Error::Throttled {
            retry_after: std::time::Duration::from_millis(5)
        }
        .to_string()
        .contains("admission control"));
        let io: Error = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
        assert!(std::error::Error::source(&io).is_some());
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
