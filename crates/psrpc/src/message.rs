//! RPC message types and their wire encoding.
//!
//! Marshalling is zero-copy up to the final byte buffer: a
//! [`CacheReply::Rows`] is built by *moving* each result row's scalars
//! out of the cache's `ResultSet` — and since string scalars are
//! `Arc<str>`, those moves shuffle pointers that still share storage
//! with the table itself. String bytes are copied exactly once, from
//! the shared row into the outgoing frame. Decoding is symmetric: string
//! payloads are UTF-8-validated in place on the receive buffer and
//! materialised with a single allocation each.

use gapl::event::Scalar;

use crate::error::{Error, Result};
use crate::wire::{WireReader, WireWriter};

/// The most rows a single [`Request::InsertBatch`] may carry — the same
/// bound the decoder enforces, so a well-behaved client can check before
/// encoding instead of having the server drop the connection on an
/// oversized (or length-truncated) batch.
pub const MAX_BATCH_ROWS: usize = 1_000_000;

/// A request sent from an application to the cache.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Execute a SQL-ish command (`create table`, `insert`, `select`).
    Execute {
        /// The command text.
        command: String,
    },
    /// Insert a pre-parsed tuple — the fast path used by event sources that
    /// insert at high rate (the stress tests of §6.3).
    Insert {
        /// Target table.
        table: String,
        /// Values in schema order.
        values: Vec<Scalar>,
        /// Whether to apply `on duplicate key update` semantics.
        upsert: bool,
    },
    /// Insert many pre-parsed tuples into one table in a single round
    /// trip; the cache applies the whole batch under one table-lock
    /// acquisition, preserving row order.
    InsertBatch {
        /// Target table.
        table: String,
        /// Rows, each with values in schema order.
        rows: Vec<Vec<Scalar>>,
        /// Whether to apply `on duplicate key update` semantics to every
        /// row.
        upsert: bool,
    },
    /// Register an automaton from GAPL source.
    RegisterAutomaton {
        /// The automaton source code.
        source: String,
    },
    /// Unregister a previously registered automaton.
    UnregisterAutomaton {
        /// The id returned at registration time.
        id: u64,
    },
    /// Liveness check.
    Ping,
    /// Ask for the server's counters (connections, requests, and the
    /// cache's automaton-dispatch statistics).
    ServerStats,
    /// Ask for the cheap health/readiness snapshot. Unlike
    /// [`Request::ServerStats`] this is answered from atomic counters
    /// only — the reactor answers it inline on the event thread, so a
    /// load-balancer probe gets a reply even when every worker is busy.
    Health,
    /// Ask for the observability snapshot (latency histograms, counters
    /// — see `pscache::obs`). Answered like [`Request::Health`]: inline
    /// on the reactor's event thread, never queued behind workers, so a
    /// scraper still gets its numbers from a node whose worker pool is
    /// the very thing that is saturated.
    Metrics,
}

/// The health/readiness snapshot returned by [`Request::Health`]:
/// everything a load balancer needs to keep or drop a backend, cheap
/// enough to be answered without touching a lock or a worker thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HealthReport {
    /// 1 when the served cache is a read-only follower replica, else 0.
    pub role_follower: u64,
    /// Durable commit watermark (`pscache::Cache::commit_lsn`).
    pub commit_lsn: u64,
    /// Applied/visible watermark (`pscache::Cache::replica_lsn`).
    pub replica_lsn: u64,
    /// `commit_lsn - min(follower acked)` on a primary with followers —
    /// the end-to-end replication lag in records. `None` when no
    /// follower is attached: "nobody is replicating" must not be
    /// conflated with "fully caught up", or a `--max-lag` probe passes
    /// vacuously on an unreplicated primary. On the wire `None` is
    /// `u64::MAX` (an impossible lag: it exceeds every reachable LSN).
    pub repl_lag: Option<u64>,
    /// Connections currently being served.
    pub connections_active: u64,
    /// Requests decoded but not yet answered (queue depth).
    pub rpc_in_flight: u64,
    /// Read-interest parkings due to the pipeline cap.
    pub rpc_queue_stalls: u64,
    /// Workers currently executing a request.
    pub rpc_worker_busy: u64,
    /// Size of the request-execution worker pool.
    pub rpc_workers: u64,
    /// Requests rejected by admission control since the server started.
    pub rpc_requests_throttled: u64,
    /// Slow consumers torn down because their outbox exceeded the
    /// configured limit. A stalled subscriber used to disappear
    /// silently; now the teardown is countable.
    pub slow_consumer_evictions: u64,
    /// Automata unregistered — explicitly or by connection teardown.
    pub automaton_unregistrations: u64,
}

impl HealthReport {
    /// Worker-pool saturation: `rpc_worker_busy / rpc_workers`, in
    /// `[0.0, 1.0]`. `0.0` when the report carries no pool size (a
    /// blocking-transport server, whose per-connection threads cannot
    /// saturate a shared pool).
    ///
    /// The number to alert and size on: sustained values near `1.0`
    /// mean every worker is executing a request and newly decoded
    /// requests are queueing (`rpc_in_flight` grows) — add workers
    /// (`CacheBuilder::rpc_workers`) or partitions. Sustained values
    /// near `0.0` with high throughput mean the pool is oversized for
    /// the load. See `docs/architecture.md` ("Sizing the worker pool")
    /// for guidance.
    #[must_use]
    pub fn worker_saturation(&self) -> f64 {
        if self.rpc_workers == 0 {
            0.0
        } else {
            self.rpc_worker_busy as f64 / self.rpc_workers as f64
        }
    }
}

/// Counters describing a running server; a snapshot is returned by
/// [`crate::server::RpcServer::stats`] and over the wire by
/// [`Request::ServerStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Connections accepted since the server started.
    pub connections_accepted: u64,
    /// Connections currently being served.
    pub connections_active: u64,
    /// Requests decoded and executed, across all connections.
    pub requests_served: u64,
    /// Automaton notifications routed to clients by the fan-out hub.
    pub notifications_routed: u64,
    /// Automata currently registered in the cache.
    pub automata_active: u64,
    /// Events enqueued to automaton mailboxes, across all automata.
    pub events_delivered: u64,
    /// Events fully processed by automaton behavior clauses.
    pub events_processed: u64,
    /// Events the predicate index proved irrelevant and never delivered.
    pub events_skipped_by_prefilter: u64,
    /// Events currently waiting in automaton mailboxes.
    pub automaton_queue_depth: u64,
    /// Largest per-automaton mailbox backlog ever observed.
    pub automaton_max_queue_depth: u64,
    /// Write-ahead-log records appended since the cache opened (0 when
    /// durability is off).
    pub wal_records: u64,
    /// Disk flushes issued by the commit path; `wal_records / wal_syncs`
    /// is the achieved group-commit size.
    pub wal_syncs: u64,
    /// Checkpoints completed (snapshot written, logs truncated).
    pub wal_checkpoints: u64,
    /// Records replayed from the log when the cache opened.
    pub wal_replayed: u64,
    /// 1 when the served cache is a read-only follower replica, else 0.
    pub repl_is_follower: u64,
    /// The cache's durable commit watermark (see
    /// `pscache::Cache::commit_lsn`).
    pub repl_commit_lsn: u64,
    /// The cache's applied/visible watermark (see
    /// `pscache::Cache::replica_lsn`).
    pub repl_replica_lsn: u64,
    /// Follower replicas currently subscribed to this cache's stream.
    pub repl_followers: u64,
    /// Lowest LSN acknowledged across subscribed followers;
    /// `repl_commit_lsn - repl_min_follower_acked_lsn` is the
    /// end-to-end replication lag in records.
    pub repl_min_follower_acked_lsn: u64,
    /// Requests decoded but not yet answered across all connections
    /// (reactor transport only; always 0 on the blocking transport,
    /// whose workers execute synchronously).
    pub rpc_in_flight: u64,
    /// Times the reactor parked a connection's read interest because
    /// its decoded-request queue hit the pipeline cap — persistent
    /// growth means clients pipeline deeper than the server's
    /// configured window.
    pub rpc_queue_stalls: u64,
    /// Workers currently executing a request. Pinned at the pool size
    /// while every worker is busy — the observable signature of the
    /// fixed-size `rpc_workers` pool saturating.
    pub rpc_worker_busy: u64,
    /// Requests rejected by per-client admission control (rate, byte or
    /// in-flight quota) since the server started.
    pub rpc_requests_throttled: u64,
}

/// A row of a result set on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRow {
    /// Projected values.
    pub values: Vec<Scalar>,
    /// Insertion timestamp of the underlying tuple.
    pub tstamp: u64,
}

/// The cache's reply to a [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum CacheReply {
    /// A table was created.
    Created,
    /// A tuple was inserted.
    Inserted {
        /// Whether an existing keyed row was replaced.
        replaced: bool,
        /// The insertion timestamp assigned by the cache.
        tstamp: u64,
    },
    /// A batch of tuples was inserted.
    InsertedBatch {
        /// One insertion timestamp per row, in row order.
        tstamps: Vec<u64>,
    },
    /// Rows returned by a `select`.
    Rows {
        /// Output column names.
        columns: Vec<String>,
        /// Result rows.
        rows: Vec<WireRow>,
    },
    /// An automaton was registered.
    Registered {
        /// Its id, used for later management.
        id: u64,
    },
    /// An automaton was unregistered.
    Unregistered,
    /// Reply to [`Request::Ping`].
    Pong,
    /// The request failed; the cache's error text.
    Error {
        /// Error message.
        message: String,
    },
    /// Reply to [`Request::ServerStats`].
    Stats {
        /// The server's counters at the time of the request.
        stats: ServerStats,
    },
    /// Reply to [`Request::Health`].
    Health {
        /// The health snapshot at the time of the request.
        report: HealthReport,
    },
    /// The request was rejected by per-client admission control before
    /// it reached a worker. The request was **not** applied; retrying
    /// after `retry_after_ms` is always safe.
    Throttled {
        /// Suggested client-side delay before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// A cluster redirect: this server does not own the written key's
    /// partition. Nothing was applied; re-sending the identical request
    /// to the named partition's primary is always safe (and is what
    /// the cluster client does automatically).
    NotMine {
        /// The partition that owns the rejected key.
        partition: u64,
    },
    /// Reply to [`Request::Metrics`].
    Metrics {
        /// The observability snapshot at the time of the request.
        snapshot: pscache::MetricsSnapshot,
    },
}

/// A message sent from the client to the server: a sequenced request,
/// optionally stamped with an idempotency token.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientMessage {
    /// Client-assigned sequence number echoed in the reply.
    pub seq: u64,
    /// Idempotency token `(client id, token seq)` on mutating requests:
    /// the server remembers the outcome keyed by this pair (durably, on
    /// a durable cache), so re-sending the same token after a lost reply
    /// returns the original outcome instead of applying the mutation
    /// twice. `None` on reads and on clients that opted out.
    pub token: Option<(u64, u64)>,
    /// Client-stamped 8-byte trace id, propagated with the request
    /// through the server's queue → worker → outbox stages; operations
    /// that cross the slow-op threshold surface it in the slow-op log,
    /// tying a server-side stall back to the client call that suffered
    /// it. `None` on clients that do not trace (the default).
    pub trace: Option<u64>,
    /// The request.
    pub request: Request,
}

/// A message sent from the server to the client: either the reply to a
/// sequenced request, or an asynchronous automaton notification (the result
/// of `send()` in a behavior clause).
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMessage {
    /// The reply to the request with the same `seq`.
    Reply {
        /// Sequence number of the request being answered.
        seq: u64,
        /// The reply payload.
        reply: CacheReply,
    },
    /// An asynchronous complex-event notification.
    Notification {
        /// The automaton that produced it.
        automaton: u64,
        /// The values passed to `send()`.
        values: Vec<Scalar>,
        /// Cache time of the notification.
        at: u64,
    },
}

impl ClientMessage {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u64(self.seq);
        match self.token {
            None => w.put_u8(0),
            Some((client_id, token_seq)) => {
                w.put_u8(1);
                w.put_u64(client_id);
                w.put_u64(token_seq);
            }
        }
        // The trace id mirrors the token flag: one presence byte, then
        // the 8-byte id — absent costs one byte on every request.
        match self.trace {
            None => w.put_u8(0),
            Some(id) => {
                w.put_u8(1);
                w.put_u64(id);
            }
        }
        match &self.request {
            Request::Execute { command } => {
                w.put_u8(0);
                w.put_str(command);
            }
            Request::Insert {
                table,
                values,
                upsert,
            } => {
                w.put_u8(1);
                w.put_str(table);
                w.put_scalars(values);
                w.put_bool(*upsert);
            }
            Request::RegisterAutomaton { source } => {
                w.put_u8(2);
                w.put_str(source);
            }
            Request::UnregisterAutomaton { id } => {
                w.put_u8(3);
                w.put_u64(*id);
            }
            Request::Ping => {
                w.put_u8(4);
            }
            Request::InsertBatch {
                table,
                rows,
                upsert,
            } => {
                w.put_u8(5);
                w.put_str(table);
                w.put_rows(rows);
                w.put_bool(*upsert);
            }
            Request::ServerStats => {
                w.put_u8(6);
            }
            Request::Health => {
                w.put_u8(7);
            }
            Request::Metrics => {
                w.put_u8(8);
            }
        }
        w.finish().to_vec()
    }

    /// Decode from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] on malformed input.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = WireReader::new(bytes);
        let seq = r.get_u64()?;
        let token = match r.get_u8()? {
            0 => None,
            1 => Some((r.get_u64()?, r.get_u64()?)),
            other => {
                return Err(Error::protocol(format!(
                    "unknown idempotency-token flag {other}"
                )))
            }
        };
        let trace = match r.get_u8()? {
            0 => None,
            1 => Some(r.get_u64()?),
            other => return Err(Error::protocol(format!("unknown trace-id flag {other}"))),
        };
        let request = match r.get_u8()? {
            0 => Request::Execute {
                command: r.get_str()?,
            },
            1 => Request::Insert {
                table: r.get_str()?,
                values: r.get_scalars()?,
                upsert: r.get_bool()?,
            },
            2 => Request::RegisterAutomaton {
                source: r.get_str()?,
            },
            3 => Request::UnregisterAutomaton { id: r.get_u64()? },
            4 => Request::Ping,
            5 => Request::InsertBatch {
                table: r.get_str()?,
                rows: r.get_rows()?,
                upsert: r.get_bool()?,
            },
            6 => Request::ServerStats,
            7 => Request::Health,
            8 => Request::Metrics,
            other => return Err(Error::protocol(format!("unknown request tag {other}"))),
        };
        Ok(ClientMessage {
            seq,
            token,
            trace,
            request,
        })
    }
}

impl ServerMessage {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            ServerMessage::Reply { seq, reply } => {
                w.put_u8(0);
                w.put_u64(*seq);
                encode_reply(&mut w, reply);
            }
            ServerMessage::Notification {
                automaton,
                values,
                at,
            } => {
                w.put_u8(1);
                w.put_u64(*automaton);
                w.put_scalars(values);
                w.put_u64(*at);
            }
        }
        w.finish().to_vec()
    }

    /// Decode from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] on malformed input.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = WireReader::new(bytes);
        match r.get_u8()? {
            0 => {
                let seq = r.get_u64()?;
                let reply = decode_reply(&mut r)?;
                Ok(ServerMessage::Reply { seq, reply })
            }
            1 => Ok(ServerMessage::Notification {
                automaton: r.get_u64()?,
                values: r.get_scalars()?,
                at: r.get_u64()?,
            }),
            other => Err(Error::protocol(format!(
                "unknown server message tag {other}"
            ))),
        }
    }
}

fn encode_reply(w: &mut WireWriter, reply: &CacheReply) {
    match reply {
        CacheReply::Created => w.put_u8(0),
        CacheReply::Inserted { replaced, tstamp } => {
            w.put_u8(1);
            w.put_bool(*replaced);
            w.put_u64(*tstamp);
        }
        CacheReply::Rows { columns, rows } => {
            w.put_u8(2);
            w.put_strs(columns);
            w.put_u32(rows.len() as u32);
            for row in rows {
                w.put_scalars(&row.values);
                w.put_u64(row.tstamp);
            }
        }
        CacheReply::Registered { id } => {
            w.put_u8(3);
            w.put_u64(*id);
        }
        CacheReply::Unregistered => w.put_u8(4),
        CacheReply::Pong => w.put_u8(5),
        CacheReply::Error { message } => {
            w.put_u8(6);
            w.put_str(message);
        }
        CacheReply::InsertedBatch { tstamps } => {
            w.put_u8(7);
            w.put_u64s(tstamps);
        }
        CacheReply::Stats { stats } => {
            w.put_u8(8);
            for field in stats_fields(stats) {
                w.put_u64(field);
            }
        }
        CacheReply::Health { report } => {
            w.put_u8(9);
            for field in health_fields(report) {
                w.put_u64(field);
            }
        }
        CacheReply::Throttled { retry_after_ms } => {
            w.put_u8(10);
            w.put_u64(*retry_after_ms);
        }
        CacheReply::NotMine { partition } => {
            w.put_u8(11);
            w.put_u64(*partition);
        }
        CacheReply::Metrics { snapshot } => {
            w.put_u8(12);
            let mut blob = Vec::new();
            snapshot.encode_into(&mut blob);
            w.put_blob(&blob);
        }
    }
}

/// The wire order of [`HealthReport`] fields (shared by encode/decode).
fn health_fields(h: &HealthReport) -> [u64; 12] {
    [
        h.role_follower,
        h.commit_lsn,
        h.replica_lsn,
        h.repl_lag.unwrap_or(u64::MAX),
        h.connections_active,
        h.rpc_in_flight,
        h.rpc_queue_stalls,
        h.rpc_worker_busy,
        h.rpc_workers,
        h.rpc_requests_throttled,
        h.slow_consumer_evictions,
        h.automaton_unregistrations,
    ]
}

/// The wire order of [`ServerStats`] fields (shared by encode/decode).
fn stats_fields(s: &ServerStats) -> [u64; 23] {
    [
        s.connections_accepted,
        s.connections_active,
        s.requests_served,
        s.notifications_routed,
        s.automata_active,
        s.events_delivered,
        s.events_processed,
        s.events_skipped_by_prefilter,
        s.automaton_queue_depth,
        s.automaton_max_queue_depth,
        s.wal_records,
        s.wal_syncs,
        s.wal_checkpoints,
        s.wal_replayed,
        s.repl_is_follower,
        s.repl_commit_lsn,
        s.repl_replica_lsn,
        s.repl_followers,
        s.repl_min_follower_acked_lsn,
        s.rpc_in_flight,
        s.rpc_queue_stalls,
        s.rpc_worker_busy,
        s.rpc_requests_throttled,
    ]
}

fn decode_reply(r: &mut WireReader<'_>) -> Result<CacheReply> {
    Ok(match r.get_u8()? {
        0 => CacheReply::Created,
        1 => CacheReply::Inserted {
            replaced: r.get_bool()?,
            tstamp: r.get_u64()?,
        },
        2 => {
            let columns = r.get_strs()?;
            let n = r.get_u32()? as usize;
            if n > 10_000_000 {
                return Err(Error::protocol("unreasonably large result set"));
            }
            let mut rows = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                rows.push(WireRow {
                    values: r.get_scalars()?,
                    tstamp: r.get_u64()?,
                });
            }
            CacheReply::Rows { columns, rows }
        }
        3 => CacheReply::Registered { id: r.get_u64()? },
        4 => CacheReply::Unregistered,
        5 => CacheReply::Pong,
        6 => CacheReply::Error {
            message: r.get_str()?,
        },
        7 => CacheReply::InsertedBatch {
            tstamps: r.get_u64s()?,
        },
        8 => CacheReply::Stats {
            stats: ServerStats {
                connections_accepted: r.get_u64()?,
                connections_active: r.get_u64()?,
                requests_served: r.get_u64()?,
                notifications_routed: r.get_u64()?,
                automata_active: r.get_u64()?,
                events_delivered: r.get_u64()?,
                events_processed: r.get_u64()?,
                events_skipped_by_prefilter: r.get_u64()?,
                automaton_queue_depth: r.get_u64()?,
                automaton_max_queue_depth: r.get_u64()?,
                wal_records: r.get_u64()?,
                wal_syncs: r.get_u64()?,
                wal_checkpoints: r.get_u64()?,
                wal_replayed: r.get_u64()?,
                repl_is_follower: r.get_u64()?,
                repl_commit_lsn: r.get_u64()?,
                repl_replica_lsn: r.get_u64()?,
                repl_followers: r.get_u64()?,
                repl_min_follower_acked_lsn: r.get_u64()?,
                rpc_in_flight: r.get_u64()?,
                rpc_queue_stalls: r.get_u64()?,
                rpc_worker_busy: r.get_u64()?,
                rpc_requests_throttled: r.get_u64()?,
            },
        },
        9 => CacheReply::Health {
            report: HealthReport {
                role_follower: r.get_u64()?,
                commit_lsn: r.get_u64()?,
                replica_lsn: r.get_u64()?,
                repl_lag: match r.get_u64()? {
                    u64::MAX => None,
                    lag => Some(lag),
                },
                connections_active: r.get_u64()?,
                rpc_in_flight: r.get_u64()?,
                rpc_queue_stalls: r.get_u64()?,
                rpc_worker_busy: r.get_u64()?,
                rpc_workers: r.get_u64()?,
                rpc_requests_throttled: r.get_u64()?,
                slow_consumer_evictions: r.get_u64()?,
                automaton_unregistrations: r.get_u64()?,
            },
        },
        10 => CacheReply::Throttled {
            retry_after_ms: r.get_u64()?,
        },
        11 => CacheReply::NotMine {
            partition: r.get_u64()?,
        },
        12 => {
            let blob = r.get_blob()?;
            let mut pos = 0;
            let snapshot = pscache::MetricsSnapshot::decode_from(blob, &mut pos)
                .filter(|_| pos == blob.len())
                .ok_or_else(|| Error::protocol("malformed metrics snapshot"))?;
            CacheReply::Metrics { snapshot }
        }
        other => return Err(Error::protocol(format!("unknown reply tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_client(msg: ClientMessage) {
        let bytes = msg.encode();
        assert_eq!(ClientMessage::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn worker_saturation_is_busy_over_pool() {
        let report = HealthReport {
            rpc_worker_busy: 3,
            rpc_workers: 4,
            ..HealthReport::default()
        };
        assert!((report.worker_saturation() - 0.75).abs() < f64::EPSILON);
        // A blocking-transport server reports no pool; that is "not
        // saturated", not a division by zero.
        assert_eq!(HealthReport::default().worker_saturation(), 0.0);
    }

    fn round_trip_server(msg: ServerMessage) {
        let bytes = msg.encode();
        assert_eq!(ServerMessage::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn client_messages_round_trip() {
        round_trip_client(ClientMessage {
            seq: 1,
            token: None,
            trace: None,
            request: Request::Execute {
                command: "select * from Flows".into(),
            },
        });
        round_trip_client(ClientMessage {
            seq: 2,
            token: None,
            trace: None,
            request: Request::Insert {
                table: "Flows".into(),
                values: vec![Scalar::Str("a".into()), Scalar::Int(5)],
                upsert: true,
            },
        });
        round_trip_client(ClientMessage {
            seq: 3,
            token: None,
            trace: None,
            request: Request::RegisterAutomaton {
                source: "subscribe t to Timer; behavior { }".into(),
            },
        });
        round_trip_client(ClientMessage {
            seq: 4,
            token: None,
            trace: None,
            request: Request::UnregisterAutomaton { id: 9 },
        });
        round_trip_client(ClientMessage {
            seq: 5,
            token: None,
            trace: None,
            request: Request::Ping,
        });
        round_trip_client(ClientMessage {
            seq: 7,
            token: None,
            trace: None,
            request: Request::ServerStats,
        });
        round_trip_client(ClientMessage {
            seq: 6,
            token: None,
            trace: None,
            request: Request::InsertBatch {
                table: "Flows".into(),
                rows: vec![
                    vec![Scalar::Str("a".into()), Scalar::Int(1)],
                    vec![Scalar::Str("b".into()), Scalar::Int(2)],
                    vec![],
                ],
                upsert: false,
            },
        });
    }

    #[test]
    fn server_messages_round_trip() {
        round_trip_server(ServerMessage::Reply {
            seq: 1,
            reply: CacheReply::Created,
        });
        round_trip_server(ServerMessage::Reply {
            seq: 2,
            reply: CacheReply::Inserted {
                replaced: true,
                tstamp: 77,
            },
        });
        round_trip_server(ServerMessage::Reply {
            seq: 3,
            reply: CacheReply::Rows {
                columns: vec!["a".into(), "b".into()],
                rows: vec![
                    WireRow {
                        values: vec![Scalar::Int(1), Scalar::Real(2.0)],
                        tstamp: 10,
                    },
                    WireRow {
                        values: vec![Scalar::Int(3), Scalar::Real(4.0)],
                        tstamp: 11,
                    },
                ],
            },
        });
        round_trip_server(ServerMessage::Reply {
            seq: 4,
            reply: CacheReply::Registered { id: 12 },
        });
        round_trip_server(ServerMessage::Reply {
            seq: 5,
            reply: CacheReply::Error {
                message: "no such table `X`".into(),
            },
        });
        round_trip_server(ServerMessage::Notification {
            automaton: 3,
            values: vec![Scalar::Str("limit exceeded".into())],
            at: 123,
        });
        round_trip_server(ServerMessage::Reply {
            seq: 6,
            reply: CacheReply::Unregistered,
        });
        round_trip_server(ServerMessage::Reply {
            seq: 7,
            reply: CacheReply::Pong,
        });
        round_trip_server(ServerMessage::Reply {
            seq: 8,
            reply: CacheReply::InsertedBatch {
                tstamps: vec![3, 4, 5],
            },
        });
        round_trip_server(ServerMessage::Reply {
            seq: 9,
            reply: CacheReply::Stats {
                stats: ServerStats {
                    connections_accepted: 1,
                    connections_active: 2,
                    requests_served: 3,
                    notifications_routed: 4,
                    automata_active: 5,
                    events_delivered: 6,
                    events_processed: 7,
                    events_skipped_by_prefilter: 8,
                    automaton_queue_depth: 9,
                    automaton_max_queue_depth: 10,
                    wal_records: 11,
                    wal_syncs: 12,
                    wal_checkpoints: 13,
                    wal_replayed: 14,
                    repl_is_follower: 1,
                    repl_commit_lsn: 15,
                    repl_replica_lsn: 16,
                    repl_followers: 17,
                    repl_min_follower_acked_lsn: 18,
                    rpc_in_flight: 19,
                    rpc_queue_stalls: 20,
                    rpc_worker_busy: 21,
                    rpc_requests_throttled: 22,
                },
            },
        });
        round_trip_server(ServerMessage::Reply {
            seq: 10,
            reply: CacheReply::Health {
                report: HealthReport {
                    role_follower: 1,
                    commit_lsn: 2,
                    replica_lsn: 3,
                    repl_lag: Some(4),
                    connections_active: 5,
                    rpc_in_flight: 6,
                    rpc_queue_stalls: 7,
                    rpc_worker_busy: 8,
                    rpc_workers: 9,
                    rpc_requests_throttled: 10,
                    slow_consumer_evictions: 11,
                    automaton_unregistrations: 12,
                },
            },
        });
        // No follower attached: the lag is absent, not zero, and must
        // survive the wire as such.
        round_trip_server(ServerMessage::Reply {
            seq: 12,
            reply: CacheReply::Health {
                report: HealthReport {
                    repl_lag: None,
                    ..HealthReport::default()
                },
            },
        });
        round_trip_server(ServerMessage::Reply {
            seq: 11,
            reply: CacheReply::Throttled {
                retry_after_ms: 250,
            },
        });
        round_trip_server(ServerMessage::Reply {
            seq: 13,
            reply: CacheReply::NotMine { partition: 3 },
        });
    }

    #[test]
    fn tokened_and_health_client_messages_round_trip() {
        round_trip_client(ClientMessage {
            seq: 8,
            token: Some((0xDEAD_BEEF, 42)),
            trace: None,
            request: Request::Insert {
                table: "Flows".into(),
                values: vec![Scalar::Int(1)],
                upsert: false,
            },
        });
        round_trip_client(ClientMessage {
            seq: 9,
            token: None,
            trace: None,
            request: Request::Health,
        });
        // The token flag byte only admits 0 and 1.
        let mut bytes = ClientMessage {
            seq: 1,
            token: None,
            trace: None,
            request: Request::Ping,
        }
        .encode();
        bytes[8] = 2;
        assert!(ClientMessage::decode(&bytes).is_err());
    }

    #[test]
    fn traced_and_metrics_messages_round_trip() {
        round_trip_client(ClientMessage {
            seq: 14,
            token: None,
            trace: Some(0xFEED_F00D),
            request: Request::Ping,
        });
        // Trace ids compose with idempotency tokens: both flags on the
        // same message.
        round_trip_client(ClientMessage {
            seq: 15,
            token: Some((7, 8)),
            trace: Some(u64::MAX),
            request: Request::Insert {
                table: "Flows".into(),
                values: vec![Scalar::Int(1)],
                upsert: true,
            },
        });
        round_trip_client(ClientMessage {
            seq: 16,
            token: None,
            trace: None,
            request: Request::Metrics,
        });
        // The trace flag byte (after seq and an absent token flag) only
        // admits 0 and 1.
        let mut bytes = ClientMessage {
            seq: 1,
            token: None,
            trace: None,
            request: Request::Ping,
        }
        .encode();
        bytes[9] = 2;
        assert!(ClientMessage::decode(&bytes).is_err());

        // A metrics reply carries a busy snapshot losslessly.
        let obs = pscache::Obs::new(true, std::time::Duration::from_secs(1));
        obs.count_request(pscache::ReqKind::Insert);
        obs.count_request(pscache::ReqKind::Control);
        for i in 0..100 {
            obs.record_rpc(pscache::OpTrace {
                trace_id: i,
                kind: pscache::ReqKind::Insert,
                table: Some("Flows".into()),
                queue_ns: 50 * i,
                exec_ns: 1000 + i,
                flush_ns: 10,
            });
        }
        obs.wal_fsync_ns.record(123_456);
        round_trip_server(ServerMessage::Reply {
            seq: 17,
            reply: CacheReply::Metrics {
                snapshot: obs.snapshot(),
            },
        });
        // An empty snapshot (idle node) round-trips too.
        let idle = pscache::Obs::new(true, std::time::Duration::from_secs(1));
        round_trip_server(ServerMessage::Reply {
            seq: 18,
            reply: CacheReply::Metrics {
                snapshot: idle.snapshot(),
            },
        });
    }

    #[test]
    fn malformed_bytes_are_protocol_errors() {
        assert!(ClientMessage::decode(&[]).is_err());
        assert!(ClientMessage::decode(&[0, 0, 0, 0, 0, 0, 0, 0, 99]).is_err());
        assert!(ServerMessage::decode(&[42]).is_err());
        assert!(ServerMessage::decode(&[]).is_err());
    }
}
