//! Differential protocol suite: the event-driven `ReactorServer` must be
//! observationally identical to the thread-per-connection `RpcServer`,
//! which serves as its oracle.
//!
//! A property test drives both servers with the same randomly generated
//! script of interleaved, pipelined requests from two clients, then
//! compares (a) the **re-encoded reply bytes** of every request, in
//! issue order, and (b) the **notification streams** each client
//! received, grouped by automaton id. Any divergence — a different
//! error message, a reordered reply, a lost or duplicated notification
//! — fails the property.
//!
//! Determinism notes: both caches run on a manual clock (identical
//! timestamps), pipelining is only allowed between consecutive requests
//! of the *same* client (per-connection ordering is guaranteed; cross-
//! connection ordering is not, so the driver barriers on client
//! switches), and unregistration quiesces first so no notification is
//! racing the route teardown.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use gapl::event::Scalar;
use psrpc::client::{CacheClient, PendingReply};
use psrpc::message::{CacheReply, Request, ServerMessage};
use psrpc::reactor::ReactorServer;
use psrpc::server::RpcServer;
use unipubsub::prelude::*;

const CLIENTS: usize = 2;
const AUTOMATON: &str = "subscribe t to T; behavior { send(t.v); }";

/// One server under test, behind a common interface.
enum Server {
    Blocking(RpcServer),
    Reactor(ReactorServer),
}

impl Server {
    fn start(kind: &str, cache: pscache::Cache) -> Server {
        match kind {
            "blocking" => Server::Blocking(RpcServer::bind(cache, "127.0.0.1:0").unwrap()),
            _ => Server::Reactor(ReactorServer::bind(cache, "127.0.0.1:0").unwrap()),
        }
    }

    fn addr(&self) -> std::net::SocketAddr {
        match self {
            Server::Blocking(s) => s.local_addr(),
            Server::Reactor(s) => s.local_addr(),
        }
    }

    fn shutdown(self) {
        match self {
            Server::Blocking(s) => s.shutdown(),
            Server::Reactor(s) => s.shutdown(),
        }
    }
}

/// Reduce a resolved request to comparable bytes: the exact wire
/// encoding of the server's reply, with the correlation id normalised
/// to zero (ids are client-side counters, not semantics).
fn outcome_bytes(outcome: Result<CacheReply, psrpc::Error>) -> Vec<u8> {
    let reply = match outcome {
        Ok(reply) => reply,
        Err(psrpc::Error::Remote { message }) => CacheReply::Error { message },
        Err(other) => panic!("transport failure during a differential run: {other}"),
    };
    ServerMessage::Reply { seq: 0, reply }.encode()
}

/// Per-client notification history, grouped by automaton id. Within one
/// automaton the order is the insertion order (deterministic); across
/// automata the interleaving is executor scheduling, so it is not
/// compared.
type NoteMap = BTreeMap<u64, Vec<(Vec<Scalar>, u64)>>;

struct Driver {
    cache: pscache::Cache,
    clients: Vec<CacheClient>,
    pendings: Vec<PendingReply>,
    pending_client: Option<usize>,
    replies: Vec<Vec<u8>>,
    /// Automaton ids registered per client, oldest first.
    registered: Vec<Vec<u64>>,
    /// Notifications each client must eventually receive.
    expected_notes: Vec<usize>,
    /// Notifications drained so far, per client.
    drained: Vec<Vec<psrpc::client::ClientNotification>>,
}

impl Driver {
    fn new(cache: pscache::Cache, addr: std::net::SocketAddr) -> Driver {
        Driver {
            cache,
            clients: (0..CLIENTS)
                .map(|_| CacheClient::connect(addr).unwrap())
                .collect(),
            pendings: Vec::new(),
            pending_client: None,
            replies: Vec::new(),
            registered: vec![Vec::new(); CLIENTS],
            expected_notes: vec![0; CLIENTS],
            drained: vec![Vec::new(); CLIENTS],
        }
    }

    /// Resolve every outstanding pipelined request, recording replies in
    /// issue order.
    fn flush(&mut self) {
        for pending in self.pendings.drain(..) {
            self.replies.push(outcome_bytes(pending.wait()));
        }
        self.pending_client = None;
    }

    /// Issue a request pipelined; barrier when the issuing client changes.
    fn issue(&mut self, client: usize, request: Request) {
        if self.pending_client != Some(client) {
            self.flush();
        }
        self.pendings
            .push(self.clients[client].begin_request(request).unwrap());
        self.pending_client = Some(client);
    }

    /// Issue a request synchronously (flushes the pipeline first);
    /// returns the reply when the server accepted the request.
    fn sync(&mut self, client: usize, request: Request) -> Option<CacheReply> {
        self.flush();
        let outcome = self.clients[client].begin_request(request).unwrap().wait();
        let ok = outcome.as_ref().ok().cloned();
        self.replies.push(outcome_bytes(outcome));
        ok
    }

    /// Every client drains its notification backlog to the expected count.
    fn settle_notifications(&mut self) {
        self.flush();
        assert!(self.cache.quiesce(Duration::from_secs(10)));
        for c in 0..CLIENTS {
            let deadline = Instant::now() + Duration::from_secs(10);
            while self.drained[c].len() < self.expected_notes[c] && Instant::now() < deadline {
                if let Ok(note) = self.clients[c]
                    .notifications()
                    .recv_timeout(Duration::from_millis(20))
                {
                    self.drained[c].push(note);
                }
            }
            assert_eq!(
                self.drained[c].len(),
                self.expected_notes[c],
                "client {c} did not receive its expected notifications"
            );
        }
    }

    /// Account one inserted row: every automaton fires once, notifying
    /// the client that registered it.
    fn account_row(&mut self) {
        for c in 0..CLIENTS {
            self.expected_notes[c] += self.registered[c].len();
        }
    }

    fn apply(&mut self, op: &(usize, usize, i64)) {
        let (kind, client, v) = *op;
        match kind {
            0 => {
                self.issue(
                    client,
                    Request::Insert {
                        table: "T".into(),
                        values: vec![Scalar::Int(v)],
                        upsert: false,
                    },
                );
                self.account_row();
            }
            1 => self.issue(
                client,
                Request::Insert {
                    table: "P".into(),
                    values: vec![
                        Scalar::from(format!("k{}", v.rem_euclid(8))),
                        Scalar::Int(v),
                    ],
                    upsert: true,
                },
            ),
            2 => self.issue(
                client,
                Request::Execute {
                    command: "select * from T".into(),
                },
            ),
            3 => self.issue(
                client,
                Request::Execute {
                    command: format!("select * from T where v > {v}"),
                },
            ),
            4 => self.issue(client, Request::Ping),
            5 => self.issue(
                client,
                Request::Execute {
                    command: "select * from Missing".into(),
                },
            ),
            6 => {
                // Registration must be synchronous: later bookkeeping
                // needs the id, and the registration point relative to
                // pipelined inserts must be deterministic.
                if let Some(CacheReply::Registered { id }) = self.sync(
                    client,
                    Request::RegisterAutomaton {
                        source: AUTOMATON.into(),
                    },
                ) {
                    self.registered[client].push(id);
                }
            }
            7 => {
                // Unregister the client's oldest automaton — after
                // settling, so no notification races the route teardown.
                if self.registered[client].is_empty() {
                    self.issue(client, Request::Ping);
                } else {
                    self.settle_notifications();
                    let id = self.registered[client].remove(0);
                    let _ = self.sync(client, Request::UnregisterAutomaton { id });
                }
            }
            _ => {
                self.issue(
                    client,
                    Request::InsertBatch {
                        table: "T".into(),
                        rows: (0..3).map(|i| vec![Scalar::Int(v + i)]).collect(),
                        upsert: false,
                    },
                );
                for _ in 0..3 {
                    self.account_row();
                }
            }
        }
    }

    fn finish(mut self) -> (Vec<Vec<u8>>, Vec<NoteMap>) {
        self.settle_notifications();
        let notes = self
            .drained
            .iter()
            .map(|stream| {
                let mut map = NoteMap::new();
                for n in stream {
                    map.entry(n.automaton)
                        .or_default()
                        .push((n.values.clone(), n.at));
                }
                map
            })
            .collect();
        (self.replies, notes)
    }
}

/// Run one script against one server flavour; returns the comparable
/// observation: replies in issue order + notification streams.
fn run_script(kind: &str, ops: &[(usize, usize, i64)]) -> (Vec<Vec<u8>>, Vec<NoteMap>) {
    let cache = CacheBuilder::new().manual_clock().build();
    cache.execute("create table T (v integer)").unwrap();
    cache
        .execute("create persistenttable P (k varchar(8) primary key, v integer)")
        .unwrap();
    let server = Server::start(kind, cache.clone());
    let mut driver = Driver::new(cache, server.addr());
    for op in ops {
        driver.apply(op);
    }
    let observation = driver.finish();
    server.shutdown();
    observation
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The reactor and the blocking oracle produce byte-identical reply
    /// streams and identical per-automaton notification streams for any
    /// interleaved, pipelined script.
    #[test]
    fn reactor_is_byte_equivalent_to_the_blocking_server(
        ops in proptest::collection::vec((0usize..9, 0usize..CLIENTS, -50i64..50), 1..25),
    ) {
        let (oracle_replies, oracle_notes) = run_script("blocking", &ops);
        let (reactor_replies, reactor_notes) = run_script("reactor", &ops);
        prop_assert_eq!(oracle_replies.len(), reactor_replies.len());
        for (i, (a, b)) in oracle_replies.iter().zip(&reactor_replies).enumerate() {
            prop_assert_eq!(a, b, "reply {} diverged for ops {:?}", i, &ops);
        }
        prop_assert_eq!(&oracle_notes, &reactor_notes, "notifications diverged for ops {:?}", &ops);
    }
}

/// A fixed deep-pipeline script (beyond what the generator's short
/// scripts reach): one client keeps 64 requests in flight while the
/// other interleaves registrations, errors and batches.
#[test]
fn a_deep_pipelined_script_is_equivalent_on_both_servers() {
    let mut ops: Vec<(usize, usize, i64)> = Vec::new();
    ops.push((6, 1, 0)); // client 1 registers an automaton
    for i in 0..64 {
        ops.push((0, 0, i)); // 64 pipelined inserts from client 0
    }
    ops.push((5, 1, 0)); // an error reply
    ops.push((8, 1, 100)); // a batch
    ops.push((2, 0, 0)); // full scan
    ops.push((7, 1, 0)); // unregister
    ops.push((2, 1, 0)); // scan after teardown
    let oracle = run_script("blocking", &ops);
    let reactor = run_script("reactor", &ops);
    assert_eq!(oracle.0, reactor.0, "reply streams diverged");
    assert_eq!(oracle.1, reactor.1, "notification streams diverged");
}
