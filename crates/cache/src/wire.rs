//! A compact, dependency-free binary encoding shared by the RPC layer and
//! the write-ahead log.
//!
//! The encoding is deliberately simple: little-endian fixed-width integers,
//! length-prefixed strings and sequences, and one-byte tags for enums. It
//! is symmetric ([`WireWriter`] / [`WireReader`]) and every decoder checks
//! bounds, so malformed input produces an [`Error::Protocol`] rather than a
//! panic.
//!
//! The module lives in `pscache` (rather than `psrpc`, where it
//! originated) because the durability subsystem ([`crate::wal`]) encodes
//! its log records and snapshots with exactly the same primitives; the
//! RPC crate re-exports it unchanged, so a scalar on the wire and a
//! scalar in the log are byte-identical.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use gapl::event::Scalar;

use crate::error::{Error, Result};

/// Serialises values into a growable byte buffer.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: BytesMut,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        WireWriter {
            buf: BytesMut::with_capacity(128),
        }
    }

    /// Finish writing and return the encoded bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Append a single byte tag.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Append a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.put_i64_le(v);
    }

    /// Append an `f64` as its IEEE-754 bits.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_u64_le(v.to_bits());
    }

    /// Append a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.put_u8(u8::from(v));
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_u32(v.len() as u32);
        self.buf.put_slice(v.as_bytes());
    }

    /// Append a [`Scalar`] (tag + payload).
    pub fn put_scalar(&mut self, v: &Scalar) {
        match v {
            Scalar::Int(i) => {
                self.put_u8(0);
                self.put_i64(*i);
            }
            Scalar::Real(r) => {
                self.put_u8(1);
                self.put_f64(*r);
            }
            Scalar::Tstamp(t) => {
                self.put_u8(2);
                self.put_u64(*t);
            }
            Scalar::Bool(b) => {
                self.put_u8(3);
                self.put_bool(*b);
            }
            Scalar::Str(s) => {
                self.put_u8(4);
                self.put_str(s);
            }
        }
    }

    /// Append a length-prefixed sequence of scalars.
    pub fn put_scalars(&mut self, values: &[Scalar]) {
        self.put_u32(values.len() as u32);
        for v in values {
            self.put_scalar(v);
        }
    }

    /// Append a length-prefixed sequence of strings.
    pub fn put_strs(&mut self, values: &[String]) {
        self.put_u32(values.len() as u32);
        for v in values {
            self.put_str(v);
        }
    }

    /// Append a length-prefixed sequence of scalar rows (the payload of a
    /// batched insert).
    pub fn put_rows(&mut self, rows: &[Vec<Scalar>]) {
        self.put_u32(rows.len() as u32);
        for row in rows {
            self.put_scalars(row);
        }
    }

    /// Append a length-prefixed sequence of `u64`s.
    pub fn put_u64s(&mut self, values: &[u64]) {
        self.put_u32(values.len() as u32);
        for v in values {
            self.put_u64(*v);
        }
    }

    /// Append a length-prefixed opaque byte blob — the escape hatch for
    /// payloads that carry their own encoding (the observability
    /// snapshot of `CacheReply::Metrics`).
    pub fn put_blob(&mut self, bytes: &[u8]) {
        self.put_u32(bytes.len() as u32);
        self.buf.put_slice(bytes);
    }
}

/// Deserialises values from a byte slice, with bounds checking.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
}

impl<'a> WireReader<'a> {
    /// Wrap a byte slice for reading.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn need(&self, n: usize) -> Result<()> {
        if self.buf.len() < n {
            Err(Error::protocol(format!(
                "truncated message: needed {n} bytes, have {}",
                self.buf.len()
            )))
        } else {
            Ok(())
        }
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64> {
        self.need(8)?;
        Ok(self.buf.get_i64_le())
    }

    /// Read an `f64` from its IEEE-754 bits.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a bool.
    pub fn get_bool(&mut self) -> Result<bool> {
        Ok(self.get_u8()? != 0)
    }

    /// Read a length-prefixed UTF-8 string as a borrowed slice of the
    /// underlying buffer. Validation happens on the borrowed bytes, so
    /// malformed input is rejected *before* any allocation — and callers
    /// choose their own owned representation (`String`, `Arc<str>`)
    /// with exactly one copy.
    pub fn get_str_slice(&mut self) -> Result<&'a str> {
        let len = self.get_u32()? as usize;
        self.need(len)?;
        let (head, tail) = self.buf.split_at(len);
        let s =
            std::str::from_utf8(head).map_err(|_| Error::protocol("invalid UTF-8 in string"))?;
        self.buf = tail;
        Ok(s)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        self.get_str_slice().map(str::to_owned)
    }

    /// Read a length-prefixed opaque byte blob (see
    /// [`WireWriter::put_blob`]) as a borrowed slice.
    pub fn get_blob(&mut self) -> Result<&'a [u8]> {
        let len = self.get_u32()? as usize;
        self.need(len)?;
        let (head, tail) = self.buf.split_at(len);
        self.buf = tail;
        Ok(head)
    }

    /// Read a [`Scalar`]. String payloads are validated in place and
    /// copied once, straight into the shared `Arc<str>` representation.
    pub fn get_scalar(&mut self) -> Result<Scalar> {
        let tag = self.get_u8()?;
        Ok(match tag {
            0 => Scalar::Int(self.get_i64()?),
            1 => Scalar::Real(self.get_f64()?),
            2 => Scalar::Tstamp(self.get_u64()?),
            3 => Scalar::Bool(self.get_bool()?),
            4 => Scalar::Str(self.get_str_slice()?.into()),
            other => return Err(Error::protocol(format!("unknown scalar tag {other}"))),
        })
    }

    /// Read a length-prefixed sequence of scalars.
    pub fn get_scalars(&mut self) -> Result<Vec<Scalar>> {
        let len = self.get_u32()? as usize;
        if len > 1_000_000 {
            return Err(Error::protocol("unreasonably large scalar sequence"));
        }
        (0..len).map(|_| self.get_scalar()).collect()
    }

    /// Read a length-prefixed sequence of strings.
    pub fn get_strs(&mut self) -> Result<Vec<String>> {
        let len = self.get_u32()? as usize;
        if len > 1_000_000 {
            return Err(Error::protocol("unreasonably large string sequence"));
        }
        (0..len).map(|_| self.get_str()).collect()
    }

    /// Read a length-prefixed sequence of scalar rows. The row bound
    /// matches `psrpc::message::MAX_BATCH_ROWS`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] on malformed input or absurd lengths.
    pub fn get_rows(&mut self) -> Result<Vec<Vec<Scalar>>> {
        let len = self.get_u32()? as usize;
        if len > 1_000_000 {
            return Err(Error::protocol("unreasonably large row batch"));
        }
        (0..len).map(|_| self.get_scalars()).collect()
    }

    /// Read a length-prefixed sequence of `u64`s.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Protocol`] on malformed input or absurd lengths.
    pub fn get_u64s(&mut self) -> Result<Vec<u64>> {
        let len = self.get_u32()? as usize;
        if len > 1_000_000 {
            return Err(Error::protocol("unreasonably large u64 sequence"));
        }
        (0..len).map(|_| self.get_u64()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = WireWriter::new();
        w.put_u8(7);
        w.put_u32(1234);
        w.put_u64(u64::MAX);
        w.put_i64(-42);
        w.put_f64(3.25);
        w.put_bool(true);
        w.put_str("hello");
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 1234);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), 3.25);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "hello");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn scalars_round_trip() {
        let values = vec![
            Scalar::Int(-5),
            Scalar::Real(2.5),
            Scalar::Tstamp(123456789),
            Scalar::Bool(false),
            Scalar::Str("événement".into()),
        ];
        let mut w = WireWriter::new();
        w.put_scalars(&values);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_scalars().unwrap(), values);
    }

    #[test]
    fn truncated_and_malformed_input_is_rejected() {
        let mut r = WireReader::new(&[1, 2]);
        assert!(r.get_u32().is_err());
        // Unknown scalar tag.
        let mut r = WireReader::new(&[9]);
        assert!(r.get_scalar().is_err());
        // String length exceeding the buffer.
        let mut w = WireWriter::new();
        w.put_u32(100);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert!(r.get_str().is_err());
        // Invalid UTF-8.
        let mut w = WireWriter::new();
        w.put_u32(2);
        let mut bytes = w.finish().to_vec();
        bytes.extend_from_slice(&[0xff, 0xfe]);
        let mut r = WireReader::new(&bytes);
        assert!(r.get_str().is_err());
    }

    #[test]
    fn string_lists_round_trip() {
        let strs = vec!["a".to_string(), "".to_string(), "topic".to_string()];
        let mut w = WireWriter::new();
        w.put_strs(&strs);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_strs().unwrap(), strs);
    }
}
