#!/usr/bin/env sh
# Observability overhead snapshot: the pipelined-insert RPC workload
# and the 1%-selective read-path workload each run twice — once with
# the metrics layer on (histograms, per-stage RPC spans, wire trace
# ids) and once with `CacheBuilder::metrics(false)`. Writes
# BENCH_obs.json at the repository root and enforces two acceptance
# floors:
#
#   obs_rpc_ratio  >= 0.95   instrumented reactor insert throughput
#                            must stay within 5% of the kill-switched
#                            build — per-request spans and trace ids
#                            are priced on every single RPC
#   obs_read_ratio >= 0.95   instrumented in-process select throughput
#                            must stay within 5% — the select timer sits
#                            on the hottest read path the cache has
#
# Floors are enforced by the bench crate's `check_floor` binary: a
# missing file, missing key, or unparsable metric is a hard failure —
# a bench that did not produce its number must never count as a pass.
set -eu

cd "$(dirname "$0")/.."

echo "==> snapshot: BENCH_obs.json"
cargo run --release -p cep_bench --bin bench_obs

cargo run --release -q -p cep_bench --bin check_floor -- \
    BENCH_obs.json obs_rpc_ratio 0.95 \
    "instrumented/uninstrumented RPC insert throughput"
cargo run --release -q -p cep_bench --bin check_floor -- \
    BENCH_obs.json obs_read_ratio 0.95 \
    "instrumented/uninstrumented select throughput"

echo "obs snapshot complete"
