//! Cache initialisation from a configuration file.
//!
//! The paper notes that topics are created by applications *or during
//! cache initialization from a configuration file* (§4.2). The
//! configuration format here is deliberately plain text:
//!
//! * blank lines and lines starting with `#` are ignored;
//! * every other line is a SQL-ish command (`create table`, `create
//!   persistenttable`, `insert ...`) executed in order;
//! * a line of the form `automaton <name> <<<` starts an inline GAPL
//!   automaton which runs until a line containing only `>>>`; the
//!   automaton is compiled and registered when the block closes.
//!
//! ```text
//! # tables
//! create table Flows (srcip varchar(16), nbytes integer)
//! create persistenttable Allowances (ipaddr varchar(16) primary key, bytes integer)
//! insert into Allowances values ('192.168.1.10', 1000000)
//!
//! automaton big-flows <<<
//! subscribe f to Flows;
//! behavior { if (f.nbytes > 100000) send(f.srcip, f.nbytes); }
//! >>>
//! ```

use crossbeam::channel::Receiver;

use crate::cache::Cache;
use crate::error::{Error, Result};
use crate::runtime::{AutomatonId, Notification};

/// Default number of lock stripes in the sharded table store.
///
/// Sixteen stripes keep stripe-lock contention negligible up to roughly
/// that many concurrently inserting cores while costing only sixteen
/// (mostly empty) hash maps on an idle cache; deployments with wider
/// machines can raise it via
/// [`CacheBuilder::shard_count`](crate::CacheBuilder::shard_count).
pub const DEFAULT_SHARD_COUNT: usize = 16;

/// Default size of the automaton executor pool.
///
/// Four workers keep even a single-core container responsive (workers
/// spend most of their life parked on their mailbox) while letting
/// automaton execution overlap on multi-core machines. The old
/// one-thread-per-automaton behaviour does not exist any more — the
/// pool is the only execution model — but its concurrency can be
/// approximated by raising this via
/// [`CacheBuilder::automaton_workers`](crate::CacheBuilder::automaton_workers).
pub const DEFAULT_AUTOMATON_WORKERS: usize = 4;

/// Default size of the RPC reactor's request-execution pool
/// (`psrpc::reactor::ReactorServer`).
///
/// Like [`DEFAULT_AUTOMATON_WORKERS`], four workers cover a small
/// container while letting request execution overlap on multi-core
/// machines; the reactor thread itself never executes a request. Tune
/// via [`CacheBuilder::rpc_workers`](crate::CacheBuilder::rpc_workers).
pub const DEFAULT_RPC_WORKERS: usize = 4;

/// Default per-connection cap on decoded-but-unanswered RPC requests
/// before the reactor parks that connection's read interest.
///
/// 128 in-flight requests is deep enough to hide a LAN round-trip many
/// times over, while bounding the per-connection memory a hostile or
/// runaway pipelining client can pin.
pub const DEFAULT_RPC_MAX_PIPELINE: usize = 128;

/// Default number of logged records between automatic checkpoints when
/// durability is enabled.
///
/// A checkpoint rewrites every table into `snapshot.snap` and truncates
/// the per-shard logs, so it trades a burst of I/O for bounded recovery
/// time. Ten thousand records keeps the log tail short (replay is tens
/// of milliseconds) without snapshotting so often that checkpoint I/O
/// competes with the insert path; tune via
/// [`CacheBuilder::checkpoint_every`](crate::CacheBuilder::checkpoint_every)
/// (0 disables automatic checkpoints entirely).
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 10_000;

/// Default per-client capacity of the idempotency-token table (see
/// [`crate::protect`]).
///
/// A thousand remembered outcomes cover far more retries than any
/// reconnecting client keeps in flight (the client retries one logical
/// request at a time, and pipelines are bounded by
/// [`DEFAULT_RPC_MAX_PIPELINE`]) while costing a few tens of kilobytes
/// per client at worst; tune via
/// [`CacheBuilder::token_history`](crate::CacheBuilder::token_history).
pub const DEFAULT_TOKEN_HISTORY: usize = 1024;

/// Default RPC service-time threshold beyond which an operation is
/// captured in the slow-op log (see
/// [`CacheBuilder::slow_op_threshold`](crate::CacheBuilder::slow_op_threshold)).
///
/// A hundred milliseconds is far above any healthy in-memory operation
/// (group-committed durable inserts sit in single-digit milliseconds)
/// but well below a client-visible timeout, so the ring captures real
/// anomalies — a convoyed fsync, a starved worker pool — without
/// churning on normal traffic.
pub const DEFAULT_SLOW_OP_THRESHOLD: std::time::Duration = std::time::Duration::from_millis(100);

/// The outcome of loading a configuration.
#[derive(Debug)]
pub struct ConfigReport {
    /// Number of SQL commands executed.
    pub commands: usize,
    /// Automata registered from the configuration, by name, together with
    /// their notification channels.
    pub automata: Vec<(String, AutomatonId, Receiver<Notification>)>,
}

impl Cache {
    /// Execute a configuration (see the [module documentation](self) for
    /// the format).
    ///
    /// # Errors
    ///
    /// Returns the first error encountered: SQL errors, automaton compile
    /// errors, or a malformed automaton block. Commands executed before the
    /// error remain in effect.
    pub fn load_config(&self, config: &str) -> Result<ConfigReport> {
        let mut report = ConfigReport {
            commands: 0,
            automata: Vec::new(),
        };
        let mut lines = config.lines().enumerate().peekable();
        while let Some((line_no, raw)) = lines.next() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("automaton ") {
                let Some(name) = rest.strip_suffix("<<<").map(str::trim) else {
                    return Err(Error::sql(format!(
                        "line {}: automaton blocks have the form `automaton <name> <<<`",
                        line_no + 1
                    )));
                };
                if name.is_empty() {
                    return Err(Error::sql(format!(
                        "line {}: automaton blocks need a name",
                        line_no + 1
                    )));
                }
                let mut source = String::new();
                let mut closed = false;
                for (_, body_line) in lines.by_ref() {
                    if body_line.trim() == ">>>" {
                        closed = true;
                        break;
                    }
                    source.push_str(body_line);
                    source.push('\n');
                }
                if !closed {
                    return Err(Error::sql(format!(
                        "automaton `{name}` is missing its closing `>>>`"
                    )));
                }
                let (id, rx) = self.register_automaton(&source)?;
                report.automata.push((name.to_owned(), id, rx));
            } else {
                self.execute(line)?;
                report.commands += 1;
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheBuilder;
    use gapl::event::Scalar;
    use std::time::Duration;

    const CONFIG: &str = r#"
        # The home-network deployment of the paper.
        create table Flows (srcip varchar(16), nbytes integer)
        create persistenttable Allowances (ipaddr varchar(16) primary key, bytes integer)
        insert into Allowances values ('192.168.1.10', 1000)

        automaton big-flows <<<
        subscribe f to Flows;
        behavior { if (f.nbytes > 500) send(f.srcip, f.nbytes); }
        >>>
    "#;

    #[test]
    fn a_full_configuration_creates_tables_rows_and_automata() {
        let cache = CacheBuilder::new().build();
        let report = cache.load_config(CONFIG).unwrap();
        assert_eq!(report.commands, 3);
        assert_eq!(report.automata.len(), 1);
        assert_eq!(report.automata[0].0, "big-flows");
        assert!(cache.table_names().contains(&"Flows".to_string()));
        assert_eq!(cache.table_len("Allowances").unwrap(), 1);

        cache
            .insert(
                "Flows",
                vec![Scalar::Str("10.0.0.1".into()), Scalar::Int(900)],
            )
            .unwrap();
        assert!(cache.quiesce(Duration::from_secs(5)));
        assert_eq!(report.automata[0].2.try_iter().count(), 1);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let cache = CacheBuilder::new().build();
        let report = cache
            .load_config("# nothing but comments\n\n   \n# done\n")
            .unwrap();
        assert_eq!(report.commands, 0);
        assert!(report.automata.is_empty());
    }

    #[test]
    fn malformed_configurations_are_rejected_with_context() {
        let cache = CacheBuilder::new().build();
        // Bad SQL.
        assert!(cache.load_config("drop table Flows").is_err());
        // Automaton block without the marker.
        let err = cache.load_config("automaton broken\n").unwrap_err();
        assert!(err.to_string().contains("<<<"));
        // Automaton block without a name.
        assert!(cache.load_config("automaton <<<\n>>>\n").is_err());
        // Unterminated automaton block.
        let err = cache
            .load_config("create table T (v integer)\nautomaton x <<<\nsubscribe t to T;\n")
            .unwrap_err();
        assert!(err.to_string().contains(">>>"));
        // Automaton that does not compile: the prior commands still took
        // effect.
        let err = cache
            .load_config("automaton bad <<<\nsubscribe t to T; behavior { y = 1; }\n>>>\n")
            .unwrap_err();
        assert!(matches!(
            err,
            Error::AutomatonCompile { .. } | Error::NoSuchTable { .. }
        ));
        assert!(cache.table_names().contains(&"T".to_string()));
    }

    #[test]
    fn automata_from_config_can_be_unregistered_later() {
        let cache = CacheBuilder::new().build();
        cache.execute("create table T (v integer)").unwrap();
        let report = cache
            .load_config("automaton watcher <<<\nsubscribe t to T;\nbehavior { send(t.v); }\n>>>\n")
            .unwrap();
        let (_, id, _) = &report.automata[0];
        assert!(cache.automata().contains(id));
        cache.unregister_automaton(*id).unwrap();
        assert!(cache.automata().is_empty());
    }
}
