//! Criterion benchmarks of the cache's hot paths, companions to the stress
//! figures (Figs. 12–13) and the scaling figures (Figs. 9–10):
//!
//! * direct insert into an unwatched table (pure stream-database path),
//! * insert into a table with one subscribed automaton (publish path),
//! * batched vs single-tuple bulk loads (the `insert_batch` fast path),
//! * a full RPC round trip over the in-process transport (stress path),
//! * an ad hoc `select ... since τ` query (continuous-query path).
//!
//! The batched group also prints an explicit single/batch speedup ratio
//! for a 1000-tuple load, measured outside the sampling harness.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gapl::event::Scalar;
use pscache::{Cache, CacheBuilder, Query};
use psrpc::client::CacheClient;

const BATCH_ROWS: usize = 1000;

fn fresh_stream_cache() -> Cache {
    let cache = CacheBuilder::new().build();
    cache
        .execute("create table Flows (srcip varchar(16), nbytes integer) capacity 65536")
        .expect("create table");
    cache
}

fn row(i: usize) -> Vec<Scalar> {
    vec![Scalar::Str("10.0.0.1".into()), Scalar::Int(i as i64)]
}

fn bench_batched_inserts(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_insert_batched");

    let cache = fresh_stream_cache();
    group.bench_function(BenchmarkId::new("single_inserts", BATCH_ROWS), |b| {
        b.iter(|| {
            for i in 0..BATCH_ROWS {
                cache.insert("Flows", row(i)).expect("insert");
            }
        });
    });

    let cache = fresh_stream_cache();
    group.bench_function(BenchmarkId::new("insert_batch", BATCH_ROWS), |b| {
        b.iter(|| {
            cache
                .insert_batch("Flows", (0..BATCH_ROWS).map(row).collect())
                .expect("insert batch")
        });
    });
    group.finish();

    // Direct ratio measurements for the acceptance check: 1k single
    // inserts vs one 1k-row batch, several rounds, best of each — first
    // against the cache API, then over the RPC path the batching exists
    // for (one round trip instead of a thousand).
    let rounds = 30;
    let mut best_single = Duration::MAX;
    let mut best_batch = Duration::MAX;
    for _ in 0..rounds {
        let cache = fresh_stream_cache();
        let start = Instant::now();
        for i in 0..BATCH_ROWS {
            cache.insert("Flows", row(i)).expect("insert");
        }
        best_single = best_single.min(start.elapsed());

        let cache = fresh_stream_cache();
        let rows: Vec<Vec<Scalar>> = (0..BATCH_ROWS).map(row).collect();
        let start = Instant::now();
        cache.insert_batch("Flows", rows).expect("insert batch");
        best_batch = best_batch.min(start.elapsed());
    }
    println!(
        "cache_insert_batched/speedup(direct): {BATCH_ROWS} single inserts {best_single:?} vs \
         one batch {best_batch:?} -> {:.2}x",
        best_single.as_secs_f64() / best_batch.as_secs_f64()
    );

    let rounds = 10;
    let mut best_single = Duration::MAX;
    let mut best_batch = Duration::MAX;
    for _ in 0..rounds {
        let client = CacheClient::connect_inproc(fresh_stream_cache());
        let start = Instant::now();
        for i in 0..BATCH_ROWS {
            client.insert("Flows", row(i)).expect("insert");
        }
        best_single = best_single.min(start.elapsed());

        let client = CacheClient::connect_inproc(fresh_stream_cache());
        let rows: Vec<Vec<Scalar>> = (0..BATCH_ROWS).map(row).collect();
        let start = Instant::now();
        client.insert_batch("Flows", rows).expect("insert batch");
        best_batch = best_batch.min(start.elapsed());
    }
    println!(
        "cache_insert_batched/speedup(rpc): {BATCH_ROWS} single inserts {best_single:?} vs one \
         batched round trip {best_batch:?} -> {:.2}x",
        best_single.as_secs_f64() / best_batch.as_secs_f64()
    );
}

fn bench_insert_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_insert");

    // Pure insert, no subscribers.
    let cache = CacheBuilder::new().build();
    cache
        .execute("create table Flows (srcip varchar(16), nbytes integer) capacity 4096")
        .expect("create table");
    group.bench_function("unwatched_table", |b| {
        b.iter(|| {
            cache
                .insert(
                    "Flows",
                    vec![Scalar::Str("10.0.0.1".into()), Scalar::Int(1500)],
                )
                .expect("insert")
        });
    });

    // Insert with one automaton subscribed (the unification path).
    let watched = CacheBuilder::new().build();
    watched
        .execute("create table Flows (srcip varchar(16), nbytes integer) capacity 4096")
        .expect("create table");
    let (_id, _rx) = watched
        .register_automaton("subscribe f to Flows; int n; behavior { n = f.nbytes; }")
        .expect("register");
    group.bench_function("one_automaton_subscribed", |b| {
        b.iter(|| {
            watched
                .insert(
                    "Flows",
                    vec![Scalar::Str("10.0.0.1".into()), Scalar::Int(1500)],
                )
                .expect("insert")
        });
        watched.quiesce(Duration::from_secs(5));
    });
    group.finish();

    let mut group = c.benchmark_group("rpc_round_trip");
    for attrs in [1usize, 16] {
        let cache = CacheBuilder::new().build();
        let cols: Vec<String> = (0..attrs).map(|i| format!("a{i} integer")).collect();
        cache
            .execute(&format!("create table Test ({})", cols.join(", ")))
            .expect("create table");
        let client = CacheClient::connect_inproc(cache);
        let values: Vec<Scalar> = (0..attrs as i64).map(Scalar::Int).collect();
        group.bench_with_input(BenchmarkId::new("insert", attrs), &attrs, |b, _| {
            b.iter(|| client.insert("Test", values.clone()).expect("insert"));
        });
        group.bench_with_input(
            BenchmarkId::new("insert_batch_x100", attrs),
            &attrs,
            |b, _| {
                b.iter(|| {
                    client
                        .insert_batch("Test", (0..100).map(|_| values.clone()).collect())
                        .expect("insert batch")
                });
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("select_since");
    let cache = CacheBuilder::new().manual_clock().build();
    cache
        .execute("create table Readings (v integer) capacity 8192")
        .expect("create table");
    for i in 0..8192 {
        cache.manual_clock().unwrap().advance(1);
        cache
            .insert("Readings", vec![Scalar::Int(i)])
            .expect("insert");
    }
    let now = cache.now();
    group.bench_function("recent_window_of_8k_stream", |b| {
        b.iter(|| {
            cache
                .select(&Query::new("Readings").since(now - 100))
                .expect("select")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_insert_paths, bench_batched_inserts);
criterion_main!(benches);
