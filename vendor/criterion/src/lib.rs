//! Offline stand-in for the `criterion` crate.
//!
//! Implements the group/bench API surface used by this workspace's
//! benchmarks (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `criterion_group!`/`criterion_main!`)
//! on top of a small fixed-budget timing loop. There is no statistical
//! outlier analysis or HTML report; each benchmark prints its mean,
//! minimum and maximum time per iteration, which is enough to compare the
//! paper-reproduction code paths against one another.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimisation barrier.
pub use std::hint::black_box;

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    /// Samples collected per benchmark.
    sample_count: usize,
    /// Measurement budget per benchmark.
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_count: 20,
            budget: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_count: None,
            budget: None,
        }
    }

    /// Run a standalone benchmark (outside any group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkName, mut f: F) {
        let label = id.into_benchmark_name();
        run_benchmark(&label, self.sample_count, self.budget, &mut f);
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_count: Option<usize>,
    budget: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = Some(n.max(2));
        self
    }

    /// Override the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = Some(d);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkName,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_name());
        run_benchmark(
            &label,
            self.sample_count.unwrap_or(self.criterion.sample_count),
            self.budget.unwrap_or(self.criterion.budget),
            &mut f,
        );
        self
    }

    /// Run one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (prints nothing extra; provided for API parity).
    pub fn finish(&mut self) {}
}

/// A benchmark identifier, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter's display form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Things usable as a benchmark name (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkName {
    /// The display label.
    fn into_benchmark_name(self) -> String;
}

impl IntoBenchmarkName for &str {
    fn into_benchmark_name(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkName for String {
    fn into_benchmark_name(self) -> String {
        self
    }
}

impl IntoBenchmarkName for BenchmarkId {
    fn into_benchmark_name(self) -> String {
        self.label
    }
}

/// Timing handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it as many times as the measurement plan
    /// requires.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, budget: Duration, f: &mut F) {
    // Calibration: find an iteration count that makes one sample take
    // roughly budget/samples, starting from a single iteration.
    let per_sample = budget / samples as u32;
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= per_sample || iters >= 1 << 20 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            64
        } else {
            (per_sample.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 64) as u64
        };
        iters = iters.saturating_mul(grow);
    }

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    let min = per_iter_ns.first().copied().unwrap_or(0.0);
    let max = per_iter_ns.last().copied().unwrap_or(0.0);
    println!(
        "{label:<50} time: [{} {} {}]  ({} iters/sample, {} samples)",
        format_ns(min),
        format_ns(mean),
        format_ns(max),
        iters,
        samples,
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_and_sampling_terminate_quickly() {
        let start = Instant::now();
        let mut c = Criterion {
            sample_count: 5,
            budget: Duration::from_millis(20),
        };
        let mut group = c.benchmark_group("smoke");
        let mut counter = 0u64;
        group.bench_function("increment", |b| {
            b.iter(|| {
                counter = counter.wrapping_add(1);
                counter
            })
        });
        group.finish();
        assert!(counter > 0);
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn benchmark_ids_format_as_expected() {
        assert_eq!(
            BenchmarkId::new("insert", 16).into_benchmark_name(),
            "insert/16"
        );
        assert_eq!(BenchmarkId::from_parameter("x").into_benchmark_name(), "x");
    }
}
