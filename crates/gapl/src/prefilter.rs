//! Compile-time prefilters: the leading guard of a behavior clause,
//! extracted so the cache can decide *before dispatch* whether an event
//! can possibly affect an automaton.
//!
//! The paper's delivery model hands every tuple published on a topic to
//! every automaton subscribed to it; an automaton whose behavior starts
//! with `if (t.sym == 'IBM') { … }` then burns a VM activation just to
//! discover the event is not for it. The [`Prefilter`] captures exactly
//! that guard at compile time so the dispatch layer can skip the
//! delivery entirely.
//!
//! # Soundness
//!
//! A prefilter is extracted only when skipping a non-matching event is
//! *provably unobservable*:
//!
//! * the automaton has exactly **one subscription** — with several, a
//!   skipped event would leave the subscription variable pointing at an
//!   older tuple that a later event on another topic could observe;
//! * the whole behavior clause is a **single `if` with no `else`** — any
//!   statement outside the guard would have run unconditionally;
//! * the condition is built only from **fields of the subscription
//!   variable, literals, comparisons, `&&` and `||`** — it can touch no
//!   mutable state and has no side effects.
//!
//! Guard evaluation mirrors the VM exactly ([`Value::gapl_eq`] /
//! [`Value::gapl_cmp`], both of which compare numerics through `f64`),
//! and every situation the VM would turn into a runtime error (missing
//! attribute, string/number comparison, NaN ordering) makes the guard
//! *undecidable*, which conservatively delivers the event so the error
//! is still raised and recorded. The differential property suite in the
//! workspace root asserts byte-identical per-automaton output against
//! the naive all-subscribers fan-out.

use std::fmt;

use crate::ast::{AutomatonAst, BinOp, Block, Expr, Stmt, UnOp};
use crate::event::Tuple;
use crate::program::Const;
use crate::value::Value;

/// A comparison operator appearing in a guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl GuardOp {
    /// The operator with its operands swapped (`5 < t.v` ⇒ `t.v > 5`).
    pub fn flipped(self) -> GuardOp {
        match self {
            GuardOp::Eq => GuardOp::Eq,
            GuardOp::Ne => GuardOp::Ne,
            GuardOp::Lt => GuardOp::Gt,
            GuardOp::Le => GuardOp::Ge,
            GuardOp::Gt => GuardOp::Lt,
            GuardOp::Ge => GuardOp::Le,
        }
    }
}

impl fmt::Display for GuardOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GuardOp::Eq => "==",
            GuardOp::Ne => "!=",
            GuardOp::Lt => "<",
            GuardOp::Le => "<=",
            GuardOp::Gt => ">",
            GuardOp::Ge => ">=",
        })
    }
}

/// A pure predicate over the attributes of one event tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Guard {
    /// `event.field <op> literal`.
    Cmp {
        /// Attribute name on the event (may be the `tstamp` pseudo-field).
        field: String,
        /// Comparison operator.
        op: GuardOp,
        /// The literal compared against.
        value: Const,
    },
    /// Conjunction: every part must hold.
    All(Vec<Guard>),
    /// Disjunction: at least one part must hold.
    AnyOf(Vec<Guard>),
}

impl Guard {
    /// Tri-state evaluation against a tuple: `Some(b)` when the VM would
    /// compute the condition to `b` without error, `None` when the VM
    /// would raise a runtime error (undecidable — the caller must
    /// deliver). Mirrors the VM's non-short-circuiting `&&`/`||`.
    pub fn eval(&self, tuple: &Tuple) -> Option<bool> {
        match self {
            Guard::Cmp { field, op, value } => {
                let lhs = Value::from(tuple.field(field)?);
                let rhs = const_value(value);
                match op {
                    GuardOp::Eq => Some(lhs.gapl_eq(&rhs)),
                    GuardOp::Ne => Some(!lhs.gapl_eq(&rhs)),
                    GuardOp::Lt => lhs.gapl_cmp(&rhs).ok().map(std::cmp::Ordering::is_lt),
                    GuardOp::Le => lhs.gapl_cmp(&rhs).ok().map(std::cmp::Ordering::is_le),
                    GuardOp::Gt => lhs.gapl_cmp(&rhs).ok().map(std::cmp::Ordering::is_gt),
                    GuardOp::Ge => lhs.gapl_cmp(&rhs).ok().map(std::cmp::Ordering::is_ge),
                }
            }
            // The VM evaluates both operands of `&&`/`||` (no short
            // circuit), so an error in either side must force delivery
            // even when the other side already decides the outcome.
            Guard::All(parts) => parts
                .iter()
                .map(|g| g.eval(tuple))
                .try_fold(true, |acc, b| Some(acc && b?)),
            Guard::AnyOf(parts) => parts
                .iter()
                .map(|g| g.eval(tuple))
                .try_fold(false, |acc, b| Some(acc || b?)),
        }
    }

    /// Whether the event may affect the automaton: `true` when the guard
    /// holds **or is undecidable** (deliver), `false` only when the VM
    /// would provably evaluate the condition to false without error.
    pub fn matches(&self, tuple: &Tuple) -> bool {
        self.eval(tuple).unwrap_or(true)
    }
}

/// The literal as a VM value, for guard evaluation.
fn const_value(c: &Const) -> Value {
    match c {
        Const::Int(i) => Value::Int(*i),
        Const::Real(r) => Value::Real(*r),
        Const::Str(s) => Value::string(s.clone()),
        Const::Bool(b) => Value::Bool(*b),
    }
}

/// What the dispatch layer may assume about an automaton before
/// delivering an event of its (single) subscribed topic.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Prefilter {
    /// No guard could be extracted: the automaton may act on any event
    /// and must receive everything published on its topics.
    #[default]
    Opaque,
    /// Events for which the guard is provably false cannot affect the
    /// automaton and need not be delivered.
    Guard(Guard),
}

impl Prefilter {
    /// True when this prefilter carries an extracted guard.
    pub fn is_guard(&self) -> bool {
        matches!(self, Prefilter::Guard(_))
    }

    /// Whether an event must be delivered ([`Guard::matches`]; an opaque
    /// prefilter always delivers).
    pub fn matches(&self, tuple: &Tuple) -> bool {
        match self {
            Prefilter::Opaque => true,
            Prefilter::Guard(g) => g.matches(tuple),
        }
    }
}

/// Extract the leading guard of an automaton, when sound (see the
/// [module documentation](self) for the exact conditions).
pub fn extract(ast: &AutomatonAst) -> Prefilter {
    let [subscription] = ast.subscriptions.as_slice() else {
        return Prefilter::Opaque;
    };
    let Some(Stmt::If {
        cond,
        else_branch: None,
        ..
    }) = sole_stmt(&ast.behavior)
    else {
        return Prefilter::Opaque;
    };
    match guard_of(cond, &subscription.var) {
        Some(guard) => Prefilter::Guard(guard),
        None => Prefilter::Opaque,
    }
}

/// The single statement of a block, looking through nested one-statement
/// blocks (`behavior { { if (…) … } }`).
fn sole_stmt(block: &Block) -> Option<&Stmt> {
    match block.stmts.as_slice() {
        [Stmt::Block(inner)] => sole_stmt(inner),
        [stmt] => Some(stmt),
        _ => None,
    }
}

/// Lower a condition expression to a [`Guard`], or `None` when any part
/// of it is outside the pure `field ⋈ literal` fragment.
fn guard_of(expr: &Expr, var: &str) -> Option<Guard> {
    match expr {
        Expr::Binary {
            op: BinOp::And,
            lhs,
            rhs,
        } => Some(Guard::All(vec![guard_of(lhs, var)?, guard_of(rhs, var)?])),
        Expr::Binary {
            op: BinOp::Or,
            lhs,
            rhs,
        } => Some(Guard::AnyOf(vec![guard_of(lhs, var)?, guard_of(rhs, var)?])),
        Expr::Binary { op, lhs, rhs } => {
            let op = cmp_op(*op)?;
            if let (Some(field), Some(value)) = (field_of(lhs, var), literal_of(rhs)) {
                return Some(Guard::Cmp { field, op, value });
            }
            if let (Some(value), Some(field)) = (literal_of(lhs), field_of(rhs, var)) {
                return Some(Guard::Cmp {
                    field,
                    op: op.flipped(),
                    value,
                });
            }
            None
        }
        _ => None,
    }
}

fn cmp_op(op: BinOp) -> Option<GuardOp> {
    Some(match op {
        BinOp::Eq => GuardOp::Eq,
        BinOp::NotEq => GuardOp::Ne,
        BinOp::Lt => GuardOp::Lt,
        BinOp::Le => GuardOp::Le,
        BinOp::Gt => GuardOp::Gt,
        BinOp::Ge => GuardOp::Ge,
        _ => return None,
    })
}

fn field_of(expr: &Expr, var: &str) -> Option<String> {
    match expr {
        Expr::Field { object, field } if object == var => Some(field.clone()),
        _ => None,
    }
}

fn literal_of(expr: &Expr) -> Option<Const> {
    match expr {
        Expr::Int(i) => Some(Const::Int(*i)),
        Expr::Real(r) => Some(Const::Real(*r)),
        Expr::Str(s) => Some(Const::Str(s.clone())),
        Expr::Bool(b) => Some(Const::Bool(*b)),
        Expr::Unary {
            op: UnOp::Neg,
            expr,
        } => match expr.as_ref() {
            Expr::Int(i) => Some(Const::Int(i.checked_neg()?)),
            Expr::Real(r) => Some(Const::Real(-*r)),
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AttrType, Scalar, Schema};
    use std::sync::Arc;

    fn prefilter(src: &str) -> Prefilter {
        crate::compile(src).unwrap().prefilter().clone()
    }

    fn tick_tuple(sym: &str, price: i64) -> Tuple {
        let schema = Arc::new(
            Schema::new(
                "Ticks",
                vec![("sym", AttrType::Str), ("price", AttrType::Int)],
            )
            .unwrap(),
        );
        Tuple::new(schema, vec![Scalar::Str(sym.into()), Scalar::Int(price)], 7).unwrap()
    }

    #[test]
    fn equality_guard_is_extracted_and_filters() {
        let p = prefilter("subscribe t to Ticks; behavior { if (t.sym == 'IBM') send(t.price); }");
        assert!(p.is_guard());
        assert!(p.matches(&tick_tuple("IBM", 1)));
        assert!(!p.matches(&tick_tuple("MSFT", 1)));
    }

    #[test]
    fn range_and_flipped_comparisons_are_extracted() {
        let p = prefilter(
            "subscribe t to Ticks; behavior { if (t.price >= 10 && 20 > t.price) send(t.price); }",
        );
        assert!(p.is_guard());
        assert!(p.matches(&tick_tuple("A", 10)));
        assert!(p.matches(&tick_tuple("A", 19)));
        assert!(!p.matches(&tick_tuple("A", 9)));
        assert!(!p.matches(&tick_tuple("A", 20)));
    }

    #[test]
    fn disjunction_and_negative_literals_are_extracted() {
        let p = prefilter(
            "subscribe t to Ticks; behavior { if (t.price < -5 || t.sym == 'X') send(1); }",
        );
        assert!(p.matches(&tick_tuple("X", 0)));
        assert!(p.matches(&tick_tuple("A", -6)));
        assert!(!p.matches(&tick_tuple("A", -5)));
    }

    #[test]
    fn unsound_shapes_stay_opaque() {
        // An else branch runs on non-matching events.
        let p = prefilter(
            "subscribe t to Ticks; int n; behavior { if (t.price > 1) send(1); else n += 1; }",
        );
        assert_eq!(p, Prefilter::Opaque);
        // A leading statement runs unconditionally.
        let p = prefilter(
            "subscribe t to Ticks; int n; behavior { n += 1; if (t.price > 1) send(n); }",
        );
        assert_eq!(p, Prefilter::Opaque);
        // The condition reads mutable state.
        let p = prefilter("subscribe t to Ticks; int n; behavior { if (n < 3) send(1); }");
        assert_eq!(p, Prefilter::Opaque);
        // The condition calls a builtin.
        let p =
            prefilter("subscribe t to Ticks; behavior { if (currentTopic() == 'Ticks') send(1); }");
        assert_eq!(p, Prefilter::Opaque);
        // Two subscriptions: a skipped event would be observable later.
        let p = prefilter(
            "subscribe t to Ticks; subscribe x to Timer; \
             behavior { if (t.price > 1) send(1); }",
        );
        assert_eq!(p, Prefilter::Opaque);
    }

    #[test]
    fn undecidable_guards_deliver() {
        // Missing attribute: the VM would error, so the event must go
        // through for the error to be recorded.
        let p = prefilter("subscribe t to Ticks; behavior { if (t.nosuch == 1) send(1); }");
        assert!(p.is_guard());
        assert!(p.matches(&tick_tuple("A", 1)));
        // String/number comparison errors in the VM.
        let p = prefilter("subscribe t to Ticks; behavior { if (t.sym > 3) send(1); }");
        assert!(p.matches(&tick_tuple("A", 1)));
        // …but string *equality* with a number is decidably false.
        let p = prefilter("subscribe t to Ticks; behavior { if (t.sym == 3) send(1); }");
        assert!(!p.matches(&tick_tuple("A", 1)));
        // An undecidable disjunct forces delivery even when the other
        // side is false, because the VM evaluates both operands.
        let p =
            prefilter("subscribe t to Ticks; behavior { if (t.sym == 'Z' || t.sym > 3) send(1); }");
        assert!(p.matches(&tick_tuple("A", 1)));
    }

    #[test]
    fn tstamp_pseudo_field_guards_work() {
        let p = prefilter("subscribe t to Ticks; behavior { if (t.tstamp > 5) send(1); }");
        assert!(p.is_guard());
        assert!(p.matches(&tick_tuple("A", 1))); // tstamp is 7
    }
}
