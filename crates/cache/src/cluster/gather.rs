//! Scatter-gather query assembly: merge per-partition row streams by
//! timestamp, then evaluate the full query plan over the merged window.
//!
//! The scatter side pushes only the `since τ` window down to each
//! partition (`select * from T since τ`) and ships the raw rows back;
//! everything else — predicate, projection, `order by`, `group by`,
//! aggregates, `limit` — runs **here**, over the merged stream, through
//! the same [`QueryPlan`](crate::query) compilation the single-node
//! read path uses. That reuse is the correctness argument: a grouped or
//! ordered query never needs partial-aggregate merging logic of its
//! own, because the plan sees one logically-contiguous window exactly
//! as it would on an unpartitioned cache.
//!
//! The merge itself is a streaming k-way merge: each partition returns
//! its window in scan order, which is timestamp-nondecreasing (the
//! cache clamps every table's clock monotone), so one binary heap of
//! `k` cursors yields the global timestamp order in `O(n log k)`
//! without ever re-sorting. Ties across partitions break by partition
//! index — deterministic, and invisible to any query whose timestamps
//! are distinct (an unpartitioned oracle could order equal-timestamp
//! rows from different clients either way too).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use gapl::event::{Scalar, Schema, Tuple};

use crate::error::{Error, Result};
use crate::query::{Query, ResultSet};

/// One raw row shipped back by a partition: its insertion timestamp and
/// full value vector (the scatter query is always `select *`).
#[derive(Debug, Clone, PartialEq)]
pub struct GatheredRow {
    /// Insertion timestamp at the owning partition.
    pub tstamp: u64,
    /// The row's values, in schema order.
    pub values: Vec<Scalar>,
}

/// A heap entry: the head row of one partition's stream. `BinaryHeap`
/// is a max-heap, so the ordering is reversed to pop the smallest
/// `(tstamp, partition)` first.
struct Head {
    tstamp: u64,
    partition: usize,
}

impl PartialEq for Head {
    fn eq(&self, other: &Self) -> bool {
        self.tstamp == other.tstamp && self.partition == other.partition
    }
}
impl Eq for Head {}
impl PartialOrd for Head {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Head {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.tstamp, other.partition).cmp(&(self.tstamp, self.partition))
    }
}

/// Merge per-partition windows (each timestamp-nondecreasing, in scan
/// order) into one globally timestamp-ordered stream. Ties break by
/// partition index.
#[must_use]
pub fn merge_by_tstamp(mut parts: Vec<Vec<GatheredRow>>) -> Vec<GatheredRow> {
    let total: usize = parts.iter().map(Vec::len).sum();
    let mut heap: BinaryHeap<Head> = BinaryHeap::with_capacity(parts.len());
    // Rows are moved out of their vectors one cursor step at a time;
    // `Vec::drain` per element would be quadratic, so each partition's
    // vector is consumed by index with `std::mem::take` on the row.
    let mut streams: Vec<std::vec::IntoIter<GatheredRow>> = Vec::with_capacity(parts.len());
    let mut pending: Vec<Option<GatheredRow>> = Vec::with_capacity(parts.len());
    for (p, rows) in parts.drain(..).enumerate() {
        let mut it = rows.into_iter();
        if let Some(first) = it.next() {
            heap.push(Head {
                tstamp: first.tstamp,
                partition: p,
            });
            pending.push(Some(first));
        } else {
            pending.push(None);
        }
        streams.push(it);
    }
    let mut merged = Vec::with_capacity(total);
    while let Some(head) = heap.pop() {
        let row = pending[head.partition]
            .take()
            .expect("a heap entry always has its row staged");
        merged.push(row);
        if let Some(next) = streams[head.partition].next() {
            heap.push(Head {
                tstamp: next.tstamp,
                partition: head.partition,
            });
            pending[head.partition] = Some(next);
        }
    }
    merged
}

/// Evaluate `query` over an already-merged window, exactly as the
/// single-node read path would: build tuples against `schema`, compile
/// the plan, evaluate.
///
/// # Errors
///
/// Propagates plan-compilation errors (unknown columns, type
/// mismatches) and schema violations in the gathered rows — either
/// means the scatter replies and the schema disagree, which is a
/// cluster-configuration error worth surfacing loudly.
pub fn evaluate_gathered(
    query: &Query,
    schema: &Arc<Schema>,
    merged: Vec<GatheredRow>,
) -> Result<ResultSet> {
    let tuples: Vec<Tuple> = merged
        .into_iter()
        .map(|row| {
            Tuple::new(Arc::clone(schema), row.values, row.tstamp).map_err(|e| Error::Schema {
                message: format!(
                    "gathered row does not match schema `{}`: {e}",
                    schema.name()
                ),
            })
        })
        .collect::<Result<_>>()?;
    query.evaluate(schema, &tuples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapl::event::AttrType;

    fn parse_select(text: &str) -> Query {
        match crate::sql::parse(text).expect("query parses") {
            crate::sql::Command::Select(q) => q,
            other => panic!("expected a select, parsed {other:?}"),
        }
    }

    fn row(tstamp: u64, n: i64) -> GatheredRow {
        GatheredRow {
            tstamp,
            values: vec![Scalar::Int(n)],
        }
    }

    #[test]
    fn merge_orders_globally_by_tstamp() {
        let parts = vec![
            vec![row(1, 10), row(4, 40), row(6, 60)],
            vec![row(2, 20), row(3, 30)],
            vec![],
            vec![row(5, 50)],
        ];
        let merged = merge_by_tstamp(parts);
        let ts: Vec<u64> = merged.iter().map(|r| r.tstamp).collect();
        assert_eq!(ts, vec![1, 2, 3, 4, 5, 6]);
        let ns: Vec<i64> = merged
            .iter()
            .map(|r| r.values[0].as_int().unwrap())
            .collect();
        assert_eq!(ns, vec![10, 20, 30, 40, 50, 60]);
    }

    #[test]
    fn merge_breaks_tstamp_ties_by_partition_index() {
        let parts = vec![vec![row(7, 1)], vec![row(7, 2)], vec![row(7, 3)]];
        let merged = merge_by_tstamp(parts);
        let ns: Vec<i64> = merged
            .iter()
            .map(|r| r.values[0].as_int().unwrap())
            .collect();
        assert_eq!(ns, vec![1, 2, 3]);
    }

    #[test]
    fn merge_is_stable_within_a_partition() {
        // Equal timestamps inside one partition keep their scan order —
        // the order the partition inserted (and published) them.
        let parts = vec![vec![row(5, 1), row(5, 2), row(5, 3)]];
        let merged = merge_by_tstamp(parts);
        let ns: Vec<i64> = merged
            .iter()
            .map(|r| r.values[0].as_int().unwrap())
            .collect();
        assert_eq!(ns, vec![1, 2, 3]);
    }

    #[test]
    fn evaluate_gathered_runs_the_full_plan() {
        let schema =
            Arc::new(Schema::new("T", vec![("k", AttrType::Str), ("n", AttrType::Int)]).unwrap());
        let merged = vec![
            GatheredRow {
                tstamp: 1,
                values: vec![Scalar::Str(Arc::from("a")), Scalar::Int(3)],
            },
            GatheredRow {
                tstamp: 2,
                values: vec![Scalar::Str(Arc::from("b")), Scalar::Int(5)],
            },
            GatheredRow {
                tstamp: 3,
                values: vec![Scalar::Str(Arc::from("a")), Scalar::Int(4)],
            },
        ];
        let query = parse_select("select sum(n) from T group by k order by k");
        let rs = evaluate_gathered(&query, &schema, merged).unwrap();
        assert_eq!(rs.columns, vec!["k".to_owned(), "sum(n)".to_owned()]);
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0].values[0].as_str(), Some("a"));
        assert_eq!(rs.rows[0].values[1].as_int(), Some(7));
        assert_eq!(rs.rows[1].values[0].as_str(), Some("b"));
        assert_eq!(rs.rows[1].values[1].as_int(), Some(5));
    }

    #[test]
    fn evaluate_gathered_rejects_mismatched_rows() {
        let schema = Arc::new(Schema::new("T", vec![("n", AttrType::Int)]).unwrap());
        let merged = vec![GatheredRow {
            tstamp: 1,
            values: vec![Scalar::Str(Arc::from("not an int"))],
        }];
        let query = parse_select("select * from T");
        assert!(matches!(
            evaluate_gathered(&query, &schema, merged),
            Err(Error::Schema { .. })
        ));
    }
}
