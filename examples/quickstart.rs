//! Quickstart: the unified cache in one file.
//!
//! This example shows the two faces of the system working together on one
//! table:
//!
//! * the **publish/subscribe** face — a GAPL automaton subscribes to the
//!   `Flows` topic and reacts, forwards, and notifies as tuples arrive;
//! * the **stream database** face — the application looks backwards in
//!   time with ad hoc `select ... since τ` queries over the same table.
//!
//! Run with `cargo run --example quickstart`.

use std::time::Duration;

use unipubsub::continuous::ContinuousQuery;
use unipubsub::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the cache. Every table created below is also a topic.
    let cache = CacheBuilder::new().build();
    cache.execute("create table Flows (srcip varchar(16), dstip varchar(16), nbytes integer)")?;
    cache.execute("create table BigFlows (srcip varchar(16), nbytes integer)")?;

    // 2. Register an automaton: it watches Flows (forward in time),
    //    republishes large flows into BigFlows, and notifies the
    //    registering application.
    let (automaton, notifications) = cache.register_automaton(
        r#"
        subscribe f to Flows;
        int count;
        initialization { count = 0; }
        behavior {
            count += 1;
            if (f.nbytes > 100000) {
                publish('BigFlows', f.srcip, f.nbytes);
                send(f.srcip, f.dstip, f.nbytes, count);
            }
        }
        "#,
    )?;
    println!("registered {automaton}");

    // 3. Feed events in, exactly as an application would over RPC.
    let flows = [
        ("10.0.0.1", "192.168.1.10", 4_096),
        ("10.0.0.2", "192.168.1.11", 250_000),
        ("10.0.0.3", "192.168.1.10", 1_200),
        ("10.0.0.2", "192.168.1.12", 750_000),
    ];
    for (src, dst, bytes) in flows {
        cache.execute(&format!(
            "insert into Flows values ('{src}', '{dst}', {bytes})"
        ))?;
    }
    cache.quiesce(Duration::from_secs(2));

    // 4. Forward in time: the complex-event notifications produced by send().
    println!("\nnotifications from the automaton:");
    for note in notifications.try_iter() {
        println!("  {:?}", note.values);
    }

    // 5. Backwards in time: the same table answers ad hoc queries, and the
    //    derived BigFlows stream is a materialised view of the pattern.
    let big = cache.execute("select * from BigFlows")?.rows().unwrap();
    println!("\nBigFlows now holds {} tuples", big.len());

    // 6. The Tapestry-style continuous query loop (Fig. 1 of the paper).
    let mut cq = ContinuousQuery::new(Query::new("Flows"));
    let first = cq.poll(&cache)?;
    println!(
        "continuous query: first round returned {} tuples (τ advanced to {})",
        first.len(),
        cq.tau()
    );
    cache.execute("insert into Flows values ('10.0.0.9', '192.168.1.13', 77)")?;
    let second = cq.poll(&cache)?;
    println!(
        "continuous query: second round returned {} new tuple(s)",
        second.len()
    );

    cache.unregister_automaton(automaton)?;
    Ok(())
}
