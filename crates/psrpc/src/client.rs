//! The application-side RPC client, with pipelining and multiplexing.
//!
//! Every request carries a correlation id (the wire `seq`); the client
//! keeps a map of in-flight ids to waiting callers, so **many requests
//! can be on the wire at once** — from many threads sharing one
//! [`CacheClient`], or from one thread using the
//! [`CacheClient::begin_request`] / [`PendingReply::wait`] split — and
//! replies complete in whatever order the server answers. A bounded
//! in-flight window (default
//! [`pscache::config::DEFAULT_RPC_MAX_PIPELINE`]) keeps a runaway
//! pipeliner from queuing unbounded memory on both ends. Asynchronous
//! automaton notifications interleave on the same stream, tagged by
//! automaton id, and surface on [`CacheClient::notifications`].

use std::collections::HashMap;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex as StdMutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};

use gapl::event::Scalar;

use crate::error::{Error, Result};
use crate::message::{CacheReply, ClientMessage, HealthReport, Request, ServerMessage, WireRow};
use crate::transport::{inproc_pair, tcp_split, RecvHalf, SendHalf};

/// How a [`CacheClient`] built with
/// [`CacheClient::connect_reconnecting`] survives a server restart:
/// when a request fails on a dead transport, the client redials with
/// **capped exponential backoff plus jitter** and — when it is safe —
/// retries the request on the fresh connection.
///
/// What "safe" means, per failure mode:
///
/// * the request could not be (fully) **sent**: the server never saw a
///   complete message, so any request is retried;
/// * the request was sent but the connection died before its **reply**
///   arrived: *idempotent* requests (reads, pings, stats, and
///   upsert-mode inserts) are retried, and so is any mutation stamped
///   with an idempotency token (the default — see
///   [`CacheClient::set_idempotency_tokens`]): the server deduplicates
///   the retry by token and returns the original outcome, so the
///   mutation applies exactly once. Only unstamped non-idempotent
///   mutations surface [`Error::MaybeApplied`];
/// * server-side per-connection state (registered automata and their
///   notification routes) does not survive the server that held it —
///   re-register automata after a reconnect.
#[derive(Debug, Clone)]
pub struct ReconnectPolicy {
    /// Dial attempts per failed request before giving up (each request
    /// failure starts a fresh budget).
    pub max_attempts: u32,
    /// Delay before the first redial; doubles per attempt.
    pub base_delay: Duration,
    /// Ceiling on the per-attempt delay.
    pub max_delay: Duration,
    /// Total wall-clock budget for one logical request across all its
    /// retries — redials, throttle waits, *and* the wait for each reply
    /// on a live connection. `None` (the default) bounds redials only
    /// by `max_attempts` and everything else not at all; a probe or
    /// latency-sensitive caller sets a deadline and gets a typed error
    /// back when it expires ([`crate::Error::Disconnected`] for
    /// idempotent requests, [`crate::Error::MaybeApplied`] for
    /// mutations whose fate is unknown).
    pub deadline: Option<Duration>,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(2),
            deadline: None,
        }
    }
}

/// The retry curve is the system-wide one — `pscache::repl`'s capped,
/// jittered exponential backoff — so RPC clients and replication
/// followers stampede-protect a restarted server identically.
fn backoff_delay(attempt: u32, policy: &ReconnectPolicy) -> Duration {
    pscache::repl::backoff_delay(attempt, policy.base_delay, policy.max_delay)
}

/// An asynchronous complex-event notification received from the cache, the
/// client-side image of an automaton's `send()`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientNotification {
    /// Id of the automaton (as returned by [`CacheClient::register_automaton`]).
    pub automaton: u64,
    /// The values passed to `send()`.
    pub values: Vec<Scalar>,
    /// Cache time of the notification.
    pub at: u64,
}

/// A result set as seen by a remote application.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClientResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<WireRow>,
}

impl ClientResultSet {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Largest tuple timestamp in the result, for driving `since τ` loops.
    pub fn max_tstamp(&self) -> Option<u64> {
        self.rows.iter().map(|r| r.tstamp).max()
    }
}

/// How one in-flight request resolved at the transport layer.
enum Outcome {
    /// The server answered.
    Reply(CacheReply),
    /// The connection died before the reply arrived.
    Dropped,
}

/// One live transport generation: its writer, the in-flight correlation
/// map, and the reader thread decoding replies into it.
struct Inner {
    writer: Box<dyn SendHalf>,
    /// False once the transport is known dead; flipped back by a
    /// successful redial.
    open: bool,
    /// Bumped on every reconnect, so a late-exiting old reader cannot
    /// fail requests issued on the connection that replaced it.
    generation: u64,
    /// seq -> the waiting caller's completion channel.
    pending: HashMap<u64, Sender<Outcome>>,
    reader: Option<JoinHandle<()>>,
}

/// State shared between callers, the reader thread, and pending-reply
/// handles.
struct ClientState {
    inner: StdMutex<Inner>,
    /// Requests currently in flight (window accounting).
    in_flight: StdMutex<usize>,
    window_cv: Condvar,
    max_window: AtomicUsize,
    /// Cloned into every reader generation, so notifications survive a
    /// reconnect on the same receiver.
    note_tx: Sender<ClientNotification>,
}

/// Lock a std mutex, shrugging off poisoning: the protected state is
/// queue bookkeeping that stays consistent even if a panicking thread
/// held the guard.
fn lock<T>(m: &StdMutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A connection to the cache, usable from multiple threads.
///
/// The one-call-per-method API ([`CacheClient::execute`],
/// [`CacheClient::insert`], ...) blocks per request but pipelines across
/// threads; [`CacheClient::begin_request`] pipelines from a single
/// thread. Notifications from automata registered over this connection
/// arrive asynchronously on [`CacheClient::notifications`].
pub struct CacheClient {
    state: std::sync::Arc<ClientState>,
    notifications: Receiver<ClientNotification>,
    seq: AtomicU64,
    /// `(address, policy)` when this client redials a dead server.
    reconnect: Option<(String, ReconnectPolicy)>,
    /// Serialises redial attempts across threads.
    redial: StdMutex<()>,
    /// Streams re-established so far.
    reconnects: AtomicU64,
    /// This client's idempotency-token identity, minted once per client.
    client_id: u64,
    /// Next token sequence number.
    token_seq: AtomicU64,
    /// Whether blocking mutations are stamped with idempotency tokens
    /// (default true; see [`CacheClient::set_idempotency_tokens`]).
    tokens_enabled: AtomicBool,
    /// Whether outgoing requests carry wire trace ids (default false;
    /// see [`CacheClient::set_trace_base`]).
    trace_enabled: AtomicBool,
    /// The base trace id when tracing is on; request `seq` is stamped
    /// `base.wrapping_add(seq)`.
    trace_base: AtomicU64,
}

/// Mint a client identity for idempotency tokens: unique enough across
/// processes and within one (time XOR pid XOR a process-local counter)
/// that two clients colliding is as likely as a random 64-bit collision.
fn mint_client_id() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    let salt = COUNTER
        .fetch_add(1, Ordering::Relaxed)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    nanos ^ (u64::from(std::process::id()) << 32) ^ salt
}

impl std::fmt::Debug for CacheClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheClient")
            .field("next_seq", &self.seq.load(Ordering::Relaxed))
            .field("in_flight", &*lock(&self.state.in_flight))
            .field("pending_notifications", &self.notifications.len())
            .field("reconnects", &self.reconnects.load(Ordering::Relaxed))
            .finish()
    }
}

/// A request that has been sent but not yet answered. Obtain from
/// [`CacheClient::begin_request`]; resolve with [`PendingReply::wait`].
///
/// Dropping the handle without waiting abandons the reply (it is
/// discarded on arrival) and releases its window slot.
pub struct PendingReply {
    rx: Receiver<Outcome>,
    state: std::sync::Arc<ClientState>,
    idempotent: bool,
    done: bool,
}

impl std::fmt::Debug for PendingReply {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingReply")
            .field("idempotent", &self.idempotent)
            .field("resolved", &self.done)
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Outcome::Reply(_) => f.write_str("Reply(..)"),
            Outcome::Dropped => f.write_str("Dropped"),
        }
    }
}

impl PendingReply {
    /// Block until the reply arrives and return it.
    ///
    /// # Errors
    ///
    /// [`Error::Remote`] when the cache rejected the request. If the
    /// connection died first: [`Error::Disconnected`] for idempotent
    /// requests, [`Error::MaybeApplied`] for mutations that may already
    /// have been applied. Pipelined handles are **not** retried
    /// automatically, even on a reconnecting client — the caller owns
    /// the in-flight set and decides what is safe to re-issue.
    pub fn wait(mut self) -> Result<CacheReply> {
        match self.take_outcome() {
            Outcome::Reply(CacheReply::Error { message }) => Err(Error::Remote { message }),
            Outcome::Reply(CacheReply::NotMine { partition }) => Err(Error::NotMine { partition }),
            Outcome::Reply(reply) => Ok(reply),
            Outcome::Dropped if self.idempotent => Err(Error::Disconnected),
            Outcome::Dropped => Err(Error::MaybeApplied),
        }
    }

    /// Resolve to the raw transport outcome, releasing the window slot.
    fn take_outcome(&mut self) -> Outcome {
        let outcome = self.rx.recv().unwrap_or(Outcome::Dropped);
        self.release();
        outcome
    }

    /// Like [`PendingReply::take_outcome`], but give up at `deadline`:
    /// `None` means the reply had not arrived in time. The slot is
    /// released either way; a reply that arrives after the timeout is
    /// discarded like any abandoned handle's.
    fn take_outcome_by(&mut self, deadline: Option<Instant>) -> Option<Outcome> {
        let Some(d) = deadline else {
            return Some(self.take_outcome());
        };
        let outcome = match self
            .rx
            .recv_timeout(d.saturating_duration_since(Instant::now()))
        {
            Ok(outcome) => outcome,
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => Outcome::Dropped,
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                self.release();
                return None;
            }
        };
        self.release();
        Some(outcome)
    }

    fn release(&mut self) {
        if !self.done {
            self.done = true;
            *lock(&self.state.in_flight) -= 1;
            self.state.window_cv.notify_one();
        }
    }
}

impl Drop for PendingReply {
    fn drop(&mut self) {
        self.release();
    }
}

/// Whether re-sending `request` after a lost reply cannot change state
/// beyond what a single application would have: reads and pings
/// trivially, upserts because replaying one overwrites the same key
/// with the same values.
fn is_idempotent(request: &Request) -> bool {
    match request {
        Request::Ping | Request::ServerStats | Request::Health | Request::Metrics => true,
        Request::Execute { command } => is_select(command),
        Request::Insert { upsert, .. } | Request::InsertBatch { upsert, .. } => *upsert,
        Request::RegisterAutomaton { .. } | Request::UnregisterAutomaton { .. } => false,
    }
}

fn is_select(command: &str) -> bool {
    let trimmed = command.trim_start();
    trimmed.len() >= 6 && trimmed.as_bytes()[..6].eq_ignore_ascii_case(b"select")
}

/// Whether a request gets an idempotency token: exactly the mutations
/// whose blind retry would double-apply. Registration is excluded — a
/// registered automaton is per-connection state that dies with its
/// connection, so "retry re-registers" is the correct semantic, not a
/// duplicate.
fn wants_token(request: &Request) -> bool {
    match request {
        Request::Insert { upsert, .. } | Request::InsertBatch { upsert, .. } => !*upsert,
        Request::Execute { command } => !is_select(command),
        _ => false,
    }
}

impl CacheClient {
    /// Connect to an RPC server ([`crate::server::RpcServer`] or
    /// [`crate::reactor::ReactorServer`] — same wire protocol) over TCP.
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<CacheClient> {
        let stream = TcpStream::connect(addr)?;
        let (send, recv) = tcp_split(stream)?;
        Ok(Self::from_halves(Box::new(send), Box::new(recv)))
    }

    /// Connect over TCP with automatic reconnection: when a request
    /// fails because the transport died, the client redials `addr`
    /// (capped exponential backoff plus jitter, per `policy`) and — when
    /// safe — retries the request on the fresh connection. See
    /// [`ReconnectPolicy`] for exactly which failures are retried and
    /// which surface [`Error::MaybeApplied`].
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the *initial* connection cannot be
    /// established — later failures are what the policy absorbs.
    pub fn connect_reconnecting(
        addr: impl Into<String>,
        policy: ReconnectPolicy,
    ) -> Result<CacheClient> {
        let addr = addr.into();
        let stream = TcpStream::connect(addr.as_str())?;
        let (send, recv) = tcp_split(stream)?;
        let mut client = Self::from_halves(Box::new(send), Box::new(recv));
        client.reconnect = Some((addr, policy));
        Ok(client)
    }

    /// Streams this client has re-established after transport failures.
    pub fn reconnect_count(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// Create a client talking to an in-process cache: spawns a server
    /// thread for the loopback connection and returns the connected client.
    /// This preserves the full RPC path — encoding, fragmentation,
    /// reassembly — without a network stack.
    pub fn connect_inproc(cache: pscache::Cache) -> CacheClient {
        let (client_end, server_end) = inproc_pair();
        let (server_send, server_recv) = server_end;
        std::thread::Builder::new()
            .name("psrpc-inproc-server".into())
            .spawn(move || {
                let _ = crate::server::serve_connection(cache, server_send, server_recv);
            })
            .expect("spawning the in-process server thread never fails");
        let (client_send, client_recv) = client_end;
        Self::from_halves(Box::new(client_send), Box::new(client_recv))
    }

    /// Build a client from pre-connected transport halves.
    pub fn from_halves(send: Box<dyn SendHalf>, recv: Box<dyn RecvHalf>) -> CacheClient {
        let (note_tx, note_rx) = unbounded();
        let state = std::sync::Arc::new(ClientState {
            inner: StdMutex::new(Inner {
                writer: send,
                open: true,
                generation: 0,
                pending: HashMap::new(),
                reader: None,
            }),
            in_flight: StdMutex::new(0),
            window_cv: Condvar::new(),
            max_window: AtomicUsize::new(pscache::config::DEFAULT_RPC_MAX_PIPELINE),
            note_tx,
        });
        let reader = spawn_reader(recv, 0, std::sync::Arc::clone(&state));
        lock(&state.inner).reader = Some(reader);
        CacheClient {
            state,
            notifications: note_rx,
            seq: AtomicU64::new(1),
            reconnect: None,
            redial: StdMutex::new(()),
            reconnects: AtomicU64::new(0),
            client_id: mint_client_id(),
            token_seq: AtomicU64::new(1),
            tokens_enabled: AtomicBool::new(true),
            trace_enabled: AtomicBool::new(false),
            trace_base: AtomicU64::new(0),
        }
    }

    /// Stamp (or stop stamping) every outgoing request with an 8-byte
    /// wire trace id. `Some(base)` stamps the request with sequence
    /// number `seq` as `base.wrapping_add(seq)` — unique per request,
    /// yet predictable enough to correlate a client-side latency spike
    /// with the matching entry in the server's slow-op log
    /// (`pscache::SlowOpLog`). `None` — the default — omits the wire
    /// flag entirely, so untraced requests pay one byte, not nine.
    pub fn set_trace_base(&self, base: Option<u64>) {
        match base {
            Some(b) => {
                self.trace_base.store(b, Ordering::Release);
                self.trace_enabled.store(true, Ordering::Release);
            }
            None => self.trace_enabled.store(false, Ordering::Release),
        }
    }

    /// Enable or disable idempotency tokens on blocking mutations
    /// (enabled by default). With tokens on, the server remembers each
    /// stamped mutation's outcome and a reconnecting client retries
    /// *every* request safely — a retry of an applied mutation returns
    /// the original outcome instead of applying twice. Disabling
    /// restores the bare at-least-once transport (and its
    /// [`Error::MaybeApplied`] ambiguity); the benchmark suite uses this
    /// to price the dedup path.
    pub fn set_idempotency_tokens(&self, enabled: bool) {
        self.tokens_enabled.store(enabled, Ordering::Release);
    }

    /// The identity this client stamps idempotency tokens with.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// Cap on requests this client keeps in flight at once (default
    /// [`pscache::config::DEFAULT_RPC_MAX_PIPELINE`]). Callers over the
    /// cap block in [`CacheClient::begin_request`] until a reply frees a
    /// slot.
    pub fn set_pipeline_window(&self, window: usize) {
        self.state
            .max_window
            .store(window.max(1), Ordering::Release);
        self.state.window_cv.notify_all();
    }

    /// Send `request` without waiting for its reply: the pipelining
    /// primitive. Issue many, then [`PendingReply::wait`] in any order —
    /// replies are matched by correlation id, so a slow query does not
    /// stall the replies queued behind it on the server.
    ///
    /// Blocks while the in-flight window
    /// ([`CacheClient::set_pipeline_window`]) is full.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Disconnected`] (or the underlying I/O error)
    /// when the request cannot be sent; nothing was delivered, so
    /// re-issuing is always safe. Unlike the blocking methods, this
    /// does **not** redial a reconnecting client.
    pub fn begin_request(&self, request: Request) -> Result<PendingReply> {
        self.begin(&request, None)
    }

    /// [`CacheClient::begin_request`] with an explicit idempotency token
    /// `(client id, token seq)`. Re-issuing the same token after a lost
    /// reply returns the original outcome instead of re-applying — the
    /// building block for callers that manage their own retry loop over
    /// pipelined requests (and for the differential protocol suite).
    ///
    /// # Errors
    ///
    /// See [`CacheClient::begin_request`].
    pub fn begin_request_with_token(
        &self,
        request: Request,
        token: Option<(u64, u64)>,
    ) -> Result<PendingReply> {
        self.begin(&request, token)
    }

    /// Mint a fresh idempotency token for use with
    /// [`CacheClient::begin_request_with_token`].
    pub fn next_token(&self) -> (u64, u64) {
        (
            self.client_id,
            self.token_seq.fetch_add(1, Ordering::Relaxed),
        )
    }

    /// [`CacheClient::begin_request`] for a SQL-ish command.
    ///
    /// # Errors
    ///
    /// See [`CacheClient::begin_request`].
    pub fn begin_execute(&self, command: &str) -> Result<PendingReply> {
        self.begin_request(Request::Execute {
            command: command.to_owned(),
        })
    }

    fn begin(&self, request: &Request, token: Option<(u64, u64)>) -> Result<PendingReply> {
        // Window first: a full pipeline must block *before* touching the
        // connection, so waiters never hold the connection lock.
        {
            let max = self.state.max_window.load(Ordering::Acquire);
            let mut in_flight = lock(&self.state.in_flight);
            while *in_flight >= max {
                in_flight = self
                    .state
                    .window_cv
                    .wait(in_flight)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            *in_flight += 1;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let trace = self
            .trace_enabled
            .load(Ordering::Acquire)
            .then(|| self.trace_base.load(Ordering::Acquire).wrapping_add(seq));
        let bytes = ClientMessage {
            seq,
            token,
            trace,
            request: request.clone(),
        }
        .encode();
        let (tx, rx) = unbounded();
        let pending = PendingReply {
            rx,
            state: std::sync::Arc::clone(&self.state),
            idempotent: is_idempotent(request),
            done: false,
        };
        let mut inner = lock(&self.state.inner);
        if !inner.open {
            return Err(Error::Disconnected);
        }
        // Register before sending: a reply cannot race its own entry
        // because the reader needs this lock to resolve it.
        inner.pending.insert(seq, tx);
        if let Err(e) = inner.writer.send(&bytes) {
            inner.pending.remove(&seq);
            inner.open = false;
            return Err(e);
        }
        Ok(pending)
    }

    fn request(&self, request: Request) -> Result<CacheReply> {
        let idempotent = is_idempotent(&request);
        // The token is minted once per *logical* request and reused on
        // every retry — that identity stability is the whole mechanism:
        // the server recognises the re-send and answers with the
        // remembered outcome.
        let token = (self.tokens_enabled.load(Ordering::Acquire) && wants_token(&request))
            .then(|| self.next_token());
        let deadline = self
            .reconnect
            .as_ref()
            .and_then(|(_, p)| p.deadline)
            .map(|d| Instant::now() + d);
        loop {
            let mut pending = match self.begin(&request, token) {
                Ok(p) => p,
                // Send failure: the server never saw a complete message,
                // so redial-and-retry is safe for any request.
                Err(e) if transport_failed(&e) && self.reconnect.is_some() => {
                    self.reestablish(deadline)?;
                    continue;
                }
                Err(e) => return Err(e),
            };
            match pending.take_outcome_by(deadline) {
                // The reply outwaited the policy deadline on a live
                // connection: surface the same contract as a dropped
                // transport instead of waiting forever. The request may
                // still be applied, so mutations report `MaybeApplied`
                // (the minted token is abandoned with the handle).
                None if idempotent => return Err(Error::Disconnected),
                None => return Err(Error::MaybeApplied),
                Some(Outcome::Reply(CacheReply::Error { message })) => {
                    return Err(Error::Remote { message })
                }
                Some(Outcome::Reply(CacheReply::NotMine { partition })) => {
                    // A cluster redirect, not a failure: nothing was
                    // applied and the request belongs on another
                    // partition's primary. Surfaced typed (never
                    // retried here) so the cluster client can re-route.
                    return Err(Error::NotMine { partition });
                }
                Some(Outcome::Reply(CacheReply::Throttled { retry_after_ms })) => {
                    // Admission control said no. Honour the server's
                    // pacing hint, bounded by the policy deadline — a
                    // caller that set one gets the typed error instead
                    // of an open-ended wait.
                    let retry_after = Duration::from_millis(retry_after_ms.max(1));
                    if deadline.is_some_and(|d| Instant::now() + retry_after >= d) {
                        return Err(Error::Throttled { retry_after });
                    }
                    std::thread::sleep(retry_after);
                }
                Some(Outcome::Reply(reply)) => return Ok(reply),
                Some(Outcome::Dropped) => {
                    // Fully sent, reply lost. Retrying is safe when a
                    // second application changes nothing — or when the
                    // request carries a token the server will dedup.
                    if self.reconnect.is_none() {
                        return Err(Error::Disconnected);
                    }
                    if !idempotent && token.is_none() {
                        return Err(Error::MaybeApplied);
                    }
                    self.reestablish(deadline)?;
                }
            }
        }
    }

    /// Redial the server and swap the transport generation, with capped
    /// exponential backoff and jitter between attempts. Concurrent
    /// callers coalesce onto one redial.
    fn reestablish(&self, deadline: Option<Instant>) -> Result<()> {
        let (addr, policy) = self
            .reconnect
            .as_ref()
            .expect("reestablish is only called with a policy");
        let _serialised = lock(&self.redial);
        if lock(&self.state.inner).open {
            return Ok(()); // another caller already reconnected
        }
        for attempt in 0..policy.max_attempts {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(Error::Disconnected);
            }
            std::thread::sleep(backoff_delay(attempt, policy));
            let Ok(stream) = TcpStream::connect(addr.as_str()) else {
                continue;
            };
            let (send, recv) = tcp_split(stream)?;
            let old_reader;
            {
                let mut inner = lock(&self.state.inner);
                inner.generation += 1;
                let generation = inner.generation;
                // Replacing the writer drops the old one, shutting the
                // dead socket's write side and unblocking its reader.
                inner.writer = Box::new(send);
                inner.open = true;
                for (_, tx) in inner.pending.drain() {
                    let _ = tx.send(Outcome::Dropped);
                }
                old_reader = inner.reader.take();
                inner.reader = Some(spawn_reader(
                    Box::new(recv),
                    generation,
                    std::sync::Arc::clone(&self.state),
                ));
            }
            if let Some(handle) = old_reader {
                let _ = handle.join();
            }
            self.reconnects.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        Err(Error::Disconnected)
    }

    /// Execute any SQL-ish command and discard the detail of the reply.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Remote`] when the cache rejects the command.
    pub fn execute(&self, command: &str) -> Result<CacheReply> {
        self.request(Request::Execute {
            command: command.to_owned(),
        })
    }

    /// Run a `select` and return its rows.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Remote`] for unknown tables or malformed queries,
    /// and a protocol error if the cache answers with something other than
    /// rows.
    pub fn select(&self, command: &str) -> Result<ClientResultSet> {
        match self.execute(command)? {
            CacheReply::Rows { columns, rows } => Ok(ClientResultSet { columns, rows }),
            other => Err(Error::protocol(format!(
                "expected rows in reply to a select, got {other:?}"
            ))),
        }
    }

    /// Insert a tuple using the fast path (no SQL formatting/parsing).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Remote`] when the cache rejects the tuple.
    pub fn insert(&self, table: &str, values: Vec<Scalar>) -> Result<u64> {
        match self.request(Request::Insert {
            table: table.to_owned(),
            values,
            upsert: false,
        })? {
            CacheReply::Inserted { tstamp, .. } => Ok(tstamp),
            other => Err(Error::protocol(format!(
                "unexpected reply to insert: {other:?}"
            ))),
        }
    }

    /// Insert with `on duplicate key update` semantics.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Remote`] when the cache rejects the tuple.
    pub fn upsert(&self, table: &str, values: Vec<Scalar>) -> Result<u64> {
        match self.request(Request::Insert {
            table: table.to_owned(),
            values,
            upsert: true,
        })? {
            CacheReply::Inserted { tstamp, .. } => Ok(tstamp),
            other => Err(Error::protocol(format!(
                "unexpected reply to upsert: {other:?}"
            ))),
        }
    }

    /// Insert many tuples into one table in a single round trip — the
    /// batched fast path. The cache applies the whole batch under one
    /// table-lock acquisition and subscribed automata observe it as a
    /// contiguous, ordered run, so a 1000-row batch costs one RPC and a
    /// fraction of the cache work of 1000 single inserts.
    ///
    /// Returns one insertion timestamp per row, in row order. Batches are
    /// capped at [`crate::message::MAX_BATCH_ROWS`] rows; split larger
    /// loads into several batches.
    ///
    /// # Errors
    ///
    /// Returns a protocol error for over-large batches (checked locally,
    /// before anything is sent), and [`Error::Remote`] when the cache
    /// rejects the batch (the rows before the first bad row stay
    /// inserted — see `pscache::Cache::insert_batch`).
    pub fn insert_batch(&self, table: &str, rows: Vec<Vec<Scalar>>) -> Result<Vec<u64>> {
        self.batch_request(table, rows, false)
    }

    /// Batched [`CacheClient::upsert`]: every row is applied with
    /// `on duplicate key update` semantics.
    ///
    /// # Errors
    ///
    /// See [`CacheClient::insert_batch`].
    pub fn upsert_batch(&self, table: &str, rows: Vec<Vec<Scalar>>) -> Result<Vec<u64>> {
        self.batch_request(table, rows, true)
    }

    fn batch_request(&self, table: &str, rows: Vec<Vec<Scalar>>, upsert: bool) -> Result<Vec<u64>> {
        if rows.len() > crate::message::MAX_BATCH_ROWS {
            return Err(Error::protocol(format!(
                "batch of {} rows exceeds MAX_BATCH_ROWS ({}); split it",
                rows.len(),
                crate::message::MAX_BATCH_ROWS
            )));
        }
        match self.request(Request::InsertBatch {
            table: table.to_owned(),
            rows,
            upsert,
        })? {
            CacheReply::InsertedBatch { tstamps } => Ok(tstamps),
            other => Err(Error::protocol(format!(
                "unexpected reply to insert_batch: {other:?}"
            ))),
        }
    }

    /// Register an automaton; returns its id. Compilation errors are
    /// reported back as [`Error::Remote`], exactly as in the paper.
    ///
    /// # Errors
    ///
    /// See above.
    pub fn register_automaton(&self, source: &str) -> Result<u64> {
        match self.request(Request::RegisterAutomaton {
            source: source.to_owned(),
        })? {
            CacheReply::Registered { id } => Ok(id),
            other => Err(Error::protocol(format!(
                "unexpected reply to register: {other:?}"
            ))),
        }
    }

    /// Unregister a previously registered automaton.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Remote`] for unknown ids.
    pub fn unregister_automaton(&self, id: u64) -> Result<()> {
        match self.request(Request::UnregisterAutomaton { id })? {
            CacheReply::Unregistered => Ok(()),
            other => Err(Error::protocol(format!(
                "unexpected reply to unregister: {other:?}"
            ))),
        }
    }

    /// Fetch the server's counters: connections, requests, in-flight
    /// pipeline depth, notification routing, and the cache's
    /// automaton-dispatch statistics.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Disconnected`] when the server is gone.
    pub fn server_stats(&self) -> Result<crate::message::ServerStats> {
        match self.request(Request::ServerStats)? {
            CacheReply::Stats { stats } => Ok(stats),
            other => Err(Error::protocol(format!(
                "unexpected reply to a stats request: {other:?}"
            ))),
        }
    }

    /// Fetch the server's health/readiness snapshot: role, durability
    /// and replication watermarks, queue depths, and throttle counters.
    /// Against a `ReactorServer` this is answered on the reactor thread
    /// itself — never queued behind request execution — so a probe gets
    /// its answer even when every worker is saturated.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Disconnected`] when the server is gone.
    pub fn health(&self) -> Result<HealthReport> {
        match self.request(Request::Health)? {
            CacheReply::Health { report } => Ok(report),
            other => Err(Error::protocol(format!(
                "unexpected reply to a health probe: {other:?}"
            ))),
        }
    }

    /// Fetch the server's observability snapshot: latency histograms
    /// and counters (see `pscache::obs`). Like [`CacheClient::health`],
    /// a `ReactorServer` answers this inline on the reactor thread, so
    /// a scraper gets numbers even from a node whose worker pool is
    /// saturated — exactly the node whose numbers matter most.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Disconnected`] when the server is gone.
    pub fn metrics(&self) -> Result<pscache::MetricsSnapshot> {
        match self.request(Request::Metrics)? {
            CacheReply::Metrics { snapshot } => Ok(snapshot),
            other => Err(Error::protocol(format!(
                "unexpected reply to a metrics request: {other:?}"
            ))),
        }
    }

    /// Liveness check.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Disconnected`] when the server is gone.
    pub fn ping(&self) -> Result<()> {
        match self.request(Request::Ping)? {
            CacheReply::Pong => Ok(()),
            other => Err(Error::protocol(format!(
                "unexpected reply to ping: {other:?}"
            ))),
        }
    }

    /// The channel on which asynchronous automaton notifications arrive.
    pub fn notifications(&self) -> &Receiver<ClientNotification> {
        &self.notifications
    }

    /// Drain any notifications that have already arrived.
    pub fn drain_notifications(&self) -> Vec<ClientNotification> {
        self.notifications.try_iter().collect()
    }
}

/// The reader side of one connection generation: resolves replies
/// through the correlation map and forwards notifications. On exit it
/// fails whatever is still pending — unless a newer generation has
/// already taken over.
fn spawn_reader(
    mut recv: Box<dyn RecvHalf>,
    generation: u64,
    state: std::sync::Arc<ClientState>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("psrpc-client-reader".into())
        .spawn(move || {
            while let Ok(Some(bytes)) = recv.recv() {
                match ServerMessage::decode(&bytes) {
                    Ok(ServerMessage::Reply { seq, reply }) => {
                        let waiter = lock(&state.inner).pending.remove(&seq);
                        if let Some(tx) = waiter {
                            let _ = tx.send(Outcome::Reply(reply));
                        }
                    }
                    Ok(ServerMessage::Notification {
                        automaton,
                        values,
                        at,
                    }) => {
                        let _ = state.note_tx.send(ClientNotification {
                            automaton,
                            values,
                            at,
                        });
                    }
                    Err(_) => break,
                }
            }
            let mut inner = lock(&state.inner);
            if inner.generation == generation {
                inner.open = false;
                for (_, tx) in inner.pending.drain() {
                    let _ = tx.send(Outcome::Dropped);
                }
            }
        })
        .expect("spawning the client reader thread never fails")
}

/// Whether an error means the transport is dead (worth redialling), as
/// opposed to the server rejecting a well-delivered request.
fn transport_failed(e: &Error) -> bool {
    matches!(e, Error::Disconnected | Error::Io(_))
}

impl Drop for CacheClient {
    fn drop(&mut self) {
        let reader = {
            let mut inner = lock(&self.state.inner);
            // Dropping the writer closes the connection, which unblocks
            // and terminates the reader thread.
            inner.writer = Box::new(ClosedSend);
            inner.open = false;
            inner.reader.take()
        };
        if let Some(handle) = reader {
            let _ = handle.join();
        }
    }
}

/// A sender that always fails; installed while dropping the client.
#[derive(Debug)]
struct ClosedSend;

impl SendHalf for ClosedSend {
    fn send(&mut self, _message: &[u8]) -> Result<()> {
        Err(Error::Disconnected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscache::CacheBuilder;
    use std::time::Duration;

    fn wait_for_notifications(client: &CacheClient, n: usize) -> Vec<ClientNotification> {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut notes = Vec::new();
        while notes.len() < n && std::time::Instant::now() < deadline {
            if let Ok(note) = client
                .notifications()
                .recv_timeout(Duration::from_millis(50))
            {
                notes.push(note);
            }
        }
        notes
    }

    #[test]
    fn inproc_end_to_end_execute_insert_select_and_notifications() {
        let cache = CacheBuilder::new().build();
        let client = CacheClient::connect_inproc(cache);
        client.ping().unwrap();
        client
            .execute("create table Flows (srcip varchar(16), nbytes integer)")
            .unwrap();
        let id = client
            .register_automaton(
                "subscribe f to Flows; behavior { if (f.nbytes > 100) send(f.srcip); }",
            )
            .unwrap();
        client
            .insert("Flows", vec![Scalar::Str("a".into()), Scalar::Int(10)])
            .unwrap();
        client
            .insert("Flows", vec![Scalar::Str("b".into()), Scalar::Int(500)])
            .unwrap();
        let rows = client.select("select * from Flows").unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.max_tstamp().is_some());

        let notes = wait_for_notifications(&client, 1);
        assert_eq!(notes.len(), 1);
        assert_eq!(notes[0].automaton, id);
        assert_eq!(notes[0].values[0], Scalar::Str("b".into()));

        client.unregister_automaton(id).unwrap();
        assert!(client.unregister_automaton(id).is_err());
    }

    #[test]
    fn tcp_end_to_end_round_trip() {
        let cache = CacheBuilder::new().build();
        let server = crate::server::RpcServer::bind(cache, "127.0.0.1:0").unwrap();
        let client = CacheClient::connect(server.local_addr()).unwrap();
        client.execute("create table T (v integer)").unwrap();
        for i in 0..10 {
            client.insert("T", vec![Scalar::Int(i)]).unwrap();
        }
        let rows = client.select("select * from T where v >= 5").unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows.columns, vec!["v"]);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_complete_out_of_issue_order() {
        let cache = CacheBuilder::new().build();
        let server = crate::reactor::ReactorServer::bind(cache, "127.0.0.1:0").unwrap();
        let client = CacheClient::connect(server.local_addr()).unwrap();
        client.execute("create table T (v integer)").unwrap();
        // Issue a burst without waiting, then resolve newest-first.
        let pendings: Vec<PendingReply> = (0..32)
            .map(|i| {
                client
                    .begin_request(Request::Insert {
                        table: "T".into(),
                        values: vec![Scalar::Int(i)],
                        upsert: false,
                    })
                    .unwrap()
            })
            .collect();
        let mut tstamps: Vec<u64> = pendings
            .into_iter()
            .rev()
            .map(|p| match p.wait().unwrap() {
                CacheReply::Inserted { tstamp, .. } => tstamp,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        tstamps.sort_unstable();
        tstamps.dedup();
        assert_eq!(tstamps.len(), 32);
        assert_eq!(client.select("select * from T").unwrap().len(), 32);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn the_pipeline_window_bounds_in_flight_requests() {
        let cache = CacheBuilder::new().build();
        let client = CacheClient::connect_inproc(cache);
        client.set_pipeline_window(2);
        client.execute("create table T (v integer)").unwrap();
        let a = client.begin_execute("select * from T").unwrap();
        let b = client.begin_execute("select * from T").unwrap();
        // The window is full: a third begin must block until a slot
        // frees. Prove it from another thread.
        let (probe_tx, probe_rx) = unbounded();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let c = client.begin_execute("select * from T").unwrap();
                probe_tx.send(()).unwrap();
                c.wait().unwrap();
            });
            assert!(probe_rx.recv_timeout(Duration::from_millis(200)).is_err());
            a.wait().unwrap();
            assert!(probe_rx.recv_timeout(Duration::from_secs(5)).is_ok());
            b.wait().unwrap();
        });
    }

    #[test]
    fn an_abandoned_pending_reply_releases_its_window_slot() {
        let cache = CacheBuilder::new().build();
        let client = CacheClient::connect_inproc(cache);
        client.set_pipeline_window(1);
        drop(client.begin_request(Request::Ping).unwrap());
        // If the slot leaked, this second begin would deadlock.
        client.begin_request(Request::Ping).unwrap().wait().unwrap();
    }

    #[test]
    fn remote_errors_are_surfaced() {
        let cache = CacheBuilder::new().build();
        let client = CacheClient::connect_inproc(cache);
        assert!(matches!(
            client.execute("select * from Missing"),
            Err(Error::Remote { .. })
        ));
        assert!(matches!(
            client.register_automaton("subscribe f to Missing; behavior { }"),
            Err(Error::Remote { .. })
        ));
        assert!(matches!(
            client.register_automaton("this is not gapl"),
            Err(Error::Remote { .. })
        ));
    }

    #[test]
    fn insert_batch_round_trips_and_notifies_in_order() {
        let cache = CacheBuilder::new().build();
        let client = CacheClient::connect_inproc(cache);
        client.execute("create table T (v integer)").unwrap();
        let id = client
            .register_automaton("subscribe t to T; behavior { send(t.v); }")
            .unwrap();
        let tstamps = client
            .insert_batch("T", (0..50).map(|i| vec![Scalar::Int(i)]).collect())
            .unwrap();
        assert_eq!(tstamps.len(), 50);
        let notes = wait_for_notifications(&client, 50);
        let got: Vec<i64> = notes
            .iter()
            .map(|n| n.values[0].as_int().unwrap())
            .collect();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        assert!(notes.iter().all(|n| n.automaton == id));
        // Batch errors surface as remote errors.
        assert!(matches!(
            client.insert_batch("Missing", vec![vec![Scalar::Int(1)]]),
            Err(Error::Remote { .. })
        ));
    }

    #[test]
    fn upsert_batch_applies_every_row_with_update_semantics() {
        let cache = CacheBuilder::new().build();
        let client = CacheClient::connect_inproc(cache);
        client
            .execute("create persistenttable U (k varchar(8) primary key, v integer)")
            .unwrap();
        client
            .upsert_batch(
                "U",
                vec![
                    vec![Scalar::Str("a".into()), Scalar::Int(1)],
                    vec![Scalar::Str("a".into()), Scalar::Int(2)],
                    vec![Scalar::Str("b".into()), Scalar::Int(3)],
                ],
            )
            .unwrap();
        let rows = client.select("select * from U").unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn upsert_over_rpc_updates_rows_in_place() {
        let cache = CacheBuilder::new().build();
        let client = CacheClient::connect_inproc(cache);
        client
            .execute("create persistenttable U (k varchar(8) primary key, v integer)")
            .unwrap();
        client
            .upsert("U", vec![Scalar::Str("a".into()), Scalar::Int(1)])
            .unwrap();
        client
            .upsert("U", vec![Scalar::Str("a".into()), Scalar::Int(2)])
            .unwrap();
        let rows = client.select("select * from U").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows.rows[0].values[1], Scalar::Int(2));
    }

    #[test]
    fn client_disconnect_unregisters_its_automata() {
        let cache = CacheBuilder::new().build();
        let client = CacheClient::connect_inproc(cache.clone());
        client.execute("create table T (v integer)").unwrap();
        client
            .register_automaton("subscribe t to T; behavior { }")
            .unwrap();
        assert_eq!(cache.automata().len(), 1);
        drop(client);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !cache.automata().is_empty() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(cache.automata().is_empty());
    }

    #[test]
    fn idempotency_classification_matches_the_retry_contract() {
        assert!(is_idempotent(&Request::Ping));
        assert!(is_idempotent(&Request::ServerStats));
        assert!(is_idempotent(&Request::Health));
        assert!(is_idempotent(&Request::Metrics));
        assert!(!wants_token(&Request::Ping));
        assert!(!wants_token(&Request::Health));
        assert!(!wants_token(&Request::Metrics));
        assert!(wants_token(&Request::Execute {
            command: "insert into T values (1)".into()
        }));
        assert!(!wants_token(&Request::Execute {
            command: "select * from T".into()
        }));
        assert!(wants_token(&Request::Insert {
            table: "T".into(),
            values: vec![],
            upsert: false
        }));
        assert!(!wants_token(&Request::Insert {
            table: "T".into(),
            values: vec![],
            upsert: true
        }));
        assert!(!wants_token(&Request::RegisterAutomaton {
            source: String::new()
        }));
        assert!(is_idempotent(&Request::Execute {
            command: "  SELECT * from T".into()
        }));
        assert!(!is_idempotent(&Request::Execute {
            command: "insert into T values (1)".into()
        }));
        assert!(is_idempotent(&Request::Insert {
            table: "T".into(),
            values: vec![],
            upsert: true
        }));
        assert!(!is_idempotent(&Request::Insert {
            table: "T".into(),
            values: vec![],
            upsert: false
        }));
        assert!(!is_idempotent(&Request::RegisterAutomaton {
            source: String::new()
        }));
        assert!(!is_idempotent(&Request::UnregisterAutomaton { id: 1 }));
    }
}
