//! Durability and crash-recovery tests for the write-ahead log.
//!
//! The centrepiece is a differential proptest: random mutation
//! histories are applied to a durable cache *and* to an in-memory
//! model, the log is then "crashed" — truncated or corrupted at an
//! arbitrary byte offset — and recovery must reproduce exactly the
//! model state after the records that survived the crash, byte for
//! byte (rows, scan order, timestamps). The satellite tests cover the
//! named edge cases: empty log, snapshot-only recovery, torn tail
//! records, double-recovery idempotence, and recovery with registered
//! automata (replay never re-fires a behavior).

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use proptest::prelude::*;

use gapl::event::Scalar;
use pscache::wal::{count_complete_records, log_path};
use pscache::{Cache, CacheBuilder, Query, SyncPolicy};

/// A fresh, empty scratch directory under the system temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("pscache-durability-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// `select * from {table}` as `(values, tstamp)` pairs in scan order.
fn dump(cache: &Cache, table: &str) -> Vec<(Vec<Scalar>, u64)> {
    cache
        .select(&Query::new(table))
        .expect("select * succeeds")
        .rows
        .into_iter()
        .map(|row| (row.values, row.tstamp))
        .collect()
}

#[test]
fn recovering_an_empty_directory_yields_a_working_fresh_cache() {
    let dir = scratch("empty-dir");
    let cache = Cache::recover(&dir).expect("recover from nothing");
    assert!(cache.table_names().contains(&"Timer".to_string()));
    cache
        .execute("create persistenttable KV (k varchar(8) primary key, v integer)")
        .unwrap();
    cache
        .insert("KV", vec![Scalar::Str("a".into()), Scalar::Int(1)])
        .unwrap();
    assert_eq!(cache.wal_stats().unwrap().replayed, 0);
    drop(cache);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn empty_log_recovers_ddl_but_no_rows() {
    let dir = scratch("empty-log");
    {
        let cache = Cache::recover(&dir).unwrap();
        cache
            .execute("create persistenttable KV (k varchar(8) primary key, v integer)")
            .unwrap();
        cache.execute("create table S (v integer)").unwrap();
    }
    let cache = Cache::recover(&dir).unwrap();
    assert_eq!(cache.table_len("KV").unwrap(), 0);
    assert_eq!(cache.table_len("S").unwrap(), 0);
    assert!(cache.table_names().contains(&"KV".to_string()));
    drop(cache);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_only_recovery_replays_zero_records() {
    let dir = scratch("snapshot-only");
    {
        let cache = Cache::recover(&dir).unwrap();
        cache
            .execute("create persistenttable KV (k varchar(8) primary key, v integer)")
            .unwrap();
        for (k, v) in [("a", 1), ("b", 2), ("c", 3)] {
            cache
                .insert("KV", vec![Scalar::Str(k.into()), Scalar::Int(v)])
                .unwrap();
        }
        cache.checkpoint().unwrap();
    }
    let cache = Cache::recover(&dir).unwrap();
    // Everything came from the snapshot; the logs were truncated.
    assert_eq!(cache.wal_stats().unwrap().replayed, 0);
    assert_eq!(cache.table_len("KV").unwrap(), 3);
    assert_eq!(
        cache.lookup("KV", "b").unwrap().unwrap().values()[1],
        Scalar::Int(2)
    );
    drop(cache);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn log_tail_after_a_checkpoint_is_replayed_on_top_of_the_snapshot() {
    let dir = scratch("snapshot-plus-tail");
    let pre;
    {
        let cache = Cache::recover(&dir).unwrap();
        cache
            .execute("create persistenttable KV (k varchar(8) primary key, v integer)")
            .unwrap();
        cache
            .insert("KV", vec![Scalar::Str("a".into()), Scalar::Int(1)])
            .unwrap();
        cache.checkpoint().unwrap();
        cache
            .upsert("KV", vec![Scalar::Str("a".into()), Scalar::Int(10)])
            .unwrap();
        cache
            .insert("KV", vec![Scalar::Str("b".into()), Scalar::Int(2)])
            .unwrap();
        cache.remove("KV", "missing").unwrap();
        pre = dump(&cache, "KV");
    }
    let cache = Cache::recover(&dir).unwrap();
    let stats = cache.wal_stats().unwrap();
    assert_eq!(
        stats.replayed, 3,
        "upsert + insert + remove live in the tail"
    );
    assert_eq!(dump(&cache, "KV"), pre);
    drop(cache);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_torn_tail_record_is_detected_and_dropped() {
    let dir = scratch("torn-tail");
    let pre;
    {
        let cache = CacheBuilder::new()
            .shard_count(1)
            .durability(&dir)
            .open()
            .unwrap();
        cache
            .execute("create persistenttable KV (k varchar(8) primary key, v integer)")
            .unwrap();
        cache.checkpoint().unwrap();
        for (k, v) in [("a", 1), ("b", 2), ("c", 3)] {
            cache
                .insert("KV", vec![Scalar::Str(k.into()), Scalar::Int(v)])
                .unwrap();
        }
        pre = dump(&cache, "KV");
    }
    // Tear the final record: chop a few bytes off the single shard log.
    let log = log_path(&dir, 0);
    let bytes = fs::read(&log).unwrap();
    assert_eq!(count_complete_records(&bytes), 3);
    fs::write(&log, &bytes[..bytes.len() - 3]).unwrap();

    let cache = CacheBuilder::new()
        .shard_count(1)
        .durability(&dir)
        .open()
        .unwrap();
    assert_eq!(cache.wal_stats().unwrap().replayed, 2);
    assert_eq!(dump(&cache, "KV"), pre[..2].to_vec());
    // The recovered log accepts new appends after the torn tail.
    cache
        .insert("KV", vec![Scalar::Str("d".into()), Scalar::Int(4)])
        .unwrap();
    drop(cache);

    let cache = CacheBuilder::new()
        .shard_count(1)
        .durability(&dir)
        .open()
        .unwrap();
    assert_eq!(cache.table_len("KV").unwrap(), 3);
    drop(cache);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn double_recovery_is_idempotent() {
    let dir = scratch("double-recovery");
    {
        let cache = Cache::recover(&dir).unwrap();
        cache
            .execute("create persistenttable KV (k varchar(8) primary key, v integer)")
            .unwrap();
        for i in 0..10i64 {
            cache
                .upsert(
                    "KV",
                    vec![Scalar::Str(format!("k{}", i % 4).into()), Scalar::Int(i)],
                )
                .unwrap();
        }
        cache.remove("KV", "k1").unwrap();
    }
    let first = {
        let cache = Cache::recover(&dir).unwrap();
        dump(&cache, "KV")
    };
    let second = {
        let cache = Cache::recover(&dir).unwrap();
        dump(&cache, "KV")
    };
    assert_eq!(first, second);
    assert_eq!(first.len(), 3);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn recovery_never_refires_automata() {
    let dir = scratch("no-refire");
    {
        let cache = Cache::recover(&dir).unwrap();
        cache
            .execute("create persistenttable KV (k varchar(8) primary key, v integer)")
            .unwrap();
        for (k, v) in [("a", 100), ("b", 200)] {
            cache
                .insert("KV", vec![Scalar::Str(k.into()), Scalar::Int(v)])
                .unwrap();
        }
    }
    let cache = Cache::recover(&dir).unwrap();
    assert_eq!(cache.table_len("KV").unwrap(), 2);
    // Register *after* recovery — exactly what an application restarting
    // alongside the cache would do. Replayed rows must not reach it.
    let (id, rx) = cache
        .register_automaton("subscribe k to KV; behavior { send(k.v); }")
        .unwrap();
    assert!(cache.quiesce(Duration::from_secs(5)));
    assert_eq!(rx.try_iter().count(), 0, "replay must not be published");
    let (delivered, _) = cache.automaton_progress(id).unwrap();
    assert_eq!(delivered, 0);
    // Live traffic still flows.
    cache
        .upsert("KV", vec![Scalar::Str("a".into()), Scalar::Int(300)])
        .unwrap();
    assert!(cache.quiesce(Duration::from_secs(5)));
    let notes: Vec<_> = rx.try_iter().collect();
    assert_eq!(notes.len(), 1);
    assert_eq!(notes[0].values[0], Scalar::Int(300));
    drop(cache);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn ephemeral_streams_are_empty_after_recovery() {
    let dir = scratch("ephemeral-empty");
    {
        let cache = Cache::recover(&dir).unwrap();
        cache
            .execute("create table S (v integer) capacity 128")
            .unwrap();
        for i in 0..50i64 {
            cache.insert("S", vec![Scalar::Int(i)]).unwrap();
        }
        assert_eq!(cache.table_len("S").unwrap(), 50);
    }
    let cache = Cache::recover(&dir).unwrap();
    // The stream exists (its DDL is durable) but holds no rows: streams
    // are in-memory by design and are documented to come back empty.
    assert_eq!(cache.table_len("S").unwrap(), 0);
    cache.insert("S", vec![Scalar::Int(99)]).unwrap();
    assert_eq!(cache.table_len("S").unwrap(), 1);
    drop(cache);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn every_sync_policy_recovers_acknowledged_writes() {
    for (name, policy) in [
        ("immediate", SyncPolicy::Immediate),
        ("group", SyncPolicy::Group),
        ("osonly", SyncPolicy::OsOnly),
    ] {
        let dir = scratch(&format!("policy-{name}"));
        {
            let cache = CacheBuilder::new()
                .durability(&dir)
                .sync_policy(policy)
                .open()
                .unwrap();
            cache
                .execute("create persistenttable KV (k varchar(8) primary key, v integer)")
                .unwrap();
            for (k, v) in [("a", 1), ("b", 2)] {
                cache
                    .insert("KV", vec![Scalar::Str(k.into()), Scalar::Int(v)])
                    .unwrap();
            }
            // OsOnly defers the disk flush to an explicit durability
            // point (the RPC server's flush-before-ack, or this).
            cache.flush_wal().unwrap();
        }
        let cache = Cache::recover(&dir).unwrap();
        assert_eq!(cache.table_len("KV").unwrap(), 2, "policy {name}");
        drop(cache);
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn concurrent_inserters_group_commit_and_recover_exactly() {
    let dir = scratch("group-commit");
    let threads = 8;
    let per_thread = 25i64;
    {
        let cache = CacheBuilder::new().durability(&dir).open().unwrap();
        cache
            .execute("create persistenttable KV (k varchar(16) primary key, v integer)")
            .unwrap();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = cache.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        cache
                            .insert(
                                "KV",
                                vec![Scalar::Str(format!("t{t}-{i}").into()), Scalar::Int(i)],
                            )
                            .unwrap();
                    }
                });
            }
        });
        let stats = cache.wal_stats().unwrap();
        // + 2: the Timer topic's DDL and the KV table's DDL are logged too.
        assert_eq!(stats.records, (threads as u64) * (per_thread as u64) + 2);
        assert!(
            stats.syncs <= stats.records,
            "group commit never syncs more than once per record"
        );
    }
    let cache = Cache::recover(&dir).unwrap();
    assert_eq!(
        cache.table_len("KV").unwrap(),
        (threads * per_thread as usize),
    );
    drop(cache);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn automatic_checkpoints_truncate_the_log() {
    let dir = scratch("auto-checkpoint");
    {
        let cache = CacheBuilder::new()
            .durability(&dir)
            .checkpoint_every(10)
            .open()
            .unwrap();
        cache
            .execute("create persistenttable KV (k varchar(8) primary key, v integer)")
            .unwrap();
        for i in 0..25i64 {
            cache
                .upsert(
                    "KV",
                    vec![Scalar::Str(format!("k{i}").into()), Scalar::Int(i)],
                )
                .unwrap();
        }
        let stats = cache.wal_stats().unwrap();
        assert!(stats.checkpoints >= 2, "26 records / threshold 10");
    }
    let cache = Cache::recover(&dir).unwrap();
    let stats = cache.wal_stats().unwrap();
    assert!(
        stats.replayed <= 10,
        "checkpoints bound the replayable tail, got {}",
        stats.replayed
    );
    assert_eq!(cache.table_len("KV").unwrap(), 25);
    drop(cache);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_zero_filled_tail_is_treated_as_torn_not_as_a_record() {
    // Filesystems can extend a file with zeroes on power failure; a
    // zero-filled frame header reads as len=0/crc=0 and crc32("") == 0,
    // so only an explicit empty-payload rejection keeps recovery from
    // choking on it.
    let dir = scratch("zero-tail");
    let pre;
    {
        let cache = CacheBuilder::new()
            .shard_count(1)
            .durability(&dir)
            .open()
            .unwrap();
        cache
            .execute("create persistenttable KV (k varchar(8) primary key, v integer)")
            .unwrap();
        for (k, v) in [("a", 1), ("b", 2)] {
            cache
                .insert("KV", vec![Scalar::Str(k.into()), Scalar::Int(v)])
                .unwrap();
        }
        pre = dump(&cache, "KV");
    }
    let log = log_path(&dir, 0);
    let mut bytes = fs::read(&log).unwrap();
    bytes.extend_from_slice(&[0u8; 512]);
    fs::write(&log, &bytes).unwrap();

    let cache = CacheBuilder::new()
        .shard_count(1)
        .durability(&dir)
        .open()
        .expect("a zero-filled tail must not make the log unrecoverable");
    assert_eq!(dump(&cache, "KV"), pre);
    // The truncated-on-open log accepts and persists new writes.
    cache
        .insert("KV", vec![Scalar::Str("c".into()), Scalar::Int(3)])
        .unwrap();
    drop(cache);
    let cache = Cache::recover(&dir).unwrap();
    assert_eq!(cache.table_len("KV").unwrap(), 3);
    drop(cache);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn an_interrupted_checkpoint_is_completed_without_losing_the_rotated_log() {
    // Simulate a crash after checkpoint phase 1 (rotate) but before the
    // snapshot landed: the rotated file holds acknowledged records that
    // no snapshot covers. Recovery must replay them, and the completing
    // checkpoint must never clobber them.
    let dir = scratch("interrupted-checkpoint");
    {
        let cache = CacheBuilder::new()
            .shard_count(1)
            .durability(&dir)
            .open()
            .unwrap();
        cache
            .execute("create persistenttable KV (k varchar(8) primary key, v integer)")
            .unwrap();
        for (k, v) in [("a", 1), ("b", 2)] {
            cache
                .insert("KV", vec![Scalar::Str(k.into()), Scalar::Int(v)])
                .unwrap();
        }
    }
    let live = log_path(&dir, 0);
    let rotated = dir.join("wal-000.log.1");
    fs::rename(&live, &rotated).unwrap();

    let cache = CacheBuilder::new()
        .shard_count(1)
        .durability(&dir)
        .open()
        .unwrap();
    assert_eq!(cache.table_len("KV").unwrap(), 2);
    drop(cache);
    // The completing checkpoint moved everything into the snapshot and
    // retired the rotated file; the state must survive another recovery.
    assert!(!rotated.exists());
    let cache = Cache::recover(&dir).unwrap();
    assert_eq!(cache.table_len("KV").unwrap(), 2);
    assert_eq!(
        cache.lookup("KV", "b").unwrap().unwrap().values()[1],
        Scalar::Int(2)
    );
    drop(cache);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn records_duplicated_across_rotated_and_live_logs_replay_once() {
    // Simulate a crash between "append live log onto a surviving rotated
    // file" and "truncate live log" (rotate_begin's no-clobber path):
    // the same records exist in both files. LSN dedup must apply each
    // exactly once — a double-applied plain insert would be a
    // duplicate-key error and an unrecoverable log.
    let dir = scratch("dup-records");
    {
        let cache = CacheBuilder::new()
            .shard_count(1)
            .durability(&dir)
            .open()
            .unwrap();
        cache
            .execute("create persistenttable KV (k varchar(8) primary key, v integer)")
            .unwrap();
        for (k, v) in [("a", 1), ("b", 2)] {
            cache
                .insert("KV", vec![Scalar::Str(k.into()), Scalar::Int(v)])
                .unwrap();
        }
    }
    let live = log_path(&dir, 0);
    fs::copy(&live, dir.join("wal-000.log.1")).unwrap();

    let cache = CacheBuilder::new()
        .shard_count(1)
        .durability(&dir)
        .open()
        .expect("duplicated records must not fail replay");
    assert_eq!(cache.table_len("KV").unwrap(), 2);
    assert_eq!(
        cache.wal_stats().unwrap().replayed,
        4,
        "Timer create + KV create + 2 inserts, each exactly once despite two copies on disk"
    );
    drop(cache);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn shrinking_the_shard_count_absorbs_and_reclaims_orphan_logs() {
    // Records written under a larger shard_count land in log files whose
    // index the smaller configuration will never append to. They must be
    // replayed, folded into the completing checkpoint's snapshot, and
    // their files reclaimed — not re-scanned forever.
    let dir = scratch("shrink-shards");
    {
        let cache = CacheBuilder::new()
            .shard_count(8)
            .durability(&dir)
            .open()
            .unwrap();
        cache
            .execute("create persistenttable KV (k varchar(8) primary key, v integer)")
            .unwrap();
        for i in 0..12i64 {
            cache
                .upsert(
                    "KV",
                    vec![Scalar::Str(format!("k{i}").into()), Scalar::Int(i)],
                )
                .unwrap();
        }
    }
    let cache = CacheBuilder::new()
        .shard_count(1)
        .durability(&dir)
        .open()
        .unwrap();
    assert_eq!(cache.table_len("KV").unwrap(), 12);
    drop(cache);
    // The completing checkpoint snapshotted everything; no wal file for
    // a shard index >= 1 may survive it.
    for shard in 1..8 {
        assert!(
            !log_path(&dir, shard).exists(),
            "orphan wal-{shard:03}.log must be reclaimed"
        );
    }
    let cache = CacheBuilder::new()
        .shard_count(1)
        .durability(&dir)
        .open()
        .unwrap();
    assert_eq!(cache.table_len("KV").unwrap(), 12);
    drop(cache);
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// The crash-recovery differential proptest.
// ---------------------------------------------------------------------------

/// One randomly generated mutation.
#[derive(Debug, Clone)]
enum Op {
    Insert { table: usize, key: u8, value: i64 },
    Upsert { table: usize, key: u8, value: i64 },
    Remove { table: usize, key: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0usize..2, 0u8..6, -100i64..100, 0u8..3).prop_map(|(table, key, value, kind)| match kind {
        0 => Op::Insert { table, key, value },
        1 => Op::Upsert { table, key, value },
        _ => Op::Remove { table, key },
    })
}

/// The in-memory model of one persistent table: rows in scan order.
type ModelTable = Vec<(String, i64, u64)>;

/// Model state of both tables, in the same shape as [`dump`].
fn model_dump(model: &[ModelTable; 2], table: usize) -> Vec<(Vec<Scalar>, u64)> {
    model[table]
        .iter()
        .map(|(k, v, ts)| (vec![Scalar::Str(k.as_str().into()), Scalar::Int(*v)], *ts))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Crash the log at an arbitrary byte offset (truncation — the torn
    /// final record of a real crash) and require recovery to equal the
    /// model state after exactly the records that survived.
    #[test]
    fn crash_at_any_byte_offset_recovers_the_exact_durable_prefix(
        ops in proptest::collection::vec(arb_op(), 0..40),
        cut_permille in 0u32..=1000,
    ) {
        let dir = scratch("proptest-crash");
        // states[r] = the model after the first r *logged* records.
        let mut states: Vec<[ModelTable; 2]> = Vec::new();
        let mut model: [ModelTable; 2] = [Vec::new(), Vec::new()];
        {
            let cache = CacheBuilder::new()
                .shard_count(1)
                .manual_clock()
                .durability(&dir)
                .open()
                .unwrap();
            cache.execute(
                "create persistenttable T0 (k varchar(8) primary key, v integer)").unwrap();
            cache.execute(
                "create persistenttable T1 (k varchar(8) primary key, v integer)").unwrap();
            // Move the DDL into the snapshot so the log contains exactly
            // one record per logged op below.
            cache.checkpoint().unwrap();
            states.push(model.clone());

            for op in &ops {
                cache.manual_clock().unwrap().advance(1);
                let now = cache.now();
                let logged = match op {
                    Op::Insert { table, key, value } => {
                        let name = format!("T{table}");
                        let k = format!("k{key}");
                        let exists = model[*table].iter().any(|(mk, _, _)| *mk == k);
                        let result = cache.insert(
                            &name,
                            vec![Scalar::Str(k.as_str().into()), Scalar::Int(*value)],
                        );
                        if exists {
                            prop_assert!(result.is_err(), "duplicate insert must fail");
                            false
                        } else {
                            prop_assert!(result.is_ok());
                            model[*table].push((k, *value, now));
                            true
                        }
                    }
                    Op::Upsert { table, key, value } => {
                        let name = format!("T{table}");
                        let k = format!("k{key}");
                        cache.upsert(
                            &name,
                            vec![Scalar::Str(k.as_str().into()), Scalar::Int(*value)],
                        ).unwrap();
                        model[*table].retain(|(mk, _, _)| *mk != k);
                        model[*table].push((k, *value, now));
                        true
                    }
                    Op::Remove { table, key } => {
                        let name = format!("T{table}");
                        let k = format!("k{key}");
                        cache.remove(&name, &k).unwrap();
                        model[*table].retain(|(mk, _, _)| *mk != k);
                        true
                    }
                };
                if logged {
                    states.push(model.clone());
                }
            }
        }

        // Crash: truncate the single shard log at an arbitrary offset.
        let log = log_path(&dir, 0);
        let bytes = fs::read(&log).unwrap();
        prop_assert_eq!(count_complete_records(&bytes), states.len() - 1);
        let cut = (bytes.len() * cut_permille as usize) / 1000;
        let survivors = count_complete_records(&bytes[..cut]);
        fs::write(&log, &bytes[..cut]).unwrap();

        let cache = CacheBuilder::new()
            .shard_count(1)
            .durability(&dir)
            .open()
            .unwrap();
        prop_assert_eq!(cache.wal_stats().unwrap().replayed as usize, survivors);
        let expected = &states[survivors];
        for table in 0..2 {
            prop_assert_eq!(
                dump(&cache, &format!("T{table}")),
                model_dump(expected, table),
                "table T{} after {} surviving records", table, survivors
            );
        }
        // The recovered cache still accepts durable writes.
        cache.upsert("T0", vec![Scalar::Str("post".into()), Scalar::Int(1)]).unwrap();
        drop(cache);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Flip one byte anywhere in the log: the checksum must stop replay
    /// at the corrupted record, recovering the records before it.
    #[test]
    fn corrupting_any_byte_recovers_the_prefix_before_it(
        ops in proptest::collection::vec(arb_op(), 1..25),
        flip_permille in 0u32..1000,
        flip_bit in 0u8..8,
    ) {
        let dir = scratch("proptest-corrupt");
        let mut states: Vec<[ModelTable; 2]> = Vec::new();
        let mut model: [ModelTable; 2] = [Vec::new(), Vec::new()];
        {
            let cache = CacheBuilder::new()
                .shard_count(1)
                .manual_clock()
                .durability(&dir)
                .open()
                .unwrap();
            cache.execute(
                "create persistenttable T0 (k varchar(8) primary key, v integer)").unwrap();
            cache.execute(
                "create persistenttable T1 (k varchar(8) primary key, v integer)").unwrap();
            cache.checkpoint().unwrap();
            states.push(model.clone());
            for op in &ops {
                cache.manual_clock().unwrap().advance(1);
                let now = cache.now();
                let logged = match op {
                    Op::Insert { table, key, value } => {
                        let name = format!("T{table}");
                        let k = format!("k{key}");
                        let exists = model[*table].iter().any(|(mk, _, _)| *mk == k);
                        if cache.insert(
                            &name,
                            vec![Scalar::Str(k.as_str().into()), Scalar::Int(*value)],
                        ).is_ok() {
                            prop_assert!(!exists);
                            model[*table].push((k, *value, now));
                            true
                        } else {
                            prop_assert!(exists);
                            false
                        }
                    }
                    Op::Upsert { table, key, value } => {
                        let name = format!("T{table}");
                        let k = format!("k{key}");
                        cache.upsert(
                            &name,
                            vec![Scalar::Str(k.as_str().into()), Scalar::Int(*value)],
                        ).unwrap();
                        model[*table].retain(|(mk, _, _)| *mk != k);
                        model[*table].push((k, *value, now));
                        true
                    }
                    Op::Remove { table, key } => {
                        let name = format!("T{table}");
                        let k = format!("k{key}");
                        cache.remove(&name, &k).unwrap();
                        model[*table].retain(|(mk, _, _)| *mk != k);
                        true
                    }
                };
                if logged {
                    states.push(model.clone());
                }
            }
        }

        let log = log_path(&dir, 0);
        let mut bytes = fs::read(&log).unwrap();
        // At least one op ran against an empty model, and every first op
        // logs (inserts cannot collide with nothing), so the log has at
        // least one record.
        prop_assert!(!bytes.is_empty());
        let flip_at = ((bytes.len() - 1) * flip_permille as usize) / 1000;
        // Records fully contained before the flipped byte survive; the
        // record the byte lands in fails its checksum and stops replay.
        let survivors = count_complete_records(&bytes[..flip_at]);
        bytes[flip_at] ^= 1 << flip_bit;
        fs::write(&log, &bytes).unwrap();

        let cache = CacheBuilder::new()
            .shard_count(1)
            .durability(&dir)
            .open()
            .unwrap();
        prop_assert_eq!(cache.wal_stats().unwrap().replayed as usize, survivors);
        let expected = &states[survivors];
        for table in 0..2 {
            prop_assert_eq!(
                dump(&cache, &format!("T{table}")),
                model_dump(expected, table),
                "table T{} after corruption at byte {}", table, flip_at
            );
        }
        drop(cache);
        let _ = fs::remove_dir_all(&dir);
    }
}
