//! Parsed representation of SQL-ish commands.

use gapl::event::{AttrType, Scalar};

use crate::query::Query;
use crate::table::TableKind;

/// A column definition in a `create table` command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: AttrType,
}

/// A parsed command, ready to be executed by
/// [`crate::cache::Cache::execute`].
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `create table` / `create persistenttable`.
    CreateTable {
        /// Table (topic) name.
        name: String,
        /// Ephemeral or persistent.
        kind: TableKind,
        /// Ordered column definitions.
        columns: Vec<ColumnDef>,
        /// Optional circular-buffer capacity (ephemeral tables only).
        capacity: Option<usize>,
    },
    /// `insert into ... values (...)` with a single row.
    Insert {
        /// Target table.
        table: String,
        /// Literal values, in schema order.
        values: Vec<Scalar>,
        /// Whether `on duplicate key update` was given.
        on_duplicate_update: bool,
    },
    /// `insert into ... values (...), (...), ...` with several rows; the
    /// cache applies the whole batch under one table-lock acquisition.
    InsertBatch {
        /// Target table.
        table: String,
        /// Literal rows, each in schema order.
        rows: Vec<Vec<Scalar>>,
        /// Whether `on duplicate key update` was given.
        on_duplicate_update: bool,
    },
    /// `select ...`.
    Select(Query),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_nodes_are_cloneable_and_comparable() {
        let c = Command::Insert {
            table: "T".into(),
            values: vec![Scalar::Int(1)],
            on_duplicate_update: false,
        };
        assert_eq!(c.clone(), c);
        let col = ColumnDef {
            name: "a".into(),
            ty: AttrType::Int,
        };
        assert_eq!(col.clone(), col);
    }
}
