//! Ownership rules: which partition a row belongs to, and the spec a
//! partition server enforces them with.
//!
//! The routing key of a row is the **display form of its first
//! column** — the same derivation as [`crate::table::primary_key`], so
//! a persistent table's upsert key and its routing key always agree:
//! every version of a keyed row lands on the same partition, and a
//! cluster-wide upsert is exactly a single-partition upsert. Ephemeral
//! rows have no upsert identity, so their first column simply spreads
//! them across the ring.
//!
//! A [`ClusterSpec`] installed on a partition server
//! ([`crate::Cache::set_cluster_spec`]) turns ownership into an
//! *enforced invariant*: an insert whose key hashes to another
//! partition is rejected with [`Error::WrongPartition`] before any row
//! is staged, carrying the owner's index so the RPC layer can answer
//! with a redirect instead of an opaque failure. Scatter-gather
//! correctness rests on this — a row that slipped onto two partitions
//! would be double-counted by every merged query.

use gapl::event::Scalar;

use super::ring::HashRing;
use crate::error::{Error, Result};

/// The routing key of a row: the display form of its first value.
/// Mirrors [`crate::table::primary_key`] (which works on stored
/// tuples; this works on not-yet-inserted value vectors).
#[must_use]
pub fn routing_key(values: &[Scalar]) -> String {
    match values.first() {
        Some(Scalar::Str(s)) => s.to_string(),
        Some(other) => other.to_string(),
        None => String::new(),
    }
}

/// One node's view of the cluster: the shared ring plus its own
/// partition index.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    ring: HashRing,
    index: usize,
}

impl ClusterSpec {
    /// The spec for partition `index` of a `partitions`-wide cluster.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range — a server enforcing ownership
    /// for a partition that does not exist rejects every write, which
    /// is strictly worse than failing at configuration time.
    #[must_use]
    pub fn new(partitions: usize, index: usize) -> ClusterSpec {
        assert!(
            index < partitions,
            "partition index {index} out of range for a {partitions}-partition cluster"
        );
        ClusterSpec {
            ring: HashRing::new(partitions),
            index,
        }
    }

    /// The shared ring.
    #[must_use]
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// This node's partition index.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Total partitions in the cluster.
    #[must_use]
    pub fn partitions(&self) -> usize {
        self.ring.partitions()
    }

    /// The partition that owns `key`.
    #[must_use]
    pub fn owner_of(&self, key: &str) -> usize {
        self.ring.partition_of(key)
    }

    /// Check that this node owns the row; on a miss, report the owner.
    ///
    /// # Errors
    ///
    /// [`Error::WrongPartition`] naming the owning partition.
    pub fn check_owned(&self, values: &[Scalar]) -> Result<()> {
        let owner = self.owner_of(&routing_key(values));
        if owner == self.index {
            Ok(())
        } else {
            Err(Error::WrongPartition {
                partition: owner as u64,
            })
        }
    }
}

/// Split a batch of rows into per-partition batches, remembering each
/// row's original position so per-partition replies (timestamps, in
/// practice) can be reassembled in the caller's row order.
#[must_use]
pub fn split_batch(ring: &HashRing, rows: Vec<Vec<Scalar>>) -> Vec<Vec<(usize, Vec<Scalar>)>> {
    let mut per: Vec<Vec<(usize, Vec<Scalar>)>> = vec![Vec::new(); ring.partitions()];
    for (ix, row) in rows.into_iter().enumerate() {
        let owner = ring.partition_of(&routing_key(&row));
        per[owner].push((ix, row));
    }
    per
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn routing_key_matches_primary_key_derivation() {
        use crate::table::primary_key;
        use gapl::event::{AttrType, Schema, Tuple};
        let schema = Arc::new(
            Schema::new("T", vec![("name", AttrType::Str), ("n", AttrType::Int)]).unwrap(),
        );
        for values in [
            vec![Scalar::Str(Arc::from("alpha")), Scalar::Int(1)],
            vec![Scalar::Str(Arc::from("")), Scalar::Int(2)],
        ] {
            let tuple = Tuple::new(Arc::clone(&schema), values.clone(), 7).unwrap();
            assert_eq!(routing_key(&values), primary_key(&tuple).to_string());
        }
        let ints = Arc::new(Schema::new("N", vec![("n", AttrType::Int)]).unwrap());
        let values = vec![Scalar::Int(42)];
        let tuple = Tuple::new(ints, values.clone(), 7).unwrap();
        assert_eq!(routing_key(&values), primary_key(&tuple).to_string());
    }

    #[test]
    fn check_owned_accepts_own_keys_and_redirects_others() {
        let spec0 = ClusterSpec::new(2, 0);
        let spec1 = ClusterSpec::new(2, 1);
        let mut seen = [false, false];
        for i in 0..64 {
            let values = vec![Scalar::Str(Arc::from(format!("k{i}").as_str()))];
            let owner = spec0.owner_of(&routing_key(&values));
            seen[owner] = true;
            let (own, other) = if owner == 0 {
                (&spec0, &spec1)
            } else {
                (&spec1, &spec0)
            };
            assert!(own.check_owned(&values).is_ok());
            match other.check_owned(&values) {
                Err(Error::WrongPartition { partition }) => {
                    assert_eq!(partition, owner as u64);
                }
                other => panic!("expected WrongPartition, got {other:?}"),
            }
        }
        assert!(seen[0] && seen[1], "64 keys never hit both partitions");
    }

    #[test]
    fn split_batch_preserves_original_positions() {
        let ring = HashRing::new(3);
        let rows: Vec<Vec<Scalar>> = (0..50)
            .map(|i| vec![Scalar::Int(i), Scalar::Int(i * 10)])
            .collect();
        let split = split_batch(&ring, rows.clone());
        let mut seen: Vec<Option<Vec<Scalar>>> = vec![None; rows.len()];
        for (p, part) in split.iter().enumerate() {
            for (ix, row) in part {
                assert_eq!(ring.partition_of(&routing_key(row)), p);
                assert!(seen[*ix].replace(row.clone()).is_none());
            }
        }
        for (ix, row) in rows.iter().enumerate() {
            assert_eq!(seen[ix].as_ref(), Some(row));
        }
    }
}
