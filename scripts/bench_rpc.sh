#!/usr/bin/env sh
# RPC throughput snapshot: the event-driven reactor serves the same
# small windowed select to 1/16/256/1024 concurrent connections, serial
# (one request per round trip) vs pipelined (32 correlated requests in
# flight per connection). Writes BENCH_rpc.json at the repository root
# and enforces one acceptance floor:
#
#   rpc_speedup_16 >= 10    sixteen pipelined connections must clear at
#                           least 10x the ~550 reads/sec serial
#                           windowed-select ceiling recorded by the
#                           replication snapshot — the per-connection
#                           read ceiling is actually broken, not merely
#                           refactored around
#
# Floors are enforced by the bench crate's `check_floor` binary: a
# missing file, missing key, or unparsable metric is a hard failure —
# a bench that did not produce its number must never count as a pass.
set -eu

cd "$(dirname "$0")/.."

echo "==> snapshot: BENCH_rpc.json"
cargo run --release -p cep_bench --bin bench_rpc

cargo run --release -q -p cep_bench --bin check_floor -- \
    BENCH_rpc.json rpc_speedup_16 10.0 \
    "pipelined/baseline speedup at 16 connections"

echo "rpc snapshot complete"
