//! A black-box test suite for the GAPL language as a whole: programs are
//! compiled from source and executed against a [`RecordingHost`], plus
//! property-based tests of the lexer, the aggregate types and the
//! "frequent" guarantee.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use gapl::event::{AttrType, Scalar, Schema, Timestamp, Tuple};
use gapl::token::TokenKind;
use gapl::value::Value;
use gapl::vm::{RecordingHost, Vm};

fn schema(name: &str, attrs: Vec<(&str, AttrType)>) -> Arc<Schema> {
    Arc::new(Schema::new(name, attrs).expect("valid schema"))
}

fn run_program(source: &str, events: &[(&str, Tuple)]) -> (Vm, RecordingHost) {
    let program = Arc::new(gapl::compile(source).expect("program compiles"));
    let mut vm = Vm::new(program);
    let mut host = RecordingHost::default();
    vm.run_initialization(&mut host).expect("initialization");
    for (topic, event) in events {
        vm.run_behavior(topic, event, &mut host).expect("behavior");
    }
    (vm, host)
}

fn int_event(schema: &Arc<Schema>, field_values: Vec<Scalar>, at: Timestamp) -> Tuple {
    Tuple::new(Arc::clone(schema), field_values, at).expect("valid tuple")
}

#[test]
fn string_concatenation_and_conversions() {
    let s = schema("T", vec![("v", AttrType::Int)]);
    let src = r#"
        subscribe t to T;
        string msg;
        real r;
        int i;
        behavior {
            r = float(t.v) / 4.0;
            i = int(r * 100.0);
            msg = String('v=', t.v, ' r=', r, ' i=', i);
            send(msg);
        }
    "#;
    let (_vm, host) = run_program(src, &[("T", int_event(&s, vec![Scalar::Int(10)], 1))]);
    assert_eq!(host.sent.len(), 1);
    assert_eq!(host.sent[0][0], Scalar::Str("v=10 r=2.5 i=250".into()));
}

#[test]
fn min_max_abs_and_remainder() {
    let s = schema("T", vec![("v", AttrType::Int)]);
    let src = r#"
        subscribe t to T;
        int a, b, c, d;
        behavior {
            a = min(t.v, 10);
            b = max(t.v, 10);
            c = abs(0 - t.v);
            d = t.v % 7;
            send(a, b, c, d);
        }
    "#;
    let (_vm, host) = run_program(src, &[("T", int_event(&s, vec![Scalar::Int(23)], 1))]);
    assert_eq!(
        host.sent[0],
        vec![
            Scalar::Int(10),
            Scalar::Int(23),
            Scalar::Int(23),
            Scalar::Int(2)
        ]
    );
}

#[test]
fn nested_while_loops_and_map_iteration() {
    let s = schema("T", vec![("n", AttrType::Int)]);
    let src = r#"
        subscribe t to T;
        map m;
        iterator it;
        identifier id;
        int i, j, total;
        initialization { m = Map(int); }
        behavior {
            i = 0;
            while (i < t.n) {
                j = 0;
                while (j < i) {
                    j += 1;
                }
                insert(m, Identifier('k', i), j);
                i += 1;
            }
            total = 0;
            it = Iterator(m);
            while (hasNext(it)) {
                id = next(it);
                total += lookup(m, id);
            }
            send(total, mapSize(m));
        }
    "#;
    let (_vm, host) = run_program(src, &[("T", int_event(&s, vec![Scalar::Int(5)], 1))]);
    // 0 + 1 + 2 + 3 + 4 = 10 over 5 entries.
    assert_eq!(host.sent[0], vec![Scalar::Int(10), Scalar::Int(5)]);
}

#[test]
fn windows_of_rows_and_seconds_behave_differently() {
    let s = schema("T", vec![("v", AttrType::Int)]);
    let src = r#"
        subscribe t to T;
        window by_rows;
        window by_time;
        initialization {
            by_rows = Window(int, ROWS, 3);
            by_time = Window(int, SECS, 10);
        }
        behavior {
            append(by_rows, t.v);
            append(by_time, t.v);
            send(winSize(by_rows), winSize(by_time));
        }
    "#;
    let program = Arc::new(gapl::compile(src).unwrap());
    let mut vm = Vm::new(program);
    let mut host = RecordingHost::default();
    vm.run_initialization(&mut host).unwrap();
    // Five events, one every 4 seconds: the ROWS window caps at 3 items,
    // the 10-second window holds at most 3 (t, t-4, t-8).
    for i in 0..5i64 {
        host.clock = (i as u64) * 4_000_000_000;
        let ev = int_event(&s, vec![Scalar::Int(i)], host.clock);
        vm.run_behavior("T", &ev, &mut host).unwrap();
    }
    let sizes: Vec<(i64, i64)> = host
        .sent
        .iter()
        .map(|v| (v[0].as_int().unwrap(), v[1].as_int().unwrap()))
        .collect();
    assert_eq!(sizes, vec![(1, 1), (2, 2), (3, 3), (3, 3), (3, 3)]);
}

#[test]
fn least_squares_slope_over_a_window_detects_trends() {
    let s = schema("T", vec![("v", AttrType::Real)]);
    let src = r#"
        subscribe t to T;
        window w;
        real slope;
        initialization { w = Window(real, ROWS, 100); }
        behavior {
            append(w, t.v);
            slope = lsqSlope(w);
            send(slope);
        }
    "#;
    let program = Arc::new(gapl::compile(src).unwrap());
    let mut vm = Vm::new(program);
    let mut host = RecordingHost::default();
    vm.run_initialization(&mut host).unwrap();
    for i in 0..10i64 {
        host.clock = i as u64 * 1_000_000_000;
        let ev = int_event(&s, vec![Scalar::Real(2.0 * i as f64)], host.clock);
        vm.run_behavior("T", &ev, &mut host).unwrap();
    }
    // With x in seconds and y = 2x, the fitted slope converges to 2.
    let last = host.sent.last().unwrap()[0].as_real().unwrap();
    assert!((last - 2.0).abs() < 1e-6, "slope was {last}");
}

#[test]
fn delete_is_accepted_and_harmless() {
    let s = schema("T", vec![("v", AttrType::Int)]);
    let src = r#"
        subscribe t to T;
        sequence s;
        behavior { s = Sequence(t.v); delete(s); send(t.v); }
    "#;
    let (_vm, host) = run_program(src, &[("T", int_event(&s, vec![Scalar::Int(3)], 1))]);
    assert_eq!(host.sent.len(), 1);
}

#[test]
fn runtime_errors_carry_useful_messages() {
    let s = schema("T", vec![("v", AttrType::Int)]);
    let cases = [
        (
            "subscribe t to T; int x; behavior { x = seqElement(Sequence(1), 5); }",
            "out of bounds",
        ),
        (
            "subscribe t to T; int x; behavior { x = lookup(5, Identifier('k')); }",
            "expects a map",
        ),
        (
            "subscribe t to T; behavior { publish(42, 1); }",
            "topic name",
        ),
        (
            "subscribe t to T; int x; behavior { x = int('not a number'); }",
            "cannot parse",
        ),
        (
            "subscribe t to T; window w; behavior { w = Window(int, 'FURLONGS', 3); }",
            "SECS or ROWS",
        ),
    ];
    for (src, expected) in cases {
        let program = Arc::new(gapl::compile(src).expect("compiles"));
        let mut vm = Vm::new(program);
        let mut host = RecordingHost::default();
        vm.run_initialization(&mut host).unwrap();
        let err = vm
            .run_behavior("T", &int_event(&s, vec![Scalar::Int(1)], 1), &mut host)
            .unwrap_err();
        assert!(
            err.to_string().contains(expected),
            "error `{err}` should mention `{expected}` for `{src}`"
        );
    }
}

#[test]
fn an_automaton_processes_interleaved_topics_in_delivery_order() {
    let a = schema("A", vec![("v", AttrType::Int)]);
    let b = schema("B", vec![("v", AttrType::Int)]);
    let src = r#"
        subscribe x to A;
        subscribe y to B;
        string log;
        initialization { log = ''; }
        behavior {
            if (currentTopic() == 'A')
                log = String(log, 'a', x.v);
            else
                log = String(log, 'b', y.v);
        }
    "#;
    let events = vec![
        ("A", int_event(&a, vec![Scalar::Int(1)], 1)),
        ("B", int_event(&b, vec![Scalar::Int(2)], 2)),
        ("A", int_event(&a, vec![Scalar::Int(3)], 3)),
    ];
    let (vm, _host) = run_program(src, &events);
    assert_eq!(vm.local("log").unwrap().as_text().unwrap(), "a1b2a3");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Integer and real literals survive the lexer unchanged.
    #[test]
    fn numeric_literals_round_trip_through_the_lexer(value in -1_000_000_000i64..1_000_000_000) {
        let tokens = gapl::lexer::lex(&format!("{value}")).unwrap();
        match (&tokens[0].kind, value < 0) {
            (TokenKind::Int(i), false) => prop_assert_eq!(*i, value),
            (TokenKind::Minus, true) => match &tokens[1].kind {
                TokenKind::Int(i) => prop_assert_eq!(*i, -value),
                other => return Err(TestCaseError::fail(format!("unexpected token {other:?}"))),
            },
            other => return Err(TestCaseError::fail(format!("unexpected token {other:?}"))),
        }
    }

    /// Identifier-looking strings lex as a single identifier token.
    #[test]
    fn identifiers_lex_as_single_tokens(name in "[a-zA-Z][a-zA-Z0-9_]{0,20}") {
        let tokens = gapl::lexer::lex(&name).unwrap();
        prop_assert_eq!(tokens.len(), 2); // the identifier (or keyword) + EOF
    }

    /// String literals round trip (for characters that need no escaping).
    #[test]
    fn string_literals_round_trip(text in "[a-zA-Z0-9 .,;:_-]{0,40}") {
        let tokens = gapl::lexer::lex(&format!("'{text}'")).unwrap();
        match &tokens[0].kind {
            TokenKind::Str(s) => prop_assert_eq!(s, &text),
            other => return Err(TestCaseError::fail(format!("unexpected token {other:?}"))),
        }
    }

    /// A ROWS window never holds more than its capacity, and always holds
    /// the most recent items.
    #[test]
    fn rows_windows_hold_the_most_recent_suffix(
        values in proptest::collection::vec(-1000i64..1000, 1..60),
        capacity in 1usize..10,
    ) {
        let mut w = gapl::value::WindowData::rows(gapl::value::DeclType::Int, capacity);
        for (i, v) in values.iter().enumerate() {
            w.append(i as u64, Value::Int(*v));
        }
        prop_assert!(w.len() <= capacity);
        let got: Vec<i64> = w.values().iter().map(|v| v.as_int().unwrap()).collect();
        let expected: Vec<i64> = values
            .iter()
            .copied()
            .skip(values.len().saturating_sub(capacity))
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// The compiled "frequent" automaton of Fig. 14 never misses a heavy
    /// hitter: any host with more than n/k occurrences is present in the
    /// candidate map at the end of the stream.
    #[test]
    fn the_frequent_automaton_never_misses_a_heavy_hitter(
        stream in proptest::collection::vec(0u8..12, 20..200),
        k in 3usize..8,
    ) {
        let source = format!(
            r#"
            subscribe e to Urls;
            map T;
            iterator i;
            identifier id;
            int count;
            int k;
            initialization {{ k = {k}; T = Map(int); }}
            behavior {{
                id = Identifier(e.host);
                if (hasEntry(T, id)) {{
                    count = lookup(T, id);
                    count += 1;
                    insert(T, id, count);
                }} else if (mapSize(T) < (k-1))
                    insert(T, id, 1);
                else {{
                    i = Iterator(T);
                    while (hasNext(i)) {{
                        id = next(i);
                        count = lookup(T, id);
                        count -= 1;
                        if (count == 0)
                            remove(T, id);
                        else
                            insert(T, id, count);
                    }}
                }}
            }}
            "#
        );
        let urls = schema("Urls", vec![("host", AttrType::Str)]);
        let program = Arc::new(gapl::compile(&source).unwrap());
        let mut vm = Vm::new(program);
        let mut host = RecordingHost::default();
        vm.run_initialization(&mut host).unwrap();

        let mut counts: HashMap<String, usize> = HashMap::new();
        for (i, item) in stream.iter().enumerate() {
            let name = format!("host{item}");
            *counts.entry(name.clone()).or_default() += 1;
            let ev = int_event(&urls, vec![Scalar::Str(name.into())], i as u64);
            vm.run_behavior("Urls", &ev, &mut host).unwrap();
        }

        let threshold = stream.len() / k;
        match vm.local("T").unwrap() {
            Value::Map(m) => {
                let m = m.borrow();
                for (name, count) in counts {
                    if count > threshold {
                        prop_assert!(
                            m.has_entry(&name),
                            "{name} occurs {count} > {threshold} times but was evicted"
                        );
                    }
                }
            }
            other => return Err(TestCaseError::fail(format!("T should be a map, got {other:?}"))),
        }
    }
}
