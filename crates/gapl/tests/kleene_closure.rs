//! The Kleene-closure extension mentioned in §7 of the paper: "we have
//! implemented SASE's kleene closure operator (e.g. based on partition
//! contiguity) with a map of windows".
//!
//! The automaton below accumulates, per stock (the partition), the
//! contiguous sequence of events whose price keeps rising — the SASE
//! pattern `A (B+) C` where `B+` is the Kleene closure of rising ticks —
//! and emits the whole accumulated sequence when the closure ends. The
//! state is exactly what the paper describes: a map from partition key to
//! a window of the events matched so far.

use std::sync::Arc;

use gapl::event::{AttrType, Scalar, Schema, Tuple};
use gapl::vm::{RecordingHost, Vm};

const KLEENE_AUTOMATON: &str = r#"
    subscribe s to Stocks;
    map closures;
    map last_price;
    window w;
    real prev;
    identifier name;
    initialization {
        closures = Map(window);
        last_price = Map(real);
    }
    behavior {
        name = Identifier(s.name);
        if (hasEntry(last_price, name)) {
            prev = lookup(last_price, name);
            w = lookup(closures, name);
            if (s.price > prev) {
                # B+ : the closure keeps absorbing rising ticks.
                append(w, Sequence(s.name, s.price));
            } else {
                # C : the closure ends; report it if it matched anything.
                if (winSize(w) >= 2)
                    send(s.name, winSize(w), w);
                w = Window(sequence, ROWS, 1000);
                append(w, Sequence(s.name, s.price));
            }
            insert(closures, name, w);
        } else {
            # A : the first event of the partition anchors the pattern.
            w = Window(sequence, ROWS, 1000);
            append(w, Sequence(s.name, s.price));
            insert(closures, name, w);
        }
        insert(last_price, name, s.price);
    }
"#;

fn tick(schema: &Arc<Schema>, name: &str, price: f64, at: u64) -> Tuple {
    Tuple::new(
        Arc::clone(schema),
        vec![Scalar::Str(name.into()), Scalar::Real(price)],
        at,
    )
    .expect("valid tuple")
}

fn run_over(prices: &[(&str, f64)]) -> RecordingHost {
    let schema = Arc::new(
        Schema::new(
            "Stocks",
            vec![("name", AttrType::Str), ("price", AttrType::Real)],
        )
        .expect("valid schema"),
    );
    let program = Arc::new(gapl::compile(KLEENE_AUTOMATON).expect("the automaton compiles"));
    let mut vm = Vm::new(program);
    let mut host = RecordingHost::default();
    vm.run_initialization(&mut host).expect("initialization");
    for (i, (name, price)) in prices.iter().enumerate() {
        let event = tick(&schema, name, *price, i as u64);
        vm.run_behavior("Stocks", &event, &mut host)
            .expect("behavior");
    }
    host
}

#[test]
fn a_single_rising_closure_is_reported_with_all_its_events() {
    let host = run_over(&[
        ("ACME", 10.0),
        ("ACME", 11.0),
        ("ACME", 12.5),
        ("ACME", 13.0),
        ("ACME", 9.0), // the closure ends here
    ]);
    assert_eq!(host.sent.len(), 1);
    let report = &host.sent[0];
    // name, closure length, then the flattened (name, price) pairs.
    assert_eq!(report[0], Scalar::Str("ACME".into()));
    assert_eq!(report[1], Scalar::Int(4));
    let prices: Vec<f64> = report[2..]
        .iter()
        .filter_map(Scalar::as_real)
        .filter(|p| *p > 1.0)
        .collect();
    assert_eq!(prices, vec![10.0, 11.0, 12.5, 13.0]);
}

#[test]
fn closures_are_tracked_independently_per_partition() {
    let host = run_over(&[
        ("A", 1.0),
        ("B", 9.0),
        ("A", 2.0),
        ("B", 8.0), // B's first closure ends with only one event: not reported
        ("A", 3.0),
        ("B", 9.5),
        ("A", 0.5), // A's closure of 3 ends
        ("B", 1.0), // B's closure of 2 ends
    ]);
    assert_eq!(host.sent.len(), 2);
    assert_eq!(host.sent[0][0], Scalar::Str("A".into()));
    assert_eq!(host.sent[0][1], Scalar::Int(3));
    assert_eq!(host.sent[1][0], Scalar::Str("B".into()));
    assert_eq!(host.sent[1][1], Scalar::Int(2));
}

#[test]
fn interrupted_closures_restart_from_the_breaking_event() {
    let host = run_over(&[
        ("A", 5.0),
        ("A", 6.0),
        ("A", 4.0), // closure of 2 ends, new anchor at 4.0
        ("A", 4.5),
        ("A", 5.5),
        ("A", 1.0), // closure of 3 ends (4.0, 4.5, 5.5)
    ]);
    assert_eq!(host.sent.len(), 2);
    assert_eq!(host.sent[0][1], Scalar::Int(2));
    assert_eq!(host.sent[1][1], Scalar::Int(3));
    let second: Vec<f64> = host.sent[1][2..]
        .iter()
        .filter_map(Scalar::as_real)
        .filter(|p| *p > 1.5)
        .collect();
    assert_eq!(second, vec![4.0, 4.5, 5.5]);
}

#[test]
fn monotone_streams_report_nothing_until_the_trend_breaks() {
    let host = run_over(&[("A", 1.0), ("A", 2.0), ("A", 3.0), ("A", 4.0)]);
    assert!(host.sent.is_empty());
}
