//! Ad hoc queries over cached tables.
//!
//! The paper augments the relational `select` operator with time-window
//! extensions reflecting the continuous nature of events: `select * from T
//! since τ` returns only the tuples inserted after timestamp `τ`, and
//! applications typically submit such queries periodically (Fig. 1). The
//! usual `where`, `order by`, `group by` and aggregate operators are also
//! available.
//!
//! [`Query`] is the programmatic query model (a builder); the SQL surface
//! syntax in [`crate::sql`] parses into it.

use std::sync::Arc;

use gapl::event::{Scalar, Schema, Timestamp, Tuple};

use crate::error::{Error, Result};
use crate::plan::QueryPlan;

/// Comparison operators usable in `where` predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparison {
    /// `=`
    Eq,
    /// `!=` / `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Comparison {
    pub(crate) fn evaluate(self, lhs: &Scalar, rhs: &Scalar) -> bool {
        use std::cmp::Ordering::*;
        let ord = lhs.total_cmp(rhs);
        match self {
            Comparison::Eq => ord == Equal,
            Comparison::NotEq => ord != Equal,
            Comparison::Lt => ord == Less,
            Comparison::Le => ord != Greater,
            Comparison::Gt => ord == Greater,
            Comparison::Ge => ord != Less,
        }
    }
}

/// A `where` predicate over a single tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `column <op> literal`
    Compare {
        /// Column name.
        column: String,
        /// Comparison operator.
        op: Comparison,
        /// Literal to compare against.
        value: Scalar,
    },
    /// Both sub-predicates must hold.
    And(Box<Predicate>, Box<Predicate>),
    /// Either sub-predicate must hold.
    Or(Box<Predicate>, Box<Predicate>),
    /// The sub-predicate must not hold.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Convenience constructor for a `column <op> literal` comparison.
    pub fn compare(column: impl Into<String>, op: Comparison, value: impl Into<Scalar>) -> Self {
        Predicate::Compare {
            column: column.into(),
            op,
            value: value.into(),
        }
    }

    /// Evaluate the predicate against a tuple.
    ///
    /// # Errors
    ///
    /// Returns a schema error when a referenced column does not exist.
    pub fn matches(&self, tuple: &Tuple) -> Result<bool> {
        match self {
            Predicate::Compare { column, op, value } => {
                let actual = tuple.field(column).ok_or_else(|| {
                    Error::schema(format!(
                        "unknown column `{column}` in table `{}`",
                        tuple.schema().name()
                    ))
                })?;
                Ok(op.evaluate(&actual, value))
            }
            Predicate::And(a, b) => Ok(a.matches(tuple)? && b.matches(tuple)?),
            Predicate::Or(a, b) => Ok(a.matches(tuple)? || b.matches(tuple)?),
            Predicate::Not(p) => Ok(!p.matches(tuple)?),
        }
    }
}

/// Aggregate functions usable with (or without) `group by`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Aggregate {
    /// `count(*)`
    Count,
    /// `sum(column)`
    Sum(String),
    /// `avg(column)`
    Avg(String),
    /// `min(column)`
    Min(String),
    /// `max(column)`
    Max(String),
}

impl Aggregate {
    /// The output column name used in result sets.
    pub fn output_name(&self) -> String {
        match self {
            Aggregate::Count => "count".to_owned(),
            Aggregate::Sum(c) => format!("sum({c})"),
            Aggregate::Avg(c) => format!("avg({c})"),
            Aggregate::Min(c) => format!("min({c})"),
            Aggregate::Max(c) => format!("max({c})"),
        }
    }
}

/// A single result row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Projected values, in [`ResultSet::columns`] order.
    pub values: Vec<Scalar>,
    /// Insertion timestamp of the underlying tuple (0 for aggregate rows).
    pub tstamp: Timestamp,
}

/// The result of a query: column names plus rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Row>,
}

impl ResultSet {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The largest tuple timestamp in the result, used by applications to
    /// drive the `since τ` continuous-query loop of Fig. 1.
    pub fn max_tstamp(&self) -> Option<Timestamp> {
        self.rows.iter().map(|r| r.tstamp).max()
    }
}

/// A programmatic query. Build with the fluent methods, then run it with
/// [`crate::cache::Cache::select`].
///
/// # Example
///
/// ```
/// use pscache::{Query, Comparison};
/// let q = Query::new("Flows")
///     .columns(["srcip", "nbytes"])
///     .filter(pscache::Predicate::compare("nbytes", Comparison::Gt, 1000i64))
///     .since(42)
///     .order_by("nbytes", true)
///     .limit(10);
/// assert_eq!(q.table(), "Flows");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    table: String,
    columns: Vec<String>,
    predicate: Option<Predicate>,
    since: Option<Timestamp>,
    order_by: Option<(String, bool)>,
    group_by: Option<String>,
    aggregates: Vec<Aggregate>,
    limit: Option<usize>,
}

impl Query {
    /// A `select * from table` query.
    pub fn new(table: impl Into<String>) -> Self {
        Query {
            table: table.into(),
            columns: Vec::new(),
            predicate: None,
            since: None,
            order_by: None,
            group_by: None,
            aggregates: Vec::new(),
            limit: None,
        }
    }

    /// The table this query reads.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// Project only the named columns (default: all).
    pub fn columns<I, S>(mut self, columns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.columns = columns.into_iter().map(Into::into).collect();
        self
    }

    /// Add a `where` predicate (combined with `and` if one is already set).
    pub fn filter(mut self, predicate: Predicate) -> Self {
        self.predicate = Some(match self.predicate.take() {
            Some(existing) => Predicate::And(Box::new(existing), Box::new(predicate)),
            None => predicate,
        });
        self
    }

    /// Only return tuples inserted strictly after `tstamp`.
    pub fn since(mut self, tstamp: Timestamp) -> Self {
        self.since = Some(tstamp);
        self
    }

    /// Order by the named column; `descending` reverses the order.
    pub fn order_by(mut self, column: impl Into<String>, descending: bool) -> Self {
        self.order_by = Some((column.into(), descending));
        self
    }

    /// Group rows by the named column (use with [`Query::aggregate`]).
    pub fn group_by(mut self, column: impl Into<String>) -> Self {
        self.group_by = Some(column.into());
        self
    }

    /// Add an aggregate output.
    pub fn aggregate(mut self, aggregate: Aggregate) -> Self {
        self.aggregates.push(aggregate);
        self
    }

    /// Keep at most `n` rows.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// The `since` timestamp, if set.
    pub fn since_tstamp(&self) -> Option<Timestamp> {
        self.since
    }

    /// The `where` predicate, if set.
    pub fn predicate(&self) -> Option<&Predicate> {
        self.predicate.as_ref()
    }

    /// The projected column names (empty means `*`).
    pub fn projected_columns(&self) -> &[String] {
        &self.columns
    }

    /// The `order by` column and direction, if set.
    pub fn order_by_spec(&self) -> Option<&(String, bool)> {
        self.order_by.as_ref()
    }

    /// The `group by` column, if set.
    pub fn group_by_column(&self) -> Option<&str> {
        self.group_by.as_deref()
    }

    /// The aggregate outputs, in declaration order.
    pub fn aggregate_list(&self) -> &[Aggregate] {
        &self.aggregates
    }

    /// The row limit, if set.
    pub fn limit_rows(&self) -> Option<usize> {
        self.limit
    }

    /// Evaluate the query against a scan of the table (tuples in
    /// time-of-insertion order) and its schema.
    ///
    /// This compiles a throw-away [`QueryPlan`] and runs it; callers on
    /// the hot path (the cache's `execute`) compile once and reuse the
    /// plan across periodic submissions instead.
    ///
    /// # Errors
    ///
    /// Returns a schema error when the query references unknown columns.
    pub fn evaluate(&self, schema: &Arc<Schema>, tuples: &[Tuple]) -> Result<ResultSet> {
        QueryPlan::compile(self, schema)?.evaluate(tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapl::event::AttrType;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::new(
                "Flows",
                vec![
                    ("srcip", AttrType::Str),
                    ("dport", AttrType::Int),
                    ("nbytes", AttrType::Int),
                ],
            )
            .unwrap(),
        )
    }

    fn tuples() -> Vec<Tuple> {
        let s = schema();
        let rows = [
            ("10.0.0.1", 80, 1000, 1),
            ("10.0.0.2", 443, 2500, 2),
            ("10.0.0.1", 80, 500, 3),
            ("10.0.0.3", 22, 10, 4),
            ("10.0.0.1", 443, 4000, 5),
        ];
        rows.iter()
            .map(|(ip, port, bytes, ts)| {
                Tuple::new(
                    s.clone(),
                    vec![
                        Scalar::Str((*ip).into()),
                        Scalar::Int(*port),
                        Scalar::Int(*bytes),
                    ],
                    *ts,
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn select_star_returns_everything_in_insertion_order() {
        let rs = Query::new("Flows").evaluate(&schema(), &tuples()).unwrap();
        assert_eq!(rs.columns, vec!["srcip", "dport", "nbytes"]);
        assert_eq!(rs.len(), 5);
        assert_eq!(rs.rows[0].tstamp, 1);
        assert_eq!(rs.max_tstamp(), Some(5));
    }

    #[test]
    fn since_filters_strictly_after_the_timestamp() {
        let rs = Query::new("Flows")
            .since(3)
            .evaluate(&schema(), &tuples())
            .unwrap();
        assert_eq!(rs.len(), 2);
        assert!(rs.rows.iter().all(|r| r.tstamp > 3));
    }

    #[test]
    fn where_predicates_combine_with_and_or_not() {
        let p = Predicate::Or(
            Box::new(Predicate::compare("nbytes", Comparison::Gt, 2000i64)),
            Box::new(Predicate::compare("dport", Comparison::Eq, 22i64)),
        );
        let rs = Query::new("Flows")
            .filter(p)
            .evaluate(&schema(), &tuples())
            .unwrap();
        assert_eq!(rs.len(), 3);

        let p = Predicate::Not(Box::new(Predicate::compare(
            "srcip",
            Comparison::Eq,
            "10.0.0.1",
        )));
        let rs = Query::new("Flows")
            .filter(p)
            .evaluate(&schema(), &tuples())
            .unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn projection_and_limit() {
        let rs = Query::new("Flows")
            .columns(["nbytes"])
            .limit(2)
            .evaluate(&schema(), &tuples())
            .unwrap();
        assert_eq!(rs.columns, vec!["nbytes"]);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.rows[0].values, vec![Scalar::Int(1000)]);
    }

    #[test]
    fn unknown_columns_are_schema_errors() {
        assert!(Query::new("Flows")
            .columns(["nope"])
            .evaluate(&schema(), &tuples())
            .is_err());
        assert!(Query::new("Flows")
            .filter(Predicate::compare("nope", Comparison::Eq, 1i64))
            .evaluate(&schema(), &tuples())
            .is_err());
        assert!(Query::new("Flows")
            .order_by("nope", false)
            .evaluate(&schema(), &tuples())
            .is_err());
        assert!(Query::new("Flows")
            .group_by("nope")
            .evaluate(&schema(), &tuples())
            .is_err());
    }

    #[test]
    fn order_by_descending() {
        let rs = Query::new("Flows")
            .order_by("nbytes", true)
            .evaluate(&schema(), &tuples())
            .unwrap();
        let bytes: Vec<i64> = rs
            .rows
            .iter()
            .map(|r| r.values[2].as_int().unwrap())
            .collect();
        assert_eq!(bytes, vec![4000, 2500, 1000, 500, 10]);
    }

    #[test]
    fn global_aggregates_without_group_by() {
        let rs = Query::new("Flows")
            .aggregate(Aggregate::Count)
            .aggregate(Aggregate::Sum("nbytes".into()))
            .aggregate(Aggregate::Avg("nbytes".into()))
            .aggregate(Aggregate::Min("nbytes".into()))
            .aggregate(Aggregate::Max("nbytes".into()))
            .evaluate(&schema(), &tuples())
            .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0].values[0], Scalar::Int(5));
        assert_eq!(rs.rows[0].values[1], Scalar::Int(8010));
        assert_eq!(rs.rows[0].values[2], Scalar::Real(1602.0));
        assert_eq!(rs.rows[0].values[3], Scalar::Int(10));
        assert_eq!(rs.rows[0].values[4], Scalar::Int(4000));
    }

    #[test]
    fn group_by_with_default_count_and_explicit_sum() {
        let rs = Query::new("Flows")
            .group_by("srcip")
            .evaluate(&schema(), &tuples())
            .unwrap();
        assert_eq!(rs.columns, vec!["srcip", "count"]);
        assert_eq!(rs.len(), 3);

        let rs = Query::new("Flows")
            .group_by("srcip")
            .aggregate(Aggregate::Sum("nbytes".into()))
            .order_by("sum(nbytes)", true)
            .evaluate(&schema(), &tuples())
            .unwrap();
        assert_eq!(rs.rows[0].values[0], Scalar::Str("10.0.0.1".into()));
        assert_eq!(rs.rows[0].values[1], Scalar::Int(5500));
    }

    #[test]
    fn empty_input_produces_empty_or_zero_results() {
        let rs = Query::new("Flows").evaluate(&schema(), &[]).unwrap();
        assert!(rs.is_empty());
        assert_eq!(rs.max_tstamp(), None);
        let rs = Query::new("Flows")
            .aggregate(Aggregate::Count)
            .aggregate(Aggregate::Avg("nbytes".into()))
            .evaluate(&schema(), &[])
            .unwrap();
        assert_eq!(rs.rows[0].values[0], Scalar::Int(0));
        assert_eq!(rs.rows[0].values[1], Scalar::Real(0.0));
    }

    #[test]
    fn tstamp_pseudo_column_can_be_projected_and_ordered() {
        let rs = Query::new("Flows")
            .columns(["tstamp", "srcip"])
            .order_by("tstamp", true)
            .evaluate(&schema(), &tuples())
            .unwrap();
        assert_eq!(rs.rows[0].values[0], Scalar::Tstamp(5));
    }
}
