//! Non-deterministic finite automata over event streams.
//!
//! States are connected by guarded transitions. A transition's *guard* is a
//! predicate over the instance's current [`Bindings`] and the incoming
//! event; its *update* copies or aggregates event attributes into the
//! bindings of the successor instance. Non-determinism is explicit: several
//! transitions of a state may fire on the same event, each producing its
//! own successor instance.

use std::fmt;
use std::sync::Arc;

use gapl::event::Tuple;

use crate::bindings::Bindings;

/// A guard predicate: may the transition fire for this instance and event?
pub type Guard = Arc<dyn Fn(&Bindings, &Tuple) -> bool + Send + Sync>;

/// A binding update applied when a transition fires.
pub type Update = Arc<dyn Fn(&mut Bindings, &Tuple) + Send + Sync>;

/// What happens to the *source* instance when a transition fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionEffect {
    /// The instance moves to the target state (the source instance is
    /// consumed). This is the `NEXT` flavour of edge.
    Move,
    /// A copy of the instance moves to the target state while the original
    /// stays where it is — classic NFA forking, used for patterns whose
    /// continuation is ambiguous.
    Fork,
}

/// A guarded transition between two states.
pub struct Transition {
    pub(crate) target: usize,
    pub(crate) effect: TransitionEffect,
    pub(crate) guard: Guard,
    pub(crate) update: Update,
}

impl fmt::Debug for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Transition")
            .field("target", &self.target)
            .field("effect", &self.effect)
            .finish()
    }
}

/// A state of the NFA.
#[derive(Debug)]
pub struct State {
    pub(crate) name: String,
    pub(crate) transitions: Vec<Transition>,
    pub(crate) accepting: bool,
    /// When true, an instance in this state survives events on which none
    /// of its transitions fire (skip-till-next-match); when false such an
    /// instance dies (strict contiguity).
    pub(crate) skip_unmatched: bool,
}

/// A complete NFA: states plus global options.
#[derive(Debug)]
pub struct Nfa {
    pub(crate) name: String,
    pub(crate) states: Vec<State>,
    /// Attribute used to partition the stream (e.g. the stock name): an
    /// instance only sees events whose partition value equals the one it
    /// was started on.
    pub(crate) partition_by: Option<String>,
    /// Whether a fresh instance is started at state 0 for every incoming
    /// event (patterns may begin anywhere in the stream).
    pub(crate) spawn_on_every_event: bool,
}

impl Nfa {
    /// The query name, for reporting.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Name of the state at `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn state_name(&self, index: usize) -> &str {
        &self.states[index].name
    }

    /// The partitioning attribute, if any.
    pub fn partition_by(&self) -> Option<&str> {
        self.partition_by.as_deref()
    }
}

/// Fluent builder for [`Nfa`]s.
///
/// # Example
///
/// ```
/// use cayuga::{NfaBuilder, TransitionEffect};
/// use gapl::event::Scalar;
///
/// // Two consecutive events with rising `price` for the same `name`.
/// let mut b = NfaBuilder::new("rising-pair");
/// b.partition_by("name");
/// let start = b.add_state("start", false);
/// let up = b.add_state("saw-first", false);
/// let done = b.add_state("match", true);
/// b.transition(start, up, TransitionEffect::Move,
///     |_, _| true,
///     |bind, ev| bind.set("p0", ev.field("price").unwrap_or(Scalar::Real(0.0))));
/// b.transition(up, done, TransitionEffect::Move,
///     |bind, ev| ev.field("price").and_then(|p| p.as_real()).unwrap_or(0.0)
///         > bind.get_real("p0").unwrap_or(f64::MAX),
///     |_, _| ());
/// let nfa = b.build();
/// assert_eq!(nfa.state_count(), 3);
/// ```
#[derive(Debug)]
pub struct NfaBuilder {
    nfa: Nfa,
}

impl NfaBuilder {
    /// Start building a query with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        NfaBuilder {
            nfa: Nfa {
                name: name.into(),
                states: Vec::new(),
                partition_by: None,
                spawn_on_every_event: true,
            },
        }
    }

    /// Partition the stream by the named attribute.
    pub fn partition_by(&mut self, attribute: impl Into<String>) -> &mut Self {
        self.nfa.partition_by = Some(attribute.into());
        self
    }

    /// Control whether a fresh instance is spawned at the start state for
    /// every event (default `true`).
    pub fn spawn_on_every_event(&mut self, spawn: bool) -> &mut Self {
        self.nfa.spawn_on_every_event = spawn;
        self
    }

    /// Add a state; returns its index. The first state added is the start
    /// state.
    pub fn add_state(&mut self, name: impl Into<String>, accepting: bool) -> usize {
        self.nfa.states.push(State {
            name: name.into(),
            transitions: Vec::new(),
            accepting,
            skip_unmatched: false,
        });
        self.nfa.states.len() - 1
    }

    /// Mark a state as skip-till-next-match: instances in it survive events
    /// on which none of their transitions fire.
    ///
    /// # Panics
    ///
    /// Panics when `state` is out of range.
    pub fn skip_unmatched(&mut self, state: usize) -> &mut Self {
        self.nfa.states[state].skip_unmatched = true;
        self
    }

    /// Add a guarded transition from `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics when `from` or `to` is out of range.
    pub fn transition(
        &mut self,
        from: usize,
        to: usize,
        effect: TransitionEffect,
        guard: impl Fn(&Bindings, &Tuple) -> bool + Send + Sync + 'static,
        update: impl Fn(&mut Bindings, &Tuple) + Send + Sync + 'static,
    ) -> &mut Self {
        assert!(to < self.nfa.states.len(), "unknown target state {to}");
        self.nfa.states[from].transitions.push(Transition {
            target: to,
            effect,
            guard: Arc::new(guard),
            update: Arc::new(update),
        });
        self
    }

    /// Finish building.
    ///
    /// # Panics
    ///
    /// Panics when no state was added.
    pub fn build(self) -> Nfa {
        assert!(
            !self.nfa.states.is_empty(),
            "an NFA requires at least one state"
        );
        self.nfa
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_consistent_structure() {
        let mut b = NfaBuilder::new("q");
        let s0 = b.add_state("start", false);
        let s1 = b.add_state("done", true);
        b.transition(s0, s1, TransitionEffect::Move, |_, _| true, |_, _| ());
        b.skip_unmatched(s0);
        b.partition_by("name");
        let nfa = b.build();
        assert_eq!(nfa.name(), "q");
        assert_eq!(nfa.state_count(), 2);
        assert_eq!(nfa.state_name(0), "start");
        assert_eq!(nfa.partition_by(), Some("name"));
        assert!(nfa.states[1].accepting);
        assert!(nfa.states[0].skip_unmatched);
        assert_eq!(nfa.states[0].transitions.len(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown target state")]
    fn transition_to_missing_state_panics() {
        let mut b = NfaBuilder::new("q");
        let s0 = b.add_state("start", false);
        b.transition(s0, 5, TransitionEffect::Move, |_, _| true, |_, _| ());
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn empty_nfa_panics() {
        let _ = NfaBuilder::new("q").build();
    }
}
