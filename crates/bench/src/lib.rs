//! # cep-bench — the experiment harness
//!
//! One module per experiment of the paper's evaluation (§6); each module
//! exposes a `run(...)` function returning the rows/series the paper
//! reports, and a thin binary under `src/bin/` prints them. The mapping
//! from figures to binaries is listed in `DESIGN.md` and the measured
//! results are recorded in `EXPERIMENTS.md`.
//!
//! All experiments are pure library code so they can be unit-tested with
//! reduced sizes and reused from the Criterion benches.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fig07;
pub mod fig09_10;
pub mod fig12_13;
pub mod fig15_16;
pub mod fig18;
pub mod floor;
pub mod stats;
