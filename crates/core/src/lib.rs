//! # unipubsub — unification of publish/subscribe systems and stream databases
//!
//! This is the facade crate of the reproduction of *Sventek & Koliousis,
//! "Unification of Publish/Subscribe Systems and Stream Databases: The
//! Impact on Complex Event Processing" (Middleware 2012)*. It re-exports
//! the individual building blocks and adds a small amount of glue that
//! makes common scenarios one-liners:
//!
//! * [`pscache`] — the topic-based publish/subscribe cache (ephemeral
//!   stream tables, persistent relations, SQL-ish queries with time
//!   windows, the automaton runtime and the built-in `Timer` topic);
//! * [`gapl`] — the Glasgow Automaton Programming Language (lexer, parser,
//!   bytecode compiler, stack-machine VM and built-in library);
//! * [`psrpc`] — the RPC layer between applications and the cache
//!   (fragmentation at 1024-byte boundaries, TCP and in-process
//!   transports);
//! * [`cayuga`] — a Cayuga-style NFA engine used as the comparison baseline
//!   of the paper's evaluation;
//! * [`workloads`] — synthetic stand-ins for the paper's
//!   proprietary datasets.
//!
//! ## Quick start
//!
//! ```
//! use unipubsub::prelude::*;
//!
//! // Build a cache, create a stream table (= a pub/sub topic)...
//! let cache = CacheBuilder::new().build();
//! cache.execute("create table Flows (srcip varchar(16), nbytes integer)")?;
//!
//! // ...register a GAPL automaton that watches the topic...
//! let (id, notifications) = cache.register_automaton(
//!     "subscribe f to Flows; behavior { if (f.nbytes > 1000) send(f.srcip); }",
//! )?;
//!
//! // ...and feed events in. Each insert is also a publication.
//! cache.execute("insert into Flows values ('10.0.0.1', 40)")?;
//! cache.execute("insert into Flows values ('10.0.0.2', 4000)")?;
//! cache.quiesce(std::time::Duration::from_secs(1));
//! assert_eq!(notifications.try_iter().count(), 1);
//!
//! // Looking backwards in time still works: it is also a stream database.
//! let rows = cache.execute("select * from Flows since 0")?.rows().unwrap();
//! assert_eq!(rows.len(), 2);
//! cache.unregister_automaton(id)?;
//! # Ok::<(), unipubsub::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use cayuga;
pub use cep_workloads as workloads;
pub use gapl;
pub use pscache;
pub use psrpc;

pub use pscache::{
    Aggregate, AutomatonId, AutomatonTelemetry, Cache, CacheBuilder, Comparison, DispatchStats,
    Error, Notification, Predicate, Query, Response, Result, ResultSet, TableKind,
    DEFAULT_AUTOMATON_WORKERS, DEFAULT_SHARD_COUNT,
};
pub use psrpc::server::ServerStats;

pub mod prelude {
    //! Everything a typical application needs, in one import.
    pub use crate::continuous::ContinuousQuery;
    pub use gapl::event::{AttrType, Scalar, Schema, Timestamp, Tuple};
    pub use pscache::{
        Aggregate, AutomatonId, AutomatonTelemetry, Cache, CacheBuilder, Comparison, DispatchStats,
        Notification, Predicate, Query, Response, ResultSet, TableKind,
    };
    pub use psrpc::server::ServerStats;
    pub use psrpc::{CacheClient, RpcServer};
}

pub mod continuous;
