//! Bytecode compiler: lowers a parsed [`AutomatonAst`] to a [`Program`].
//!
//! The compiler performs the semantic checks the paper's cache reports back
//! to the registering application at registration time: duplicate variable
//! names, references to undeclared variables, unknown built-in functions,
//! field access on something that is not a subscription variable, and
//! assignment to subscription or association variables.

use std::collections::HashMap;

use crate::ast::{AssignOp, AutomatonAst, BinOp, Block, Expr, Stmt, UnOp};
use crate::builtins::BuiltinId;
use crate::error::{Error, Result};
use crate::program::{Association, Const, Instr, Local, LocalKind, Program, Subscription};
use crate::value::DeclType;

/// Compile a parsed automaton into an executable [`Program`].
///
/// # Errors
///
/// Returns [`Error::Compile`] for semantic errors (see module docs).
pub fn compile_ast(ast: &AutomatonAst) -> Result<Program> {
    Compiler::new(ast)?.run(ast)
}

struct Compiler {
    locals: Vec<Local>,
    slots: HashMap<String, usize>,
    consts: Vec<Const>,
    subscriptions: Vec<Subscription>,
    associations: Vec<Association>,
}

impl Compiler {
    fn new(ast: &AutomatonAst) -> Result<Self> {
        let mut c = Compiler {
            locals: Vec::new(),
            slots: HashMap::new(),
            consts: Vec::new(),
            subscriptions: Vec::new(),
            associations: Vec::new(),
        };

        for sub in &ast.subscriptions {
            let slot = c.add_local(
                &sub.var,
                LocalKind::Subscription {
                    topic: sub.topic.clone(),
                },
            )?;
            c.subscriptions.push(Subscription {
                var: sub.var.clone(),
                topic: sub.topic.clone(),
                slot,
            });
        }
        for (index, assoc) in ast.associations.iter().enumerate() {
            let slot = c.add_local(&assoc.var, LocalKind::Association { index })?;
            c.associations.push(Association {
                var: assoc.var.clone(),
                table: assoc.table.clone(),
                slot,
            });
        }
        for decl in &ast.declarations {
            for name in &decl.names {
                c.add_local(name, LocalKind::Declared(decl.ty))?;
            }
        }
        Ok(c)
    }

    fn add_local(&mut self, name: &str, kind: LocalKind) -> Result<usize> {
        if self.slots.contains_key(name) {
            return Err(Error::compile(format!(
                "variable `{name}` is declared more than once"
            )));
        }
        let slot = self.locals.len();
        self.locals.push(Local {
            name: name.to_owned(),
            kind,
        });
        self.slots.insert(name.to_owned(), slot);
        Ok(slot)
    }

    fn run(mut self, ast: &AutomatonAst) -> Result<Program> {
        let init_code = match &ast.initialization {
            Some(block) => self.compile_clause(block)?,
            None => vec![Instr::Halt],
        };
        let behavior_code = self.compile_clause(&ast.behavior)?;
        Ok(Program {
            subscriptions: self.subscriptions,
            associations: self.associations,
            locals: self.locals,
            consts: self.consts,
            init_code,
            behavior_code,
            prefilter: crate::prefilter::extract(ast),
        })
    }

    fn compile_clause(&mut self, block: &Block) -> Result<Vec<Instr>> {
        let mut code = Vec::new();
        self.compile_block(block, &mut code)?;
        code.push(Instr::Halt);
        Ok(code)
    }

    fn add_const(&mut self, c: Const) -> usize {
        if let Some(ix) = self.consts.iter().position(|existing| existing == &c) {
            return ix;
        }
        self.consts.push(c);
        self.consts.len() - 1
    }

    fn compile_block(&mut self, block: &Block, code: &mut Vec<Instr>) -> Result<()> {
        for stmt in &block.stmts {
            self.compile_stmt(stmt, code)?;
        }
        Ok(())
    }

    fn compile_stmt(&mut self, stmt: &Stmt, code: &mut Vec<Instr>) -> Result<()> {
        match stmt {
            Stmt::Assign {
                target, op, value, ..
            } => {
                let slot = *self.slots.get(target).ok_or_else(|| {
                    Error::compile(format!("assignment to undeclared variable `{target}`"))
                })?;
                match &self.locals[slot].kind {
                    LocalKind::Subscription { .. } => {
                        return Err(Error::compile(format!(
                            "cannot assign to subscription variable `{target}`"
                        )))
                    }
                    LocalKind::Association { .. } => {
                        return Err(Error::compile(format!(
                            "cannot assign to association variable `{target}`"
                        )))
                    }
                    LocalKind::Declared(_) => {}
                }
                match op {
                    AssignOp::Assign => {
                        self.compile_expr(value, code)?;
                    }
                    AssignOp::AddAssign => {
                        code.push(Instr::LoadLocal(slot));
                        self.compile_expr(value, code)?;
                        code.push(Instr::Add);
                    }
                    AssignOp::SubAssign => {
                        code.push(Instr::LoadLocal(slot));
                        self.compile_expr(value, code)?;
                        code.push(Instr::Sub);
                    }
                }
                code.push(Instr::StoreLocal(slot));
                Ok(())
            }
            Stmt::Expr { expr, .. } => {
                self.compile_expr(expr, code)?;
                code.push(Instr::Pop);
                Ok(())
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                self.compile_expr(cond, code)?;
                let jump_to_else = code.len();
                code.push(Instr::JumpIfFalse(usize::MAX));
                self.compile_stmt(then_branch, code)?;
                match else_branch {
                    Some(else_branch) => {
                        let jump_over_else = code.len();
                        code.push(Instr::Jump(usize::MAX));
                        let else_start = code.len();
                        code[jump_to_else] = Instr::JumpIfFalse(else_start);
                        self.compile_stmt(else_branch, code)?;
                        let end = code.len();
                        code[jump_over_else] = Instr::Jump(end);
                    }
                    None => {
                        let end = code.len();
                        code[jump_to_else] = Instr::JumpIfFalse(end);
                    }
                }
                Ok(())
            }
            Stmt::While { cond, body, .. } => {
                let loop_start = code.len();
                self.compile_expr(cond, code)?;
                let jump_out = code.len();
                code.push(Instr::JumpIfFalse(usize::MAX));
                self.compile_stmt(body, code)?;
                code.push(Instr::Jump(loop_start));
                let end = code.len();
                code[jump_out] = Instr::JumpIfFalse(end);
                Ok(())
            }
            Stmt::Block(block) => self.compile_block(block, code),
        }
    }

    fn compile_expr(&mut self, expr: &Expr, code: &mut Vec<Instr>) -> Result<()> {
        match expr {
            Expr::Int(i) => {
                let ix = self.add_const(Const::Int(*i));
                code.push(Instr::PushConst(ix));
            }
            Expr::Real(r) => {
                let ix = self.add_const(Const::Real(*r));
                code.push(Instr::PushConst(ix));
            }
            Expr::Str(s) => {
                let ix = self.add_const(Const::Str(s.clone()));
                code.push(Instr::PushConst(ix));
            }
            Expr::Bool(b) => {
                let ix = self.add_const(Const::Bool(*b));
                code.push(Instr::PushConst(ix));
            }
            Expr::Var(name) => match self.slots.get(name) {
                Some(slot) => code.push(Instr::LoadLocal(*slot)),
                None => {
                    // Bare type keywords and window-kind keywords are allowed
                    // as constructor arguments: `Map(int)`,
                    // `Window(sequence, SECS, t)`.
                    let is_keywordish = DeclType::from_keyword(name).is_some()
                        || matches!(
                            name.to_ascii_uppercase().as_str(),
                            "SECS" | "SECONDS" | "ROWS" | "COUNT"
                        );
                    if is_keywordish {
                        let ix = self.add_const(Const::Str(name.clone()));
                        code.push(Instr::PushConst(ix));
                    } else {
                        return Err(Error::compile(format!(
                            "reference to undeclared variable `{name}`"
                        )));
                    }
                }
            },
            Expr::Field { object, field } => {
                let slot = *self.slots.get(object).ok_or_else(|| {
                    Error::compile(format!("field access on undeclared variable `{object}`"))
                })?;
                if !matches!(self.locals[slot].kind, LocalKind::Subscription { .. }) {
                    return Err(Error::compile(format!(
                        "`{object}.{field}`: field access requires a subscription variable"
                    )));
                }
                let name_const = self.add_const(Const::Str(field.clone()));
                code.push(Instr::LoadField { slot, name_const });
            }
            Expr::Call { name, args } => {
                let builtin = BuiltinId::from_name(name)
                    .ok_or_else(|| Error::compile(format!("unknown function `{name}`")))?;
                for arg in args {
                    self.compile_expr(arg, code)?;
                }
                code.push(Instr::CallBuiltin {
                    builtin,
                    argc: args.len(),
                });
            }
            Expr::Unary { op, expr } => {
                self.compile_expr(expr, code)?;
                code.push(match op {
                    UnOp::Neg => Instr::Neg,
                    UnOp::Not => Instr::Not,
                });
            }
            Expr::Binary { op, lhs, rhs } => {
                self.compile_expr(lhs, code)?;
                self.compile_expr(rhs, code)?;
                code.push(match op {
                    BinOp::Add => Instr::Add,
                    BinOp::Sub => Instr::Sub,
                    BinOp::Mul => Instr::Mul,
                    BinOp::Div => Instr::Div,
                    BinOp::Rem => Instr::Rem,
                    BinOp::Eq => Instr::CmpEq,
                    BinOp::NotEq => Instr::CmpNe,
                    BinOp::Lt => Instr::CmpLt,
                    BinOp::Le => Instr::CmpLe,
                    BinOp::Gt => Instr::CmpGt,
                    BinOp::Ge => Instr::CmpGe,
                    BinOp::And => Instr::And,
                    BinOp::Or => Instr::Or,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    #[test]
    fn duplicate_variable_names_are_rejected() {
        let err = compile("subscribe f to Flows; int f; behavior { }").unwrap_err();
        assert!(matches!(err, Error::Compile { .. }));
        let err = compile("subscribe f to Flows; int x, x; behavior { }").unwrap_err();
        assert!(matches!(err, Error::Compile { .. }));
    }

    #[test]
    fn undeclared_variable_reference_is_rejected() {
        let err = compile("subscribe f to Flows; behavior { x = 1; }").unwrap_err();
        assert!(err.to_string().contains("undeclared"));
        let err = compile("subscribe f to Flows; int x; behavior { x = y + 1; }").unwrap_err();
        assert!(err.to_string().contains("undeclared"));
    }

    #[test]
    fn unknown_function_is_rejected() {
        let err = compile("subscribe f to Flows; behavior { doesNotExist(1); }").unwrap_err();
        assert!(err.to_string().contains("unknown function"));
    }

    #[test]
    fn assignment_to_subscription_or_association_is_rejected() {
        let err = compile("subscribe f to Flows; behavior { f = 1; }").unwrap_err();
        assert!(err.to_string().contains("subscription"));
        let err =
            compile("subscribe f to Flows; associate a with T; behavior { a = 1; }").unwrap_err();
        assert!(err.to_string().contains("association"));
    }

    #[test]
    fn field_access_requires_subscription_variable() {
        let err = compile("subscribe f to Flows; int x, y; behavior { x = y.field; }").unwrap_err();
        assert!(err.to_string().contains("subscription"));
    }

    #[test]
    fn type_keywords_compile_to_string_constants_in_constructors() {
        let p = compile("subscribe f to Flows; map m; behavior { m = Map(int); }").unwrap();
        assert!(p
            .consts()
            .iter()
            .any(|c| matches!(c, Const::Str(s) if s == "int")));
    }

    #[test]
    fn constants_are_deduplicated() {
        let p = compile("subscribe f to Flows; int x; behavior { x = 5; x = 5; x = 5; }").unwrap();
        let fives = p
            .consts()
            .iter()
            .filter(|c| matches!(c, Const::Int(5)))
            .count();
        assert_eq!(fives, 1);
    }

    #[test]
    fn if_else_produces_patched_jumps() {
        let p = compile("subscribe f to Flows; int x; behavior { if (x > 0) x = 1; else x = 2; }")
            .unwrap();
        for instr in p.behavior_code() {
            match instr {
                Instr::Jump(t) | Instr::JumpIfFalse(t) => {
                    assert!(*t <= p.behavior_code().len(), "unpatched jump target");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn missing_initialization_compiles_to_a_single_halt() {
        let p = compile("subscribe f to Flows; behavior { print('x'); }").unwrap();
        assert_eq!(p.init_code(), &[Instr::Halt]);
    }

    #[test]
    fn the_papers_automata_compile() {
        // Fig. 2 — continuous query execution model.
        compile(
            r#"
            subscribe event to Topic;
            subscribe x to Timer;
            window w;
            initialization {
                w = Window(sequence, SECS, 10);
            }
            behavior {
                if (currentTopic() == 'Topic')
                    append(w, Sequence(event.attribute));
                else
                    if (currentTopic() == 'Timer') {
                        send(w);
                        w = Window(sequence, SECS, 10);
                    }
            }
            "#,
        )
        .unwrap();

        // Fig. 6 — built-in cost template (with a concrete built-in).
        compile(
            r#"
            subscribe t to Timer;
            int i;
            int limit;
            tstamp start;
            int diff;
            initialization {
                limit = 100000;
                print('===== Start of test =====');
            }
            behavior {
                i = 0;
                start = tstampNow();
                while (i < limit) {
                    i += 1;
                }
                diff = tstampDiff(tstampNow(), start);
                print(String('nothing: ', float(diff)/100000000.0));
            }
            "#,
        )
        .unwrap();

        // Fig. 8 — performance-at-scale template.
        compile(
            r#"
            subscribe f to Flows;
            real min, max, ave, r;
            int count, nsecs;
            string id;
            initialization {
                min = 1000.;
                max = 0.;
                ave = 0.;
                id = 'A';
                count = 0;
            }
            behavior {
                count = count + 1;
                nsecs = tstampDiff(tstampNow(), f.tstamp);
                r = float(nsecs) / 1000000.;
                ave = ave + (r - ave) / float(count);
                if (r > max)
                    max = r;
                if (r < min)
                    min = r;
                if (count >= 1000) {
                    print(String(id, ': ', ave, ', ', min, ', ', max));
                    count = 0;
                    min = 1000.;
                    max = 0.;
                    ave = 0.;
                }
            }
            "#,
        )
        .unwrap();

        // Fig. 11 — stress template.
        compile(
            r#"
            subscribe t to Timer;
            subscribe s to Test;
            int count;
            initialization {
                count = 0;
                print('===== Start of stress test =====');
            }
            behavior {
                if (currentTopic() == 'Timer') {
                    if (count > 0)
                        print(String('stress1way: ', count));
                    count = 0;
                } else {
                    count += 1;
                }
            }
            "#,
        )
        .unwrap();

        // Fig. 14 — the "frequent" algorithm.
        compile(
            r#"
            subscribe e to Urls;
            map T;
            iterator i;
            identifier id;
            int count;
            int k;
            initialization {
                k = 100;
                T = Map(int);
            }
            behavior {
                id = Identifier(e.host);
                if (hasEntry(T, id)) {
                    count = lookup(T, id);
                    count += 1;
                    insert(T, id, count);
                } else if (mapSize(T) < (k-1))
                    insert(T, id, 1);
                else {
                    i = Iterator(T);
                    while (hasNext(i)) {
                        id = next(i);
                        count = lookup(T, id);
                        count -= 1;
                        if (count == 0)
                            remove(T, id);
                        else
                            insert(T, id, count);
                    }
                }
            }
            "#,
        )
        .unwrap();
    }
}
