//! Protection-layer snapshot: prices the two costs the production
//! protection layer is allowed to impose, written as
//! `BENCH_protect.json` for the performance trajectory.
//!
//! Two measurements:
//!
//! * **Dedup overhead** — the insert hot path with idempotency tokens
//!   (the default: every mutation stamped, the server records its
//!   outcome in the bounded token table) vs the same workload with
//!   tokens disabled. The headline `protect_dedup_ratio` is
//!   tokened/untokened throughput; `scripts/bench_protect.sh` enforces
//!   `>= 0.9` — exactly-once may cost at most 10% of the hot path.
//!
//! * **Throttled-flood fairness** — a hostile client floods a
//!   rate-limited server (~10x its quota, pipelined) while a
//!   well-behaved client proceeds self-paced below quota.
//!   `protect_fairness_ratio` is the well-behaved client's throughput
//!   under flood over its isolated throughput; the floor is `>= 0.5` —
//!   admission control must actually isolate neighbours from the
//!   flood, not merely reject it.
//!
//! Run with `cargo run --release -p cep_bench --bin bench_protect`
//! (output path override: `BENCH_PROTECT_OUT`; op budget:
//! `BENCH_PROTECT_OPS`).

use std::fs;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gapl::event::Scalar;
use pscache::{CacheBuilder, ClientPolicy};
use psrpc::client::CacheClient;
use psrpc::message::{CacheReply, Request};
use psrpc::reactor::ReactorServer;

/// In-flight window for the pipelined insert measurement.
const WINDOW: usize = 32;
/// Per-client quota for the fairness measurement.
const QUOTA_PER_SEC: u64 = 500;
/// Self-paced interval of the well-behaved client: half its quota.
const PACE: Duration = Duration::from_millis(4);
/// Paced inserts per fairness measurement.
const PACED_OPS: usize = 150;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn insert_request(v: i64) -> Request {
    Request::Insert {
        table: "T".into(),
        values: vec![Scalar::Int(v)],
        upsert: false,
    }
}

/// Pipelined inserts/second over one connection; `tokened` stamps every
/// insert with a fresh idempotency token (the default client behavior
/// for blocking mutations), pricing the server-side record + the wire
/// bytes.
fn measure_inserts(addr: SocketAddr, ops: usize, tokened: bool) -> f64 {
    let client = CacheClient::connect(addr).expect("bench client connects");
    let started = Instant::now();
    let mut pendings = std::collections::VecDeque::with_capacity(WINDOW);
    for i in 0..ops {
        let token = tokened.then(|| client.next_token());
        pendings.push_back(
            client
                .begin_request_with_token(insert_request(i as i64), token)
                .expect("bench request sent"),
        );
        if pendings.len() == WINDOW {
            let reply = pendings.pop_front().unwrap().wait().expect("bench reply");
            assert!(matches!(reply, CacheReply::Inserted { .. }));
        }
    }
    for p in pendings {
        p.wait().expect("bench reply");
    }
    ops as f64 / started.elapsed().as_secs_f64()
}

/// The dedup-overhead measurement: alternate tokened/untokened rounds
/// on one server (interleaving absorbs drift — thermal, page cache,
/// allocator state) and keep each mode's best round.
fn dedup_measurement(ops: usize) -> (f64, f64) {
    let cache = CacheBuilder::new().build();
    let server = ReactorServer::bind(cache, "127.0.0.1:0").expect("bind the reactor");
    let addr = server.local_addr();
    let setup = CacheClient::connect(addr).expect("setup client connects");
    setup
        .execute("create table T (v integer) capacity 256")
        .expect("create table");

    // Warm-up rounds, discarded.
    measure_inserts(addr, ops / 4, true);
    measure_inserts(addr, ops / 4, false);
    let (mut tokened, mut untokened) = (0.0f64, 0.0f64);
    for round in 0..4 {
        // Alternate which mode goes first so ordering bias (page
        // cache, allocator, CPU frequency ramps) cancels out.
        if round % 2 == 0 {
            tokened = tokened.max(measure_inserts(addr, ops, true));
            untokened = untokened.max(measure_inserts(addr, ops, false));
        } else {
            untokened = untokened.max(measure_inserts(addr, ops, false));
            tokened = tokened.max(measure_inserts(addr, ops, true));
        }
    }
    server.shutdown();
    (tokened, untokened)
}

/// The well-behaved client's paced throughput (inserts/second).
fn paced_throughput(addr: SocketAddr) -> f64 {
    let client = CacheClient::connect(addr).expect("paced client connects");
    let started = Instant::now();
    for i in 0..PACED_OPS {
        client
            .insert("T", vec![Scalar::Int(i as i64)])
            .expect("a well-behaved insert was rejected");
        std::thread::sleep(PACE);
    }
    PACED_OPS as f64 / started.elapsed().as_secs_f64()
}

/// The fairness measurement: isolated paced throughput, then the same
/// paced workload under a pipelined flood from a hostile connection.
/// Returns (isolated, flooded, throttle rejections served).
fn fairness_measurement() -> (f64, f64, u64) {
    let cache = CacheBuilder::new()
        .client_policy(ClientPolicy {
            max_requests_per_sec: QUOTA_PER_SEC,
            burst: 100,
            ..ClientPolicy::default()
        })
        .build();
    let server = ReactorServer::bind(cache, "127.0.0.1:0").expect("bind the reactor");
    let addr = server.local_addr();
    let setup = CacheClient::connect(addr).expect("setup client connects");
    setup
        .execute("create table T (v integer) capacity 256")
        .expect("create table");

    let isolated = paced_throughput(addr);

    let stop = Arc::new(AtomicBool::new(false));
    let flooder = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let client = CacheClient::connect(addr).expect("flooder connects");
            let mut pendings = std::collections::VecDeque::new();
            while !stop.load(Ordering::Acquire) {
                if let Ok(p) = client.begin_request(insert_request(-1)) {
                    pendings.push_back(p);
                }
                while pendings.len() > 64 {
                    let _ = pendings.pop_front().unwrap().wait();
                }
            }
            for p in pendings {
                let _ = p.wait();
            }
        })
    };
    let flooded = paced_throughput(addr);
    stop.store(true, Ordering::Release);
    flooder.join().expect("flooder thread");

    let throttled = server.stats().rpc_requests_throttled;
    server.shutdown();
    (isolated, flooded, throttled)
}

fn main() {
    let ops = env_usize("BENCH_PROTECT_OPS", 20_000);
    let out = std::env::var("BENCH_PROTECT_OUT").unwrap_or_else(|_| "BENCH_protect.json".into());

    let (tokened, untokened) = dedup_measurement(ops);
    let dedup_ratio = tokened / untokened;
    println!(
        "dedup: tokened {tokened:>9.0} inserts/s, untokened {untokened:>9.0} inserts/s \
         (ratio {dedup_ratio:.3})"
    );

    let (isolated, flooded, throttled) = fairness_measurement();
    let fairness_ratio = flooded / isolated;
    println!(
        "fairness: paced client {isolated:>6.0}/s isolated, {flooded:>6.0}/s under flood \
         (ratio {fairness_ratio:.3}, {throttled} floods rejected)"
    );
    assert!(
        throttled > 0,
        "the flood was never throttled — admission control is not engaging"
    );

    let json = format!(
        "{{\n  \"scenario\": \"idempotency-token dedup overhead on the pipelined insert hot path; paced-client fairness under a pipelined flood against a {QUOTA_PER_SEC}/s quota\",\n  \"tokened_inserts_per_sec\": {tokened:.1},\n  \"untokened_inserts_per_sec\": {untokened:.1},\n  \"protect_dedup_ratio\": {dedup_ratio:.3},\n  \"isolated_paced_per_sec\": {isolated:.1},\n  \"flooded_paced_per_sec\": {flooded:.1},\n  \"flood_requests_throttled\": {throttled},\n  \"protect_fairness_ratio\": {fairness_ratio:.3}\n}}\n"
    );
    fs::write(&out, &json).expect("write benchmark snapshot");
    println!("{json}");
    println!(
        "protect: dedup keeps {:.0}% of the untokened hot path, paced neighbours keep \
         {:.0}% of isolated throughput under flood -> {out}",
        dedup_ratio * 100.0,
        fairness_ratio * 100.0
    );
}
