//! The multi-client RPC server: exposes a [`pscache::Cache`] to remote
//! applications.
//!
//! The paper's prototype serves applications from a single accept loop
//! and funnels every request through the cache's main thread (§6). This
//! server keeps the paper's *semantics* — requests on one connection are
//! answered in order, and an automaton's notifications flow back over the
//! connection that registered it — but scales the mechanism out:
//!
//! * the accept loop only accepts; every connection gets a dedicated
//!   **worker thread** that decodes and executes its requests against the
//!   (internally sharded) cache, so clients inserting into different
//!   tables run truly in parallel;
//! * each connection also owns a **writer thread**, the single point that
//!   serialises replies and asynchronous notifications onto the socket;
//! * all automaton notifications, from every connection, pass through one
//!   shared **notification fan-out** (the hub) that
//!   routes them to the owning connection's writer — replacing the
//!   per-connection forwarder thread of earlier designs, so the thread
//!   count grows by two per connection rather than three;
//! * when a client disconnects, its automata are unregistered and their
//!   routes dropped, exactly as the paper's cache reclaims state for
//!   vanished applications.
//!
//! [`serve_connection`] exposes the same machinery for a single duplex
//! transport (TCP or in-process), which is how the stress benchmarks and
//! [`crate::client::CacheClient::connect_inproc`] embed a server without
//! a network stack.

use std::collections::{HashMap, HashSet};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;

use pscache::{AutomatonId, Cache, IdemToken, Response, TokenOutcome};

use crate::error::Result;
use crate::message::{CacheReply, ClientMessage, HealthReport, Request, ServerMessage, WireRow};
use crate::transport::{tcp_split, RecvEvent, RecvHalf, SendHalf};

pub use crate::message::ServerStats;

#[derive(Debug, Default)]
pub(crate) struct StatsInner {
    pub(crate) accepted: AtomicU64,
    pub(crate) active: AtomicU64,
    pub(crate) requests: AtomicU64,
    pub(crate) notifications: AtomicU64,
    /// Requests decoded but not yet answered (reactor transport only;
    /// the blocking transport executes synchronously so its depth is
    /// bounded by its thread count).
    pub(crate) in_flight: AtomicU64,
    /// Times a connection's read interest was parked because its
    /// decoded-request queue hit the pipeline cap.
    pub(crate) queue_stalls: AtomicU64,
    /// Workers currently executing a request (incremented around
    /// [`handle_request`] on both transports).
    pub(crate) worker_busy: AtomicU64,
    /// Requests rejected by admission control (reactor transport only;
    /// the blocking transport enforces no client policy and serves as
    /// the differential oracle).
    pub(crate) requests_throttled: AtomicU64,
}

impl StatsInner {
    /// The server-side counters plus the cache's automaton-dispatch,
    /// durability and replication statistics, as one snapshot — the
    /// end-to-end observability surface: a remote client can read
    /// group-commit behaviour and replication lag without shell access
    /// to the cache host.
    pub(crate) fn snapshot(&self, cache: &Cache) -> ServerStats {
        let dispatch = cache.dispatch_stats();
        let wal = cache.wal_stats().unwrap_or_default();
        let repl = cache.repl_stats();
        ServerStats {
            connections_accepted: self.accepted.load(Ordering::Acquire),
            connections_active: self.active.load(Ordering::Acquire),
            rpc_in_flight: self.in_flight.load(Ordering::Acquire),
            rpc_queue_stalls: self.queue_stalls.load(Ordering::Acquire),
            requests_served: self.requests.load(Ordering::Acquire),
            notifications_routed: self.notifications.load(Ordering::Acquire),
            automata_active: dispatch.automata as u64,
            events_delivered: dispatch.delivered,
            events_processed: dispatch.processed,
            events_skipped_by_prefilter: dispatch.skipped_by_prefilter,
            automaton_queue_depth: dispatch.queue_depth,
            automaton_max_queue_depth: dispatch.max_queue_depth,
            wal_records: wal.records,
            wal_syncs: wal.syncs,
            wal_checkpoints: wal.checkpoints,
            wal_replayed: wal.replayed,
            repl_is_follower: u64::from(repl.role == pscache::ReplRole::Follower),
            repl_commit_lsn: repl.commit_lsn,
            repl_replica_lsn: repl.replica_lsn,
            repl_followers: repl.followers as u64,
            repl_min_follower_acked_lsn: repl.min_follower_acked_lsn,
            rpc_worker_busy: self.worker_busy.load(Ordering::Acquire),
            rpc_requests_throttled: self.requests_throttled.load(Ordering::Acquire),
        }
    }
}

/// Build the health/readiness snapshot for [`Request::Health`] from
/// nothing but atomics and lock-free cache accessors — both transports
/// share it, and the reactor answers it inline on the poll thread so a
/// probe gets a reply even when every worker is wedged on a slow
/// request.
pub(crate) fn health_report(cache: &Cache, stats: &StatsInner) -> HealthReport {
    let repl = cache.repl_stats();
    // Lag is only meaningful with a follower attached: None (not 0)
    // otherwise, so probes can tell "caught up" from "unreplicated".
    let lag = if repl.followers > 0 {
        Some(repl.commit_lsn.saturating_sub(repl.min_follower_acked_lsn))
    } else {
        None
    };
    HealthReport {
        role_follower: u64::from(repl.role == pscache::ReplRole::Follower),
        commit_lsn: repl.commit_lsn,
        replica_lsn: repl.replica_lsn,
        repl_lag: lag,
        connections_active: stats.active.load(Ordering::Acquire),
        rpc_in_flight: stats.in_flight.load(Ordering::Acquire),
        rpc_queue_stalls: stats.queue_stalls.load(Ordering::Acquire),
        rpc_worker_busy: stats.worker_busy.load(Ordering::Acquire),
        rpc_workers: cache.rpc_workers() as u64,
        rpc_requests_throttled: stats.requests_throttled.load(Ordering::Acquire),
        slow_consumer_evictions: cache.obs().slow_consumer_evictions.load(Ordering::Relaxed),
        automaton_unregistrations: cache
            .obs()
            .automaton_unregistrations
            .load(Ordering::Relaxed),
    }
}

/// Where the hub delivers one automaton's notifications: the blocking
/// transport routes to a connection's writer-thread channel, the
/// reactor transport appends to a connection's outbound byte queue and
/// rings the poller's doorbell. Either way the hub stays the single
/// ordering point between an automaton and its owning connection.
pub(crate) trait RouteSink: Send {
    /// Deliver one message; `false` means the connection is gone.
    fn deliver(&self, msg: ServerMessage) -> bool;
}

impl RouteSink for Sender<ServerMessage> {
    fn deliver(&self, msg: ServerMessage) -> bool {
        self.send(msg).is_ok()
    }
}

/// Control messages for the fan-out hub, multiplexed with notifications.
pub(crate) enum HubMsg {
    /// An automaton produced a notification.
    Note(pscache::Notification),
    /// A connection registered an automaton; notifications for it (held
    /// back while the registration raced ahead of the route) go to this
    /// sink.
    AddRoute(u64, Box<dyn RouteSink>),
    /// The automaton is gone; drop its route and anything held back.
    RemoveRoute(u64),
}

/// The shared notification fan-out.
///
/// Automata registered over RPC all send into one channel; a single
/// dispatch thread routes each notification to the connection that owns
/// the automaton. Registration and routing race benignly: a notification
/// arriving before its `AddRoute` is parked and flushed, in order, when
/// the route appears.
pub(crate) struct NotificationHub {
    /// Handed (cloned) to every automaton registration.
    pub(crate) note_tx: Sender<pscache::Notification>,
    /// Route management from connection workers.
    pub(crate) control_tx: Sender<HubMsg>,
    pump: Option<JoinHandle<()>>,
    dispatch: Option<JoinHandle<()>>,
}

impl NotificationHub {
    pub(crate) fn start(stats: Arc<StatsInner>) -> NotificationHub {
        let (note_tx, note_rx) = unbounded::<pscache::Notification>();
        let (hub_tx, hub_rx) = unbounded::<HubMsg>();

        // Pump: adapts the plain notification channel the cache runtime
        // expects onto the hub's control stream.
        let pump_tx = hub_tx.clone();
        let pump = std::thread::Builder::new()
            .name("psrpc-hub-pump".into())
            .spawn(move || {
                while let Ok(note) = note_rx.recv() {
                    if pump_tx.send(HubMsg::Note(note)).is_err() {
                        break;
                    }
                }
            })
            .expect("spawning the hub pump thread never fails");

        // Dispatch: owns the route table and the parked notifications.
        let dispatch = std::thread::Builder::new()
            .name("psrpc-hub-dispatch".into())
            .spawn(move || {
                let mut routes: HashMap<u64, Box<dyn RouteSink>> = HashMap::new();
                let mut parked: HashMap<u64, Vec<pscache::Notification>> = HashMap::new();
                // Ids whose route was removed. A RemoveRoute sent on the
                // control channel can overtake that automaton's last
                // notifications, which are still crossing the pump; without
                // this set they would be re-parked under an id that never
                // gets another AddRoute and leak for the server's lifetime.
                // Automaton ids are never reused, so the set only grows by
                // one u64 per unregistered automaton.
                let mut dead: HashSet<u64> = HashSet::new();
                while let Ok(msg) = hub_rx.recv() {
                    match msg {
                        HubMsg::Note(note) => {
                            let id = note.automaton.0;
                            match routes.get(&id) {
                                Some(writer) => {
                                    stats.notifications.fetch_add(1, Ordering::Release);
                                    let _ = writer.deliver(notification_message(note));
                                }
                                None if dead.contains(&id) => {
                                    // Straggler from an unregistered
                                    // automaton: its client is gone.
                                }
                                None => {
                                    let slot = parked.entry(id).or_default();
                                    // Bound memory if a route never shows
                                    // up (e.g. a client that died mid
                                    // registration).
                                    if slot.len() < 65_536 {
                                        slot.push(note);
                                    }
                                }
                            }
                        }
                        HubMsg::AddRoute(id, writer) => {
                            for note in parked.remove(&id).unwrap_or_default() {
                                stats.notifications.fetch_add(1, Ordering::Release);
                                let _ = writer.deliver(notification_message(note));
                            }
                            routes.insert(id, writer);
                        }
                        HubMsg::RemoveRoute(id) => {
                            routes.remove(&id);
                            parked.remove(&id);
                            dead.insert(id);
                        }
                    }
                }
            })
            .expect("spawning the hub dispatch thread never fails");

        NotificationHub {
            note_tx,
            control_tx: hub_tx,
            pump: Some(pump),
            dispatch: Some(dispatch),
        }
    }

    /// Drop the hub's own senders and wait for its threads; any automata
    /// still holding notifier clones keep the pump alive until they are
    /// unregistered, so callers unregister first.
    pub(crate) fn finish(mut self) {
        drop(self.note_tx);
        drop(self.control_tx);
        if let Some(h) = self.pump.take() {
            let _ = h.join();
        }
        if let Some(h) = self.dispatch.take() {
            let _ = h.join();
        }
    }
}

fn notification_message(note: pscache::Notification) -> ServerMessage {
    ServerMessage::Notification {
        automaton: note.automaton.0,
        values: note.values,
        at: note.at,
    }
}

/// A running multi-client RPC server bound to a TCP address.
pub struct RpcServer {
    local_addr: SocketAddr,
    /// The served cache; kept for stats snapshots (cloning a cache is a
    /// refcount bump — state is shared with the connection workers).
    cache: Cache,
    shutdown: Arc<AtomicBool>,
    /// Graceful-drain signal: workers finish the request in flight,
    /// then exit at the next idle gap instead of waiting for more.
    draining: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
    stats: Arc<StatsInner>,
    hub: Option<NotificationHub>,
}

impl std::fmt::Debug for RpcServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RpcServer")
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

/// How long between idle checks of the drain flag on a server-side
/// connection (its socket read timeout).
const DRAIN_POLL: std::time::Duration = std::time::Duration::from_millis(100);

/// How long [`RpcServer::shutdown`] waits for workers to drain before
/// force-closing the remaining sockets.
const DRAIN_GRACE: std::time::Duration = std::time::Duration::from_secs(5);

impl RpcServer {
    /// Bind to `addr` (use port 0 for an ephemeral port) and start
    /// accepting connections. Every accepted connection is served by its
    /// own worker thread against the shared cache; automaton
    /// notifications from all connections flow through one fan-out hub.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the listener cannot be bound.
    ///
    /// # Example
    ///
    /// ```
    /// use pscache::CacheBuilder;
    /// use psrpc::{client::CacheClient, server::RpcServer};
    ///
    /// let server = RpcServer::bind(CacheBuilder::new().build(), "127.0.0.1:0")?;
    ///
    /// // Any number of clients may connect concurrently.
    /// let a = CacheClient::connect(server.local_addr())?;
    /// let b = CacheClient::connect(server.local_addr())?;
    /// a.execute("create table T (v integer)")?;
    /// b.insert_batch("T", (0..4).map(|i| vec![i.into()]).collect())?;
    ///
    /// assert_eq!(a.select("select * from T")?.len(), 4);
    /// assert!(server.stats().connections_accepted >= 2);
    /// server.shutdown();
    /// # Ok::<(), psrpc::Error>(())
    /// ```
    pub fn bind(cache: Cache, addr: impl ToSocketAddrs) -> Result<RpcServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let draining = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(StatsInner::default());
        let hub = NotificationHub::start(Arc::clone(&stats));
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let conns: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_draining = Arc::clone(&draining);
        let accept_stats = Arc::clone(&stats);
        let accept_workers = Arc::clone(&workers);
        let accept_conns = Arc::clone(&conns);
        let note_tx = hub.note_tx.clone();
        let control_tx = hub.control_tx.clone();
        let served_cache = cache.clone();
        let accept_thread = std::thread::Builder::new()
            .name("psrpc-accept".into())
            .spawn(move || {
                for (conn_id, stream) in (0_u64..).zip(listener.incoming()) {
                    if accept_shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { break };
                    // The read timeout is what lets a worker notice the
                    // drain flag between requests without tearing the
                    // one in flight.
                    let _ = stream.set_read_timeout(Some(DRAIN_POLL));
                    accept_stats.accepted.fetch_add(1, Ordering::Release);
                    accept_stats.active.fetch_add(1, Ordering::Release);
                    if let Ok(clone) = stream.try_clone() {
                        accept_conns.lock().insert(conn_id, clone);
                    }
                    let cache = cache.clone();
                    let stats = Arc::clone(&accept_stats);
                    let conns = Arc::clone(&accept_conns);
                    let note_tx = note_tx.clone();
                    let control_tx = control_tx.clone();
                    let draining = Arc::clone(&accept_draining);
                    let worker = std::thread::Builder::new()
                        .name(format!("psrpc-conn-{conn_id}"))
                        .spawn(move || {
                            let _ = serve_tcp_connection(
                                cache,
                                stream,
                                &note_tx,
                                &control_tx,
                                &stats,
                                &draining,
                            );
                            stats.active.fetch_sub(1, Ordering::Release);
                            conns.lock().remove(&conn_id);
                        })
                        .expect("spawning a connection worker never fails");
                    // Reap workers whose connection already ended, so
                    // short-lived clients cannot grow this vector for
                    // the server's whole lifetime.
                    let mut workers = accept_workers.lock();
                    workers.retain(|w| !w.is_finished());
                    workers.push(worker);
                }
            })
            .expect("spawning the accept thread never fails");

        Ok(RpcServer {
            local_addr,
            cache: served_cache,
            shutdown,
            draining,
            accept_thread: Some(accept_thread),
            workers,
            conns,
            stats,
            hub: Some(hub),
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the server's counters, including the cache's
    /// automaton-dispatch statistics.
    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot(&self.cache)
    }

    /// Graceful shutdown: stop accepting, let every connection worker
    /// finish its request in flight and drain out at its next idle gap,
    /// force-close whatever is still connected after a grace period,
    /// join all threads, and **flush the cache's write-ahead log** —
    /// an acknowledged insert can never be lost to a server exit,
    /// regardless of sync policy.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop with a throw-away connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Phase 1 — drain: workers exit on their own once their current
        // request is answered and their socket goes idle.
        self.draining.store(true, Ordering::Release);
        let deadline = std::time::Instant::now() + DRAIN_GRACE;
        while self.stats.active.load(Ordering::Acquire) > 0 && std::time::Instant::now() < deadline
        {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        // Phase 2 — force: close whatever outlived the grace period
        // (e.g. a peer mid-send that never completes its message).
        for (_, stream) in self.conns.lock().drain() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        let workers: Vec<JoinHandle<()>> = std::mem::take(&mut *self.workers.lock());
        for worker in workers {
            let _ = worker.join();
        }
        // Workers have unregistered their automata, so no notifier clones
        // remain and the hub drains and exits.
        if let Some(hub) = self.hub.take() {
            hub.finish();
        }
        // Every request is answered and no new one can arrive: force any
        // buffered log records to disk before the server is gone.
        let _ = self.cache.flush_wal();
    }
}

impl Drop for RpcServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() || self.hub.is_some() {
            self.stop();
        }
    }
}

fn serve_tcp_connection(
    cache: Cache,
    stream: TcpStream,
    note_tx: &Sender<pscache::Notification>,
    control_tx: &Sender<HubMsg>,
    stats: &StatsInner,
    draining: &AtomicBool,
) -> Result<()> {
    let (send, recv) = tcp_split(stream)?;
    serve_with_hub(cache, send, recv, note_tx, control_tx, stats, draining)
}

/// Serve one duplex connection until the peer disconnects, with a private
/// fan-out hub. Usable with any transport (TCP or in-process), which is
/// how the stress benchmarks and the in-process client embed a server
/// without a network stack.
pub fn serve_connection(
    cache: Cache,
    send: impl SendHalf + 'static,
    recv: impl RecvHalf,
) -> Result<()> {
    let stats = Arc::new(StatsInner::default());
    let hub = NotificationHub::start(Arc::clone(&stats));
    let note_tx = hub.note_tx.clone();
    let control_tx = hub.control_tx.clone();
    let never_draining = AtomicBool::new(false);
    let result = serve_with_hub(
        cache,
        send,
        recv,
        &note_tx,
        &control_tx,
        &stats,
        &never_draining,
    );
    // Our clones must go before finish(), or the hub threads never see
    // the disconnect they join on.
    drop(note_tx);
    drop(control_tx);
    hub.finish();
    result
}

/// The per-connection worker body: spawns the connection's writer thread,
/// decodes and executes requests in order, and tears down the
/// connection's automata when the peer goes away.
#[allow(clippy::too_many_arguments)]
fn serve_with_hub(
    cache: Cache,
    mut send: impl SendHalf + 'static,
    mut recv: impl RecvHalf,
    note_tx: &Sender<pscache::Notification>,
    control_tx: &Sender<HubMsg>,
    stats: &StatsInner,
    draining: &AtomicBool,
) -> Result<()> {
    // All messages to the client are funnelled through one writer thread
    // so that replies and asynchronous notifications interleave safely.
    let (out_tx, out_rx) = unbounded::<ServerMessage>();
    let writer = std::thread::Builder::new()
        .name("psrpc-writer".into())
        .spawn(move || {
            while let Ok(msg) = out_rx.recv() {
                if send.send(&msg.encode()).is_err() {
                    break;
                }
            }
        })
        .expect("spawning the writer thread never fails");

    let ctx = RequestCtx {
        cache: &cache,
        note_tx,
        control_tx,
        stats,
    };
    let mut registered = HashSet::new();
    let result = serve_requests(&ctx, &mut registered, &out_tx, &mut recv, draining);

    // The client is gone: its automata (and their routes) go with it.
    teardown_registered(&ctx, &mut registered);
    drop(out_tx);
    let _ = writer.join();
    result
}

/// The transport-independent surroundings of one request: the cache it
/// executes against, the hub handles new automata attach to, and the
/// counters it reports into. The blocking server builds one per
/// connection worker; the reactor builds one per worker thread and
/// shares it across the connections that worker drains.
pub(crate) struct RequestCtx<'a> {
    pub(crate) cache: &'a Cache,
    pub(crate) note_tx: &'a Sender<pscache::Notification>,
    pub(crate) control_tx: &'a Sender<HubMsg>,
    pub(crate) stats: &'a StatsInner,
}

/// Unregister everything a departed connection had registered and drop
/// the hub routes; shared by both transports' teardown paths.
pub(crate) fn teardown_registered(ctx: &RequestCtx<'_>, registered: &mut HashSet<AutomatonId>) {
    for id in registered.drain() {
        let _ = ctx.cache.unregister_automaton(id);
        let _ = ctx.control_tx.send(HubMsg::RemoveRoute(id.0));
    }
}

fn serve_requests(
    ctx: &RequestCtx<'_>,
    registered: &mut HashSet<AutomatonId>,
    out_tx: &Sender<ServerMessage>,
    recv: &mut impl RecvHalf,
    draining: &AtomicBool,
) -> Result<()> {
    loop {
        let bytes = match recv.recv_idle()? {
            RecvEvent::Message(bytes) => bytes,
            // Idle gap between requests: the one place a draining
            // worker may exit — never mid-request, never mid-message.
            RecvEvent::Idle => {
                if draining.load(Ordering::Acquire) {
                    return Ok(());
                }
                continue;
            }
            RecvEvent::Closed => return Ok(()),
        };
        let msg = ClientMessage::decode(&bytes)?;
        ctx.stats.requests.fetch_add(1, Ordering::Release);
        let route = || Box::new(out_tx.clone()) as Box<dyn RouteSink>;
        let token = msg
            .token
            .map(|(client_id, seq)| IdemToken { client_id, seq });
        ctx.stats.worker_busy.fetch_add(1, Ordering::Release);
        let reply = handle_request(ctx, registered, &route, msg.request, token);
        ctx.stats.worker_busy.fetch_sub(1, Ordering::Release);
        if out_tx
            .send(ServerMessage::Reply {
                seq: msg.seq,
                reply,
            })
            .is_err()
        {
            return Ok(());
        }
    }
}

/// Convert a cache rejection into its wire reply. One error is typed
/// rather than textual: a cluster ownership miss becomes the
/// [`CacheReply::NotMine`] redirect (carrying the owning partition's
/// index), so a misrouted client can re-send instead of parsing error
/// prose. Everything else is the cache's error text.
fn error_to_reply(e: pscache::Error) -> CacheReply {
    match e {
        pscache::Error::WrongPartition { partition } => CacheReply::NotMine { partition },
        other => CacheReply::Error {
            message: other.to_string(),
        },
    }
}

/// Re-materialise the wire reply a token's original execution produced.
/// Byte-for-byte what the lost first reply carried (same variant, same
/// payload), which is what the differential proptest pins down.
fn outcome_to_reply(outcome: TokenOutcome) -> CacheReply {
    match outcome {
        TokenOutcome::Created => CacheReply::Created,
        TokenOutcome::Inserted { replaced, tstamp } => CacheReply::Inserted { replaced, tstamp },
        TokenOutcome::InsertedBatch { tstamps } => CacheReply::InsertedBatch { tstamps },
    }
}

/// The observability bucket a request's service time lands in (see
/// `pscache::obs::ReqKind`): one per mutation shape, with every cheap
/// control request (ping, stats, health, metrics) sharing a bucket.
pub(crate) fn req_kind(request: &Request) -> pscache::ReqKind {
    match request {
        Request::Execute { .. } => pscache::ReqKind::Execute,
        Request::Insert { .. } => pscache::ReqKind::Insert,
        Request::InsertBatch { .. } => pscache::ReqKind::InsertBatch,
        Request::RegisterAutomaton { .. } => pscache::ReqKind::Register,
        Request::UnregisterAutomaton { .. } => pscache::ReqKind::Unregister,
        Request::Ping | Request::ServerStats | Request::Health | Request::Metrics => {
            pscache::ReqKind::Control
        }
    }
}

/// Execute one decoded request against the cache on behalf of one
/// connection. `registered` is that connection's automaton ownership
/// set and `make_route` builds the sink the hub will route the new
/// automaton's notifications through — the only two transport-specific
/// inputs, which is what lets the blocking server and the reactor share
/// every request semantic (including flush-before-ack durability and
/// idempotency-token dedup). `token` is the client's exactly-once stamp
/// on mutating requests: a token whose outcome the cache already
/// remembers short-circuits to that outcome instead of re-executing.
pub(crate) fn handle_request(
    ctx: &RequestCtx<'_>,
    registered: &mut HashSet<AutomatonId>,
    make_route: &dyn Fn() -> Box<dyn RouteSink>,
    request: Request,
    token: Option<IdemToken>,
) -> CacheReply {
    // Dedup before execution: a retry of an already-applied mutation
    // must return the original outcome, not apply again (and not fail
    // with DuplicateKey). The lookup-then-execute window is safe because
    // a client never has two in-flight requests with the same token.
    ctx.cache.obs().count_request(req_kind(&request));
    if let Some(t) = token {
        if let Some(outcome) = ctx.cache.token_lookup(t) {
            return outcome_to_reply(outcome);
        }
    }
    match request {
        Request::Ping => CacheReply::Pong,
        Request::ServerStats => CacheReply::Stats {
            stats: ctx.stats.snapshot(ctx.cache),
        },
        Request::Health => CacheReply::Health {
            report: health_report(ctx.cache, ctx.stats),
        },
        Request::Metrics => CacheReply::Metrics {
            snapshot: ctx.cache.obs().snapshot(),
        },
        Request::Execute { command } => match ctx
            .cache
            .execute_with_token(&command, token)
            .and_then(|response| {
                // Flush-before-ack for the SQL surface too: an insert or
                // create arriving as text must be as durable at ack time as
                // one arriving through the typed fast path below. Selects
                // skip the flush — they wrote nothing.
                if !matches!(response, Response::Rows(_)) {
                    ctx.cache.flush_wal()?;
                }
                Ok(response)
            }) {
            Ok(response) => response_to_reply(response),
            Err(e) => error_to_reply(e),
        },
        Request::Insert {
            table,
            values,
            upsert,
        } => {
            let result = ctx.cache.insert_with_token(&table, values, upsert, token);
            match result.and_then(|outcome| {
                // Flush-before-ack: under every sync policy the reply a
                // client sees for a durable-table insert implies the
                // record is on disk. Under the default group-commit
                // policy the insert already waited for durability and
                // this is a no-op; under `SyncPolicy::OsOnly` it is the
                // flush that upgrades the write to durable.
                ctx.cache.flush_wal()?;
                Ok(outcome)
            }) {
                Ok((replaced, tstamp)) => CacheReply::Inserted { replaced, tstamp },
                Err(e) => error_to_reply(e),
            }
        }
        Request::InsertBatch {
            table,
            rows,
            upsert,
        } => {
            let result = ctx
                .cache
                .insert_batch_with_token(&table, rows, upsert, token);
            match result.and_then(|tstamps| {
                // Flush-before-ack, as for Request::Insert above.
                ctx.cache.flush_wal()?;
                Ok(tstamps)
            }) {
                Ok(tstamps) => CacheReply::InsertedBatch { tstamps },
                Err(e) => error_to_reply(e),
            }
        }
        Request::RegisterAutomaton { source } => {
            match ctx
                .cache
                .register_automaton_with_notifier(&source, ctx.note_tx.clone())
            {
                Ok(id) => {
                    registered.insert(id);
                    // Route the automaton's notifications to this
                    // connection's writer; anything the hub parked while
                    // we got here is flushed first.
                    let _ = ctx.control_tx.send(HubMsg::AddRoute(id.0, make_route()));
                    CacheReply::Registered { id: id.0 }
                }
                Err(e) => CacheReply::Error {
                    message: e.to_string(),
                },
            }
        }
        Request::UnregisterAutomaton { id } => {
            let id = AutomatonId(id);
            match ctx.cache.unregister_automaton(id) {
                Ok(()) => {
                    registered.remove(&id);
                    let _ = ctx.control_tx.send(HubMsg::RemoveRoute(id.0));
                    CacheReply::Unregistered
                }
                Err(e) => CacheReply::Error {
                    message: e.to_string(),
                },
            }
        }
    }
}

/// Convert a cache response into its wire reply by moving the payload —
/// result rows are never cloned, and their string scalars still share
/// storage with the table they were selected from (see
/// [`crate::message`] for the marshalling contract).
fn response_to_reply(response: Response) -> CacheReply {
    match response {
        Response::Created => CacheReply::Created,
        Response::Inserted { replaced, tstamp } => CacheReply::Inserted { replaced, tstamp },
        Response::InsertedBatch { tstamps } => CacheReply::InsertedBatch { tstamps },
        Response::Rows(rs) => CacheReply::Rows {
            columns: rs.columns,
            rows: rs
                .rows
                .into_iter()
                .map(|r| WireRow {
                    values: r.values,
                    tstamp: r.tstamp,
                })
                .collect(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::Receiver;
    use gapl::event::Scalar;
    use pscache::CacheBuilder;

    /// A per-test harness owning the hub handles [`RequestCtx`] borrows.
    struct TestConn {
        note_tx: Sender<pscache::Notification>,
        control_tx: Sender<HubMsg>,
        out_tx: Sender<ServerMessage>,
        stats: Arc<StatsInner>,
        registered: HashSet<AutomatonId>,
    }

    impl TestConn {
        fn handle(&mut self, cache: &Cache, request: Request) -> CacheReply {
            let ctx = RequestCtx {
                cache,
                note_tx: &self.note_tx,
                control_tx: &self.control_tx,
                stats: &self.stats,
            };
            let out_tx = self.out_tx.clone();
            let route = move || Box::new(out_tx.clone()) as Box<dyn RouteSink>;
            handle_request(&ctx, &mut self.registered, &route, request, None)
        }
    }

    fn test_conn(_cache: &Cache) -> (TestConn, Receiver<ServerMessage>, NotificationHub) {
        let stats = Arc::new(StatsInner::default());
        let hub = NotificationHub::start(Arc::clone(&stats));
        let (out_tx, out_rx) = unbounded();
        let conn = TestConn {
            note_tx: hub.note_tx.clone(),
            control_tx: hub.control_tx.clone(),
            out_tx,
            stats,
            registered: HashSet::new(),
        };
        (conn, out_rx, hub)
    }

    #[test]
    fn response_conversion_covers_all_variants() {
        assert_eq!(response_to_reply(Response::Created), CacheReply::Created);
        assert_eq!(
            response_to_reply(Response::Inserted {
                replaced: false,
                tstamp: 3
            }),
            CacheReply::Inserted {
                replaced: false,
                tstamp: 3
            }
        );
        assert_eq!(
            response_to_reply(Response::InsertedBatch {
                tstamps: vec![1, 2]
            }),
            CacheReply::InsertedBatch {
                tstamps: vec![1, 2]
            }
        );
        let rs = pscache::ResultSet {
            columns: vec!["a".into()],
            rows: vec![pscache::Row {
                values: vec![Scalar::Int(1)],
                tstamp: 9,
            }],
        };
        match response_to_reply(Response::Rows(rs)) {
            CacheReply::Rows { columns, rows } => {
                assert_eq!(columns, vec!["a"]);
                assert_eq!(rows[0].tstamp, 9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bind_and_shutdown_do_not_hang() {
        let cache = CacheBuilder::new().build();
        let server = RpcServer::bind(cache, "127.0.0.1:0").unwrap();
        assert_ne!(server.local_addr().port(), 0);
        assert_eq!(server.stats(), ServerStats::default());
        server.shutdown();
    }

    #[test]
    fn handle_request_reports_cache_errors() {
        let cache = CacheBuilder::new().build();
        let (mut conn, _out_rx, _hub) = test_conn(&cache);
        let reply = conn.handle(
            &cache,
            Request::Execute {
                command: "select * from Missing".into(),
            },
        );
        assert!(matches!(reply, CacheReply::Error { .. }));
        let reply = conn.handle(&cache, Request::UnregisterAutomaton { id: 999 });
        assert!(matches!(reply, CacheReply::Error { .. }));
        let reply = conn.handle(&cache, Request::Ping);
        assert_eq!(reply, CacheReply::Pong);
        let reply = conn.handle(
            &cache,
            Request::InsertBatch {
                table: "Missing".into(),
                rows: vec![vec![Scalar::Int(1)]],
                upsert: false,
            },
        );
        assert!(matches!(reply, CacheReply::Error { .. }));
    }

    #[test]
    fn batched_inserts_execute_against_the_cache() {
        let cache = CacheBuilder::new().build();
        cache.execute("create table T (v integer)").unwrap();
        let (mut conn, _out_rx, _hub) = test_conn(&cache);
        let reply = conn.handle(
            &cache,
            Request::InsertBatch {
                table: "T".into(),
                rows: (0..10).map(|i| vec![Scalar::Int(i)]).collect(),
                upsert: false,
            },
        );
        match reply {
            CacheReply::InsertedBatch { tstamps } => assert_eq!(tstamps.len(), 10),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(cache.table_len("T").unwrap(), 10);
    }

    #[test]
    fn stats_requests_surface_dispatch_counters() {
        let cache = CacheBuilder::new().build();
        cache
            .execute("create table Ticks (sym varchar(8), price integer)")
            .unwrap();
        let (_id, _rx) = cache
            .register_automaton(
                "subscribe t to Ticks; behavior { if (t.sym == 'IBM') send(t.price); }",
            )
            .unwrap();
        for sym in ["IBM", "A", "B", "C"] {
            cache
                .insert("Ticks", vec![Scalar::Str(sym.into()), Scalar::Int(1)])
                .unwrap();
        }
        assert!(cache.quiesce(std::time::Duration::from_secs(5)));
        let (mut conn, _out_rx, _hub) = test_conn(&cache);
        match conn.handle(&cache, Request::ServerStats) {
            CacheReply::Stats { stats } => {
                assert_eq!(stats.automata_active, 1);
                assert_eq!(stats.events_delivered, 1);
                assert_eq!(stats.events_processed, 1);
                assert_eq!(stats.events_skipped_by_prefilter, 3);
                assert_eq!(stats.automaton_queue_depth, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn the_hub_parks_notifications_until_the_route_appears() {
        let stats = Arc::new(StatsInner::default());
        let hub = NotificationHub::start(Arc::clone(&stats));
        // A notification for an automaton with no route yet.
        hub.note_tx
            .send(pscache::Notification {
                automaton: AutomatonId(7),
                values: vec![Scalar::Int(1)],
                at: 5,
            })
            .unwrap();
        // Adding the route flushes the parked notification.
        let (out_tx, out_rx) = unbounded();
        assert!(hub
            .control_tx
            .send(HubMsg::AddRoute(7, Box::new(out_tx)))
            .is_ok());
        let msg = out_rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .unwrap();
        assert!(matches!(
            msg,
            ServerMessage::Notification { automaton: 7, .. }
        ));
        assert_eq!(stats.notifications.load(Ordering::Acquire), 1);
        hub.finish();
    }
}
