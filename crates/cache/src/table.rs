//! Tables: ephemeral streams and persistent relations.
//!
//! The cache supports two table kinds (§3):
//!
//! * **ephemeral** tables — append-only streams whose primary key is the
//!   time of insertion, stored in a [`CircularBuffer`];
//! * **persistent** tables — time-varying relations whose primary key is
//!   the *first* attribute of the schema, stored in the heap; the
//!   `on duplicate key update` insert modifier replaces the existing row
//!   while the default insert appends a new one (and fails on a duplicate
//!   key).
//!
//! Every table is simultaneously a publish/subscribe topic with the same
//! name; publication is handled by [`crate::cache::Cache`], not here.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use gapl::event::{Scalar, Schema, Timestamp, Tuple};

use crate::circular::CircularBuffer;
use crate::error::{Error, Result};

/// Default number of tuples retained by an ephemeral table's circular
/// buffer.
pub const DEFAULT_STREAM_CAPACITY: usize = 65_536;

/// Whether a table is an append-only stream or a keyed relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableKind {
    /// Append-only stream in a circular buffer.
    Ephemeral,
    /// Keyed, heap-resident relation.
    Persistent,
}

/// Outcome of an insert, used by the cache to decide what to publish.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertOutcome {
    /// The tuple as stored (with its insertion timestamp).
    pub stored: Tuple,
    /// Whether an existing row was replaced (`on duplicate key update`).
    pub replaced: bool,
}

/// A table plus its topic metadata.
#[derive(Debug)]
pub enum Table {
    /// Append-only stream.
    Ephemeral(EphemeralTable),
    /// Keyed relation.
    Persistent(PersistentTable),
}

impl Table {
    /// Create an ephemeral (stream) table with the given buffer capacity.
    pub fn ephemeral(schema: Arc<Schema>, capacity: usize) -> Table {
        Table::Ephemeral(EphemeralTable::new(schema, capacity))
    }

    /// Create a persistent (relation) table keyed by its first attribute.
    pub fn persistent(schema: Arc<Schema>) -> Table {
        Table::Persistent(PersistentTable::new(schema))
    }

    /// The table's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        match self {
            Table::Ephemeral(t) => &t.schema,
            Table::Persistent(t) => &t.schema,
        }
    }

    /// The table kind.
    pub fn kind(&self) -> TableKind {
        match self {
            Table::Ephemeral(_) => TableKind::Ephemeral,
            Table::Persistent(_) => TableKind::Persistent,
        }
    }

    /// Number of rows currently stored.
    pub fn len(&self) -> usize {
        match self {
            Table::Ephemeral(t) => t.buffer.len(),
            Table::Persistent(t) => t.rows.len(),
        }
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a row. `values` must conform to the schema; `tstamp` is the
    /// insertion time assigned by the cache; `on_duplicate_update` selects
    /// the keyed-update behaviour for persistent tables.
    ///
    /// # Errors
    ///
    /// Returns a schema error for malformed tuples, and a
    /// [`Error::WrongTableKind`]-style error when a duplicate key is
    /// inserted into a persistent table without `on duplicate key update`.
    pub fn insert(
        &mut self,
        values: Vec<Scalar>,
        tstamp: Timestamp,
        on_duplicate_update: bool,
    ) -> Result<InsertOutcome> {
        match self {
            Table::Ephemeral(t) => t.insert(values, tstamp),
            Table::Persistent(t) => t.insert(values, tstamp, on_duplicate_update),
        }
    }

    /// All rows in time-of-insertion order (the default retrieval order for
    /// either table kind, per §3). Equivalent to
    /// [`Table::snapshot_since`]`(None)`.
    pub fn scan(&self) -> Vec<Tuple> {
        self.snapshot_since(None)
    }

    /// Rows in time-of-insertion order, restricted to those inserted
    /// strictly after `since` when a timestamp is given.
    ///
    /// This is the indexed `select … since τ` path: insertion timestamps
    /// are monotone (the table clamps them on insert), so the matching
    /// rows are a *suffix* of the insertion order and a binary search
    /// finds its start — O(log n + k) for a k-row window over an n-row
    /// table, instead of the O(n) filter a full scan would need.
    ///
    /// The returned tuples share their rows with the table
    /// (`Arc`-cloned, never deep-copied), so callers can evaluate
    /// queries on the snapshot after releasing the table lock.
    pub fn snapshot_since(&self, since: Option<Timestamp>) -> Vec<Tuple> {
        match self {
            Table::Ephemeral(t) => match since {
                None => t.buffer.iter().cloned().collect(),
                Some(tau) => {
                    let start = t.buffer.partition_point(|tup| tup.tstamp() <= tau);
                    t.buffer.iter_from(start).cloned().collect()
                }
            },
            Table::Persistent(t) => {
                let start = match since {
                    None => 0,
                    Some(tau) => t.log.partition_point(|e| e.tuple.tstamp() <= tau),
                };
                t.log[start..]
                    .iter()
                    .filter(|e| t.is_live(e))
                    .map(|e| e.tuple.clone())
                    .collect()
            }
        }
    }

    /// Look up a row by primary key (persistent tables only).
    pub fn lookup(&self, key: &str) -> Option<Tuple> {
        match self {
            Table::Ephemeral(_) => None,
            Table::Persistent(t) => t.rows.get(key).map(|(_, tuple)| tuple.clone()),
        }
    }

    /// Remove a row by primary key (persistent tables only).
    ///
    /// # Errors
    ///
    /// Returns [`Error::WrongTableKind`] for ephemeral tables.
    pub fn remove(&mut self, key: &str) -> Result<Option<Tuple>> {
        match self {
            Table::Ephemeral(t) => Err(Error::WrongTableKind {
                name: t.schema.name().to_owned(),
                message: "cannot remove keyed rows from an ephemeral stream".into(),
            }),
            Table::Persistent(t) => {
                let removed = t.rows.remove(key).map(|(_, tuple)| tuple);
                if removed.is_some() {
                    t.note_stale();
                }
                Ok(removed)
            }
        }
    }

    /// Circular-buffer capacity of an ephemeral stream; 0 for relations
    /// (used when encoding checkpoint snapshots).
    pub fn stream_capacity(&self) -> usize {
        match self {
            Table::Ephemeral(t) => t.capacity(),
            Table::Persistent(_) => 0,
        }
    }

    /// LSN of the newest write-ahead-log record covering this table. A
    /// checkpoint snapshot stores this watermark so recovery (and a
    /// replication bootstrap) replays exactly the records the snapshot
    /// does not already reflect. Ephemeral streams carry only their
    /// `create` record's LSN — their rows are never logged — which
    /// keeps the snapshot's high watermark an honest statement of how
    /// much history it covers.
    pub fn wal_watermark(&self) -> u64 {
        match self {
            Table::Ephemeral(t) => t.wal_watermark,
            Table::Persistent(t) => t.wal_watermark,
        }
    }

    /// Record that the table's newest logged record has sequence number
    /// `lsn`. Called with the table lock held, in the same critical
    /// section that appended the record, so the watermark and the log
    /// can never disagree.
    pub fn note_wal(&mut self, lsn: u64) {
        match self {
            Table::Ephemeral(t) => t.wal_watermark = t.wal_watermark.max(lsn),
            Table::Persistent(t) => t.wal_watermark = t.wal_watermark.max(lsn),
        }
    }

    /// Primary keys of a persistent table, in key order; empty for streams.
    pub fn keys(&self) -> Vec<String> {
        match self {
            Table::Ephemeral(_) => Vec::new(),
            Table::Persistent(t) => {
                let mut keys: Vec<String> = t.rows.keys().map(|k| k.to_string()).collect();
                keys.sort();
                keys
            }
        }
    }
}

/// An append-only stream backed by a circular buffer.
#[derive(Debug)]
pub struct EphemeralTable {
    schema: Arc<Schema>,
    buffer: CircularBuffer<Tuple>,
    /// Largest insertion timestamp stored so far; inserts are clamped to
    /// it so the buffer stays sorted by timestamp even if the clock
    /// regresses, which is what lets `since τ` binary-search the suffix.
    last_tstamp: Timestamp,
    /// See [`Table::wal_watermark`]: the stream's `create` record LSN.
    wal_watermark: u64,
}

impl EphemeralTable {
    fn new(schema: Arc<Schema>, capacity: usize) -> Self {
        EphemeralTable {
            schema,
            buffer: CircularBuffer::new(capacity.max(1)),
            last_tstamp: 0,
            wal_watermark: 0,
        }
    }

    fn insert(&mut self, values: Vec<Scalar>, tstamp: Timestamp) -> Result<InsertOutcome> {
        let tstamp = tstamp.max(self.last_tstamp);
        let tuple = Tuple::new(Arc::clone(&self.schema), values, tstamp)?;
        self.last_tstamp = tstamp;
        self.buffer.push(tuple.clone());
        Ok(InsertOutcome {
            stored: tuple,
            replaced: false,
        })
    }

    /// Total number of tuples ever inserted (including overwritten ones).
    pub fn total_inserted(&self) -> u64 {
        self.buffer.total_pushed()
    }

    /// The buffer capacity.
    pub fn capacity(&self) -> usize {
        self.buffer.capacity()
    }
}

/// One entry of a persistent table's insertion-ordered log.
#[derive(Debug)]
struct LogEntry {
    /// Sequence number the row had when this entry was appended.
    seq: u64,
    /// The row's primary key, shared with the stored tuple.
    key: Arc<str>,
    /// The row as stored (shared, never deep-copied).
    tuple: Tuple,
}

/// A keyed relation held in the heap.
///
/// Alongside the key → row map, the table keeps an insertion-ordered
/// **log** of `(seq, key, tuple)` entries. The log is what `scan` and the
/// indexed `since τ` path read: it is already in temporal order (no
/// per-query sort) and its timestamps are monotone, so a window query
/// binary-searches its suffix. Updated or removed rows leave *stale*
/// entries behind; readers skip an entry whose `seq` no longer matches
/// the live row for its key, and the log is compacted once more than
/// half of it is stale, keeping the amortized cost of maintenance O(1)
/// per write.
#[derive(Debug)]
pub struct PersistentTable {
    schema: Arc<Schema>,
    rows: HashMap<Arc<str>, (u64, Tuple)>,
    /// Insertion-ordered history; temporally sorted, may contain stale
    /// entries for updated/removed keys. The key is carried in the entry
    /// (an `Arc` share of the scalar's text for string keys) so the
    /// liveness check is a pure map probe, never a re-format.
    log: Vec<LogEntry>,
    /// Number of stale entries currently in the log.
    stale: usize,
    next_seq: u64,
    /// See [`EphemeralTable::last_tstamp`].
    last_tstamp: Timestamp,
    /// See [`Table::wal_watermark`].
    wal_watermark: u64,
}

impl PersistentTable {
    fn new(schema: Arc<Schema>) -> Self {
        PersistentTable {
            schema,
            rows: HashMap::new(),
            log: Vec::new(),
            stale: 0,
            next_seq: 0,
            last_tstamp: 0,
            wal_watermark: 0,
        }
    }

    /// Whether a log entry still describes the live row for its key.
    fn is_live(&self, entry: &LogEntry) -> bool {
        self.rows
            .get(&*entry.key)
            .is_some_and(|(cur, _)| *cur == entry.seq)
    }

    /// Record that one live log entry went stale, compacting the log when
    /// stale entries outnumber live ones.
    fn note_stale(&mut self) {
        self.stale += 1;
        if self.log.len() > 64 && self.stale * 2 > self.log.len() {
            let rows = &self.rows;
            self.log
                .retain(|e| rows.get(&*e.key).is_some_and(|(cur, _)| *cur == e.seq));
            self.stale = 0;
        }
    }

    fn insert(
        &mut self,
        values: Vec<Scalar>,
        tstamp: Timestamp,
        on_duplicate_update: bool,
    ) -> Result<InsertOutcome> {
        let tstamp = tstamp.max(self.last_tstamp);
        let tuple = Tuple::new(Arc::clone(&self.schema), values, tstamp)?;
        let key = primary_key(&tuple);
        let replaced = self.rows.contains_key(&*key);
        if replaced && !on_duplicate_update {
            return Err(Error::WrongTableKind {
                name: self.schema.name().to_owned(),
                message: format!("duplicate primary key `{key}` (use `on duplicate key update`)"),
            });
        }
        self.last_tstamp = tstamp;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.rows.insert(Arc::clone(&key), (seq, tuple.clone()));
        self.log.push(LogEntry {
            seq,
            key,
            tuple: tuple.clone(),
        });
        if replaced {
            self.note_stale();
        }
        Ok(InsertOutcome {
            stored: tuple,
            replaced,
        })
    }
}

/// A lock-striped, sharded map from table name to table.
///
/// The table *map* is the structure every insert, select and registration
/// touches, so a single `RwLock<HashMap>` around it serialises the whole
/// cache under multi-core load. The store therefore splits tables across
/// `shard_count` independent stripes, each guarded by its own
/// [`RwLock`]; a table's stripe is chosen by hashing its name, and the
/// per-table [`Mutex`] inside the stripe serialises inserts to *that*
/// table only, preserving the paper's strict time-of-insertion order per
/// topic while letting inserts into different tables proceed on
/// different cores without contention.
///
/// Lock order: a stripe lock is never held while a table mutex is taken —
/// lookups clone the `Arc` out of the stripe and release it first — so
/// the store cannot deadlock against the publish path.
/// One lock stripe of the store: a name → table map under its own lock.
type Stripe = RwLock<HashMap<String, Arc<Mutex<Table>>>>;

#[derive(Debug)]
pub(crate) struct TableStore {
    shards: Box<[Stripe]>,
}

impl TableStore {
    /// A store striped over `shard_count` locks (rounded up to at least
    /// one).
    pub fn new(shard_count: usize) -> Self {
        let shards = (0..shard_count.max(1))
            .map(|_| RwLock::new(HashMap::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        TableStore { shards }
    }

    fn shard(&self, name: &str) -> &Stripe {
        &self.shards[self.shard_index(name)]
    }

    /// The stripe index `name` hashes to. The write-ahead log is striped
    /// by the same function, so a table's records always land in the log
    /// shard of its store stripe.
    pub fn shard_index(&self, name: &str) -> usize {
        let mut hasher = DefaultHasher::new();
        name.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    /// Number of stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Insert a fresh table under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TableExists`] when the name is taken.
    pub fn create(&self, name: &str, table: Table) -> Result<()> {
        let mut shard = self.shard(name).write();
        if shard.contains_key(name) {
            return Err(Error::TableExists {
                name: name.to_owned(),
            });
        }
        shard.insert(name.to_owned(), Arc::new(Mutex::new(table)));
        Ok(())
    }

    /// The table registered under `name`, detached from its stripe lock
    /// (callers lock the returned table themselves).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoSuchTable`] for unknown names.
    pub fn get(&self, name: &str) -> Result<Arc<Mutex<Table>>> {
        self.shard(name)
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NoSuchTable {
                name: name.to_owned(),
            })
    }

    /// Whether a table named `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.shard(name).read().contains_key(name)
    }

    /// Drop the table registered under `name`, if any. Used by the
    /// replication snapshot reset, which must leave *exactly* the
    /// snapshot's tables behind; queries holding an `Arc` to the table
    /// finish against the detached instance.
    pub fn remove(&self, name: &str) -> bool {
        self.shard(name).write().remove(name).is_some()
    }

    /// Total number of tables across all stripes.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Every table name, in stripe order (callers sort if they need a
    /// stable order).
    pub fn names(&self) -> Vec<String> {
        self.shards
            .iter()
            .flat_map(|s| s.read().keys().cloned().collect::<Vec<_>>())
            .collect()
    }

    /// Every `(name, table)` pair, detached from the stripe locks, in
    /// name order. Used by checkpoints, which then lock each table
    /// individually — never a stripe lock and a table lock at once.
    pub fn tables(&self) -> Vec<(String, Arc<Mutex<Table>>)> {
        let mut all: Vec<(String, Arc<Mutex<Table>>)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .iter()
                    .map(|(name, table)| (name.clone(), Arc::clone(table)))
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }
}

/// The primary key of a persistent-table tuple: the display form of its
/// first attribute.
///
/// String-keyed tables are the common case (IP addresses, symbols,
/// hostnames); for those the scalar's shared text is `Arc`-cloned
/// instead of being re-formatted into a fresh `String` on every insert
/// and lookup. Only non-string keys pay for formatting.
pub fn primary_key(tuple: &Tuple) -> Arc<str> {
    match tuple.values().first() {
        Some(Scalar::Str(s)) => Arc::clone(s),
        Some(other) => Arc::from(other.to_string()),
        None => Arc::from(""),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapl::event::AttrType;

    fn flows_schema() -> Arc<Schema> {
        Arc::new(
            Schema::new(
                "Flows",
                vec![("srcip", AttrType::Str), ("nbytes", AttrType::Int)],
            )
            .unwrap(),
        )
    }

    fn usage_schema() -> Arc<Schema> {
        Arc::new(
            Schema::new(
                "BWUsage",
                vec![("ipaddr", AttrType::Str), ("bytes", AttrType::Int)],
            )
            .unwrap(),
        )
    }

    #[test]
    fn ephemeral_table_appends_in_order_and_caps_at_capacity() {
        let mut t = Table::ephemeral(flows_schema(), 3);
        for i in 0..5i64 {
            t.insert(
                vec![Scalar::Str(format!("10.0.0.{i}").into()), Scalar::Int(i)],
                i as u64,
                false,
            )
            .unwrap();
        }
        assert_eq!(t.kind(), TableKind::Ephemeral);
        assert_eq!(t.len(), 3);
        let scanned = t.scan();
        let bytes: Vec<i64> = scanned
            .iter()
            .map(|tup| tup.values()[1].as_int().unwrap())
            .collect();
        assert_eq!(bytes, vec![2, 3, 4]);
        assert!(t.lookup("10.0.0.4").is_none());
        assert!(t.remove("10.0.0.4").is_err());
        assert!(t.keys().is_empty());
    }

    #[test]
    fn persistent_table_is_keyed_by_first_attribute() {
        let mut t = Table::persistent(usage_schema());
        t.insert(
            vec![Scalar::Str("10.0.0.1".into()), Scalar::Int(100)],
            1,
            false,
        )
        .unwrap();
        t.insert(
            vec![Scalar::Str("10.0.0.2".into()), Scalar::Int(200)],
            2,
            false,
        )
        .unwrap();
        assert_eq!(t.kind(), TableKind::Persistent);
        assert_eq!(t.len(), 2);
        let row = t.lookup("10.0.0.1").unwrap();
        assert_eq!(row.values()[1], Scalar::Int(100));
        assert_eq!(
            t.keys(),
            vec!["10.0.0.1".to_string(), "10.0.0.2".to_string()]
        );
    }

    #[test]
    fn duplicate_key_requires_on_duplicate_key_update() {
        let mut t = Table::persistent(usage_schema());
        t.insert(
            vec![Scalar::Str("10.0.0.1".into()), Scalar::Int(100)],
            1,
            false,
        )
        .unwrap();
        let err = t
            .insert(
                vec![Scalar::Str("10.0.0.1".into()), Scalar::Int(150)],
                2,
                false,
            )
            .unwrap_err();
        assert!(err.to_string().contains("duplicate primary key"));

        let outcome = t
            .insert(
                vec![Scalar::Str("10.0.0.1".into()), Scalar::Int(150)],
                3,
                true,
            )
            .unwrap();
        assert!(outcome.replaced);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup("10.0.0.1").unwrap().values()[1], Scalar::Int(150));
    }

    #[test]
    fn updated_rows_move_to_the_end_of_temporal_order() {
        let mut t = Table::persistent(usage_schema());
        for (ip, bytes, ts) in [("a", 1, 1), ("b", 2, 2), ("c", 3, 3)] {
            t.insert(vec![Scalar::Str(ip.into()), Scalar::Int(bytes)], ts, false)
                .unwrap();
        }
        // Updating `a` makes it the most recently inserted.
        t.insert(vec![Scalar::Str("a".into()), Scalar::Int(9)], 4, true)
            .unwrap();
        let order: Vec<String> = t
            .scan()
            .iter()
            .map(|tup| tup.values()[0].to_string())
            .collect();
        assert_eq!(order, vec!["b", "c", "a"]);
    }

    #[test]
    fn removal_from_persistent_table() {
        let mut t = Table::persistent(usage_schema());
        t.insert(vec![Scalar::Str("a".into()), Scalar::Int(1)], 1, false)
            .unwrap();
        assert!(t.remove("a").unwrap().is_some());
        assert!(t.remove("a").unwrap().is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn table_store_stripes_tables_and_rejects_duplicates() {
        let store = TableStore::new(4);
        assert_eq!(store.shard_count(), 4);
        for i in 0..32 {
            store
                .create(&format!("T{i}"), Table::ephemeral(flows_schema(), 4))
                .unwrap();
        }
        assert_eq!(store.len(), 32);
        assert!(store.contains("T7"));
        assert!(!store.contains("T99"));
        assert!(matches!(
            store.create("T0", Table::ephemeral(flows_schema(), 4)),
            Err(Error::TableExists { .. })
        ));
        assert!(matches!(store.get("nope"), Err(Error::NoSuchTable { .. })));
        let mut names = store.names();
        names.sort();
        assert_eq!(names.len(), 32);
        assert_eq!(names[0], "T0");
        // A degenerate stripe count still works.
        let store = TableStore::new(0);
        assert_eq!(store.shard_count(), 1);
        store
            .create("only", Table::persistent(usage_schema()))
            .unwrap();
        store.get("only").unwrap().lock().len();
    }

    #[test]
    fn schema_violations_are_rejected() {
        let mut t = Table::ephemeral(flows_schema(), 8);
        assert!(t.insert(vec![Scalar::Int(1)], 0, false).is_err());
        assert!(t
            .insert(vec![Scalar::Int(1), Scalar::Int(2)], 0, false)
            .is_err());
    }
}
