//! Error types for the cache.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// The error type returned by every fallible public function of the cache.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A SQL-ish command could not be parsed.
    Sql {
        /// Explanation of the failure.
        message: String,
    },
    /// The named table (topic) does not exist.
    NoSuchTable {
        /// Table name.
        name: String,
    },
    /// A table (topic) with that name already exists.
    TableExists {
        /// Table name.
        name: String,
    },
    /// The operation is not valid for the table's kind (e.g. keyed update of
    /// an ephemeral stream).
    WrongTableKind {
        /// Table name.
        name: String,
        /// Explanation of the failure.
        message: String,
    },
    /// The supplied tuple or predicate does not match the table schema.
    Schema {
        /// Explanation of the failure.
        message: String,
    },
    /// Registering an automaton failed (compile error in the GAPL source).
    AutomatonCompile {
        /// The compile error reported back to the registering application.
        message: String,
    },
    /// The automaton id is unknown (already unregistered, or never existed).
    NoSuchAutomaton {
        /// The offending id.
        id: u64,
    },
    /// An automaton raised a runtime error while processing an event.
    AutomatonRuntime {
        /// Explanation of the failure.
        message: String,
    },
    /// Bytes did not decode as a valid wire value (see [`crate::wire`]);
    /// raised by the RPC layer on malformed frames and by recovery on
    /// corrupt log payloads.
    Protocol {
        /// Explanation of the failure.
        message: String,
    },
    /// The durability subsystem failed: write-ahead-log or snapshot I/O,
    /// or an unrecoverable inconsistency found during replay.
    Wal {
        /// Explanation of the failure.
        message: String,
    },
    /// The replication subsystem failed: the stream could not be
    /// established, a shipped frame did not decode, or a promotion was
    /// requested on a cache that is not a follower.
    Repl {
        /// Explanation of the failure.
        message: String,
    },
    /// A mutation was attempted on a read-only follower replica. Writes
    /// go to the primary; the follower applies its replication stream
    /// only, until [`Cache::promote`](crate::Cache::promote) flips it.
    ReadOnlyReplica {
        /// The rejected operation.
        message: String,
    },
    /// A write was routed to a cluster partition that does not own its
    /// key (see [`crate::cluster`]). Carries the owning partition's
    /// index so the RPC layer can redirect instead of failing opaquely;
    /// nothing was applied.
    WrongPartition {
        /// The partition that owns the rejected row's key.
        partition: u64,
    },
    /// Internal invariant violation (poisoned thread, disconnected channel).
    Internal {
        /// Explanation of the failure.
        message: String,
    },
}

impl Error {
    /// Construct a [`Error::Sql`].
    pub fn sql(message: impl Into<String>) -> Self {
        Error::Sql {
            message: message.into(),
        }
    }

    /// Construct a [`Error::Schema`].
    pub fn schema(message: impl Into<String>) -> Self {
        Error::Schema {
            message: message.into(),
        }
    }

    /// Construct a [`Error::Internal`].
    pub fn internal(message: impl Into<String>) -> Self {
        Error::Internal {
            message: message.into(),
        }
    }

    /// Construct a [`Error::Protocol`].
    pub fn protocol(message: impl Into<String>) -> Self {
        Error::Protocol {
            message: message.into(),
        }
    }

    /// Construct a [`Error::Wal`].
    pub fn wal(message: impl Into<String>) -> Self {
        Error::Wal {
            message: message.into(),
        }
    }

    /// Construct a [`Error::Repl`].
    pub fn repl(message: impl Into<String>) -> Self {
        Error::Repl {
            message: message.into(),
        }
    }

    /// Construct a [`Error::ReadOnlyReplica`].
    pub fn read_only(message: impl Into<String>) -> Self {
        Error::ReadOnlyReplica {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Sql { message } => write!(f, "sql error: {message}"),
            Error::NoSuchTable { name } => write!(f, "no such table `{name}`"),
            Error::TableExists { name } => write!(f, "table `{name}` already exists"),
            Error::WrongTableKind { name, message } => {
                write!(f, "table `{name}`: {message}")
            }
            Error::Schema { message } => write!(f, "schema error: {message}"),
            Error::AutomatonCompile { message } => {
                write!(f, "automaton failed to compile: {message}")
            }
            Error::NoSuchAutomaton { id } => write!(f, "no such automaton #{id}"),
            Error::Protocol { message } => write!(f, "protocol error: {message}"),
            Error::Wal { message } => write!(f, "durability error: {message}"),
            Error::Repl { message } => write!(f, "replication error: {message}"),
            Error::ReadOnlyReplica { message } => {
                write!(f, "read-only follower replica: {message}")
            }
            Error::WrongPartition { partition } => {
                write!(f, "key belongs to cluster partition {partition}")
            }
            Error::AutomatonRuntime { message } => {
                write!(f, "automaton runtime error: {message}")
            }
            Error::Internal { message } => write!(f, "internal cache error: {message}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        // The only I/O the cache performs is durability I/O, so every
        // `io::Error` reaching this crate's `?` is a WAL/snapshot failure.
        Error::wal(e.to_string())
    }
}

impl From<gapl::Error> for Error {
    fn from(e: gapl::Error) -> Self {
        match e {
            gapl::Error::Runtime { message } => Error::AutomatonRuntime { message },
            gapl::Error::Data { message } => Error::Schema { message },
            other => Error::AutomatonCompile {
                message: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            Error::NoSuchTable { name: "X".into() }.to_string(),
            "no such table `X`"
        );
        assert!(Error::sql("bad token").to_string().contains("bad token"));
        assert!(Error::schema("arity").to_string().contains("arity"));
    }

    #[test]
    fn gapl_errors_map_to_cache_errors() {
        let e: Error = gapl::Error::compile("nope").into();
        assert!(matches!(e, Error::AutomatonCompile { .. }));
        let e: Error = gapl::Error::runtime("boom").into();
        assert!(matches!(e, Error::AutomatonRuntime { .. }));
        let e: Error = gapl::Error::data("bad").into();
        assert!(matches!(e, Error::Schema { .. }));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
