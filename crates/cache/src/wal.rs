//! Durability: per-shard write-ahead log, group commit, checkpoints and
//! crash recovery.
//!
//! The paper's cache keeps *persistent* tables in the heap: a restart
//! loses every allowance table, every materialised view, every
//! `associate`d relation. This module makes persistent tables actually
//! persistent while leaving the hot path almost untouched:
//!
//! * **Per-shard log.** The write-ahead log is striped exactly like the
//!   [`TableStore`](crate::table): a table's records go to the log shard
//!   of its store stripe, so tables that never contend on a stripe lock
//!   never contend on a log either. Each shard is one append-only file
//!   (`wal-NNN.log`) of length-prefixed, CRC-32-checksummed records whose
//!   payloads use the same wire encoding as the RPC layer
//!   ([`crate::wire`], re-exported by `psrpc`).
//!
//! * **Group commit.** An insert appends its record to the shard's
//!   in-memory buffer while it still holds the table lock (so the log
//!   order of one table equals its apply order), then waits for
//!   durability *after* releasing it. The first waiter becomes the
//!   **leader**: it takes the whole buffer, writes it and issues one
//!   `fsync` for every record buffered so far while later arrivals queue
//!   behind the condvar — under 16 concurrent inserters one disk flush
//!   commits ~16 inserts, which is where the ≥5x group-commit speedup in
//!   `BENCH_wal.json` comes from.
//!
//! * **Checkpoints.** Every [`checkpoint_every`](crate::CacheBuilder::checkpoint_every)
//!   records (or on [`Cache::checkpoint`](crate::Cache::checkpoint)) the
//!   cache rotates every log shard, writes a snapshot of every table to
//!   `snapshot.snap` (temp file + atomic rename), and deletes the rotated
//!   logs. Each table records the LSN of its last logged record in the
//!   snapshot, which is what makes replay exact under concurrency: a log
//!   record is applied at recovery only if its LSN is newer than the
//!   snapshot's watermark for its table.
//!
//! * **Recovery.** [`Cache::recover`](crate::Cache::recover) (or
//!   [`CacheBuilder::open`](crate::CacheBuilder::open)) loads the
//!   snapshot, replays every complete log record in global LSN order, and
//!   stops at the first torn or corrupt frame — a crash mid-write loses
//!   at most the records that were never acknowledged. Replay rebuilds
//!   table state byte-for-byte (same rows, same order, same timestamps)
//!   and **never publishes**: automata only ever observe live traffic.
//!   Ephemeral streams are not logged at all; after recovery they exist
//!   (their DDL is durable) but are empty.
//!
//! * **Failure contract (fail-stop).** A write or fsync error wedges
//!   the affected log shard permanently: the failing operation and
//!   every later durable write on that shard return [`Error::Wal`]. A
//!   row whose log append failed may already be visible in memory (it
//!   was applied, and published, under the table lock before the
//!   append) — the erroring insert tells the caller that memory has
//!   diverged from the log, and the recommended response is to restart
//!   the process and recover: recovery reflects acknowledged writes
//!   only. This is the standard WAL trade: un-publishing a delivered
//!   tuple is impossible, so a wedged log stops accepting work loudly
//!   rather than silently widening the divergence.

use std::fs::{self, File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use gapl::event::{AttrType, Scalar};

use crate::error::{Error, Result};
use crate::protect::{decode_outcome, encode_outcome, TokenOutcome};
use crate::table::TableKind;
use crate::wire::{WireReader, WireWriter};

/// Name of the snapshot file inside a durability directory.
pub const SNAPSHOT_FILE: &str = "snapshot.snap";

/// When a shard's log must be flushed relative to the insert that wrote
/// it (see [`CacheBuilder::sync_policy`](crate::CacheBuilder::sync_policy)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Every record is written and fsynced individually, inside the
    /// insert that produced it. One disk flush per insert — the durable
    /// baseline that group commit is measured against, and the right
    /// choice only when inserters are rare.
    Immediate,
    /// Group commit (the default): records are buffered, and one waiter
    /// per shard flushes on behalf of everyone queued behind it. Inserts
    /// still return only after their record is on disk; concurrent
    /// inserters amortise the fsync.
    #[default]
    Group,
    /// Records are written to the OS promptly but never fsynced by the
    /// insert path; durability is best-effort until [`Cache::flush_wal`](crate::Cache::flush_wal)
    /// (which the RPC server calls before acknowledging inserts) or a
    /// checkpoint forces a flush. Survives a process crash, not a power
    /// failure.
    OsOnly,
}

/// Counters describing a cache's durability subsystem; see
/// [`Cache::wal_stats`](crate::Cache::wal_stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalStats {
    /// Records appended to the log since the cache was opened.
    pub records: u64,
    /// Disk flushes (`fsync`) issued by the commit path. With group
    /// commit under concurrent load this is far smaller than `records`;
    /// `records / syncs` is the achieved group size.
    pub syncs: u64,
    /// Checkpoints completed (snapshot written, logs truncated).
    pub checkpoints: u64,
    /// Records replayed from the log when the cache was opened.
    pub replayed: u64,
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven, dependency-free.
// ---------------------------------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    })
}

/// CRC-32 (IEEE) of `bytes` — the per-record checksum of the log format.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Record format.
// ---------------------------------------------------------------------------

const OP_CREATE: u8 = 0;
const OP_INSERT: u8 = 1;
const OP_REMOVE: u8 = 2;
const OP_TOKEN: u8 = 3;
/// An insert carrying its idempotency token *inside* the record: one
/// frame, one checksum, so the mutation and its token are durable — or
/// torn away — strictly together. A separate token frame could be
/// split from its insert by a crash between two fsync waves, breaking
/// the exactly-once contract; embedding closes that window for the
/// insert hot path. (`OP_TOKEN` remains for outcomes with no row
/// record of their own, i.e. `create table`.)
const OP_INSERT_TOKENED: u8 = 4;

/// Pseudo table name token records report from [`ReplayOp::table`]. The
/// leading control byte cannot appear in a real table name, so token
/// records never collide with a table's snapshot watermark; they are
/// filtered against the snapshot's dedicated token watermark instead.
pub(crate) const TOKEN_TABLE_NAME: &str = "\u{1}tokens";

/// One decoded log record, ready to re-apply at recovery.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ReplayOp {
    /// `create table` / `create persistenttable`.
    CreateTable {
        /// Log sequence number of the record.
        lsn: u64,
        /// Table name.
        name: String,
        /// Stream or relation.
        kind: TableKind,
        /// Circular-buffer capacity (streams only; 0 for relations).
        capacity: usize,
        /// Schema columns in order.
        columns: Vec<(String, AttrType)>,
    },
    /// An applied insert/upsert batch (a single insert is a 1-row batch).
    Insert {
        /// Log sequence number of the record.
        lsn: u64,
        /// Target table.
        table: String,
        /// Whether `on duplicate key update` semantics were used.
        upsert: bool,
        /// The insertion timestamp the cache assigned (already clamped).
        tstamp: u64,
        /// Rows in application order.
        rows: Vec<Vec<Scalar>>,
        /// The idempotency token the originating request was stamped
        /// with, when there was one: `(client_id, token_seq, batch)`.
        /// `batch` records whether the outcome re-materialises as a
        /// batch reply (the two reply shapes differ on the wire even
        /// for one row). Embedded in the insert's own record so token
        /// and mutation are durable atomically ([`OP_INSERT_TOKENED`]).
        token: Option<(u64, u64, bool)>,
    },
    /// A keyed removal from a persistent table.
    Remove {
        /// Log sequence number of the record.
        lsn: u64,
        /// Target table.
        table: String,
        /// Primary key of the removed row.
        key: String,
    },
    /// An idempotency-token outcome, logged in the same critical section
    /// (and to the same shard) as the mutation it covers so the two are
    /// durable — or lost — together. Re-applying is idempotent.
    Token {
        /// Log sequence number of the record.
        lsn: u64,
        /// The issuing client's identity.
        client_id: u64,
        /// The client's token counter for the mutation.
        seq: u64,
        /// The remembered outcome, re-materialised for retries.
        outcome: TokenOutcome,
    },
}

impl ReplayOp {
    pub(crate) fn lsn(&self) -> u64 {
        match self {
            ReplayOp::CreateTable { lsn, .. }
            | ReplayOp::Insert { lsn, .. }
            | ReplayOp::Remove { lsn, .. }
            | ReplayOp::Token { lsn, .. } => *lsn,
        }
    }

    pub(crate) fn table(&self) -> &str {
        match self {
            ReplayOp::CreateTable { name, .. } => name,
            ReplayOp::Insert { table, .. } | ReplayOp::Remove { table, .. } => table,
            ReplayOp::Token { .. } => TOKEN_TABLE_NAME,
        }
    }
}

fn kind_to_byte(kind: TableKind) -> u8 {
    match kind {
        TableKind::Ephemeral => 0,
        TableKind::Persistent => 1,
    }
}

fn kind_from_byte(b: u8) -> Result<TableKind> {
    match b {
        0 => Ok(TableKind::Ephemeral),
        1 => Ok(TableKind::Persistent),
        other => Err(Error::protocol(format!("unknown table kind byte {other}"))),
    }
}

fn attr_to_byte(ty: AttrType) -> u8 {
    match ty {
        AttrType::Int => 0,
        AttrType::Real => 1,
        AttrType::Tstamp => 2,
        AttrType::Bool => 3,
        AttrType::Str => 4,
    }
}

fn attr_from_byte(b: u8) -> Result<AttrType> {
    match b {
        0 => Ok(AttrType::Int),
        1 => Ok(AttrType::Real),
        2 => Ok(AttrType::Tstamp),
        3 => Ok(AttrType::Bool),
        4 => Ok(AttrType::Str),
        other => Err(Error::protocol(format!("unknown attr type byte {other}"))),
    }
}

/// Frame `payload` as one log record: `[u32 len][u32 crc32][payload]`.
///
/// The length prefix is a `u32`, so a payload is capped at 4 GiB — far
/// beyond any record (`MAX_BATCH_ROWS` bounds batches long before
/// that); snapshots check the limit explicitly in [`encode_snapshot`]
/// and fail the checkpoint rather than write an undecodable frame.
pub(crate) fn frame(payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len())
        .expect("frame payloads are bounded below the u32 length prefix");
    let mut framed = Vec::with_capacity(payload.len() + 8);
    framed.extend_from_slice(&len.to_le_bytes());
    framed.extend_from_slice(&crc32(payload).to_le_bytes());
    framed.extend_from_slice(payload);
    framed
}

pub(crate) fn encode_create(
    lsn: u64,
    name: &str,
    kind: TableKind,
    capacity: usize,
    columns: &[(String, AttrType)],
) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u64(lsn);
    w.put_u8(OP_CREATE);
    w.put_str(name);
    w.put_u8(kind_to_byte(kind));
    w.put_u64(capacity as u64);
    w.put_u32(columns.len() as u32);
    for (col, ty) in columns {
        w.put_str(col);
        w.put_u8(attr_to_byte(*ty));
    }
    frame(&w.finish())
}

pub(crate) fn encode_insert(
    lsn: u64,
    table: &str,
    upsert: bool,
    tstamp: u64,
    rows: &[&[Scalar]],
    token: Option<(u64, u64, bool)>,
) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u64(lsn);
    match token {
        None => w.put_u8(OP_INSERT),
        Some((client_id, seq, batch)) => {
            w.put_u8(OP_INSERT_TOKENED);
            w.put_u64(client_id);
            w.put_u64(seq);
            w.put_bool(batch);
        }
    }
    w.put_str(table);
    w.put_bool(upsert);
    w.put_u64(tstamp);
    w.put_u32(rows.len() as u32);
    for row in rows {
        w.put_scalars(row);
    }
    frame(&w.finish())
}

pub(crate) fn encode_remove(lsn: u64, table: &str, key: &str) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u64(lsn);
    w.put_u8(OP_REMOVE);
    w.put_str(table);
    w.put_str(key);
    frame(&w.finish())
}

pub(crate) fn encode_token(lsn: u64, client_id: u64, seq: u64, outcome: &TokenOutcome) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u64(lsn);
    w.put_u8(OP_TOKEN);
    w.put_u64(client_id);
    w.put_u64(seq);
    encode_outcome(&mut w, outcome);
    frame(&w.finish())
}

pub(crate) fn decode_record(payload: &[u8]) -> Result<ReplayOp> {
    let mut r = WireReader::new(payload);
    let lsn = r.get_u64()?;
    let op = r.get_u8()?;
    match op {
        OP_CREATE => {
            let name = r.get_str()?;
            let kind = kind_from_byte(r.get_u8()?)?;
            let capacity = r.get_u64()? as usize;
            let ncols = r.get_u32()? as usize;
            if ncols > 1_000_000 {
                return Err(Error::protocol("unreasonably wide schema in log record"));
            }
            let mut columns = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                let col = r.get_str()?;
                let ty = attr_from_byte(r.get_u8()?)?;
                columns.push((col, ty));
            }
            Ok(ReplayOp::CreateTable {
                lsn,
                name,
                kind,
                capacity,
                columns,
            })
        }
        OP_INSERT => Ok(ReplayOp::Insert {
            lsn,
            table: r.get_str()?,
            upsert: r.get_bool()?,
            tstamp: r.get_u64()?,
            rows: r.get_rows()?,
            token: None,
        }),
        OP_INSERT_TOKENED => {
            let token = Some((r.get_u64()?, r.get_u64()?, r.get_bool()?));
            Ok(ReplayOp::Insert {
                lsn,
                table: r.get_str()?,
                upsert: r.get_bool()?,
                tstamp: r.get_u64()?,
                rows: r.get_rows()?,
                token,
            })
        }
        OP_REMOVE => Ok(ReplayOp::Remove {
            lsn,
            table: r.get_str()?,
            key: r.get_str()?,
        }),
        OP_TOKEN => Ok(ReplayOp::Token {
            lsn,
            client_id: r.get_u64()?,
            seq: r.get_u64()?,
            outcome: decode_outcome(&mut r)?,
        }),
        other => Err(Error::protocol(format!("unknown log op byte {other}"))),
    }
}

/// Scan `bytes` as a sequence of log frames and return how many
/// **complete, checksummed** records it contains before the first torn or
/// corrupt frame. This is the exact prefix [`Cache::recover`](crate::Cache::recover) will
/// replay from that shard; the crash-recovery tests use it to predict
/// recovered state from a truncated log.
pub fn count_complete_records(bytes: &[u8]) -> usize {
    scan_frames(bytes).0.len()
}

/// Split a log file into decoded payload slices, stopping at the first
/// frame whose length runs past the buffer, whose checksum fails, or
/// whose payload is empty. The empty-payload check matters after a power
/// failure: filesystems can extend a file with zeroes before the data
/// reaches disk, and a zero-filled header reads as `len = 0, crc = 0` —
/// which `crc32(&[]) == 0` would otherwise accept as a valid record. No
/// real record or snapshot has an empty payload, so `len == 0` always
/// means "torn tail", never data.
pub(crate) fn scan_frames(bytes: &[u8]) -> (Vec<&[u8]>, usize) {
    let mut payloads = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= 8 {
        let len =
            u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4-byte slice")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4-byte slice"));
        if len == 0 {
            break;
        }
        let Some(end) = (pos + 8).checked_add(len) else {
            break;
        };
        if end > bytes.len() {
            break;
        }
        let payload = &bytes[pos + 8..end];
        if crc32(payload) != crc {
            break;
        }
        payloads.push(payload);
        pos = end;
    }
    (payloads, pos)
}

/// Split a buffer of concatenated log frames into `(lsn, frame)` pairs
/// — each frame slice **includes** its `[len][crc]` header and is
/// checksum-validated; scanning stops at the first torn or corrupt
/// frame, exactly like [`scan_frames`]. This is the shared walk behind
/// the replication hub (re-sequencing sealed chunks) and the bootstrap
/// backlog read.
pub(crate) fn split_frames(bytes: &[u8]) -> Vec<(u64, &[u8])> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= 8 {
        let len =
            u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4-byte slice")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4-byte slice"));
        // Every record payload starts with its u64 LSN, so anything
        // shorter (including the zero-filled torn-tail case) is not a
        // record.
        if len < 8 {
            break;
        }
        let Some(end) = (pos + 8).checked_add(len) else {
            break;
        };
        if end > bytes.len() {
            break;
        }
        let payload = &bytes[pos + 8..end];
        if crc32(payload) != crc {
            break;
        }
        let lsn = u64::from_le_bytes(payload[..8].try_into().expect("8-byte slice"));
        out.push((lsn, &bytes[pos..end]));
        pos = end;
    }
    out
}

// ---------------------------------------------------------------------------
// Files.
// ---------------------------------------------------------------------------

/// Path of shard `shard`'s live log inside `dir`.
pub fn log_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("wal-{shard:03}.log"))
}

fn rotated_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("wal-{shard:03}.log.1"))
}

/// Open `dir` (creating it) and list the shard indices that currently
/// have a live or rotated log file.
fn existing_shards(dir: &Path) -> Result<Vec<usize>> {
    let mut shards = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(rest) = name.strip_prefix("wal-") {
            let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            if let Ok(idx) = digits.parse::<usize>() {
                if !shards.contains(&idx) {
                    shards.push(idx);
                }
            }
        }
    }
    shards.sort_unstable();
    Ok(shards)
}

fn fsync_dir(dir: &Path) -> Result<()> {
    // Durability of a rename requires flushing the directory itself.
    File::open(dir)?.sync_all()?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Snapshots.
// ---------------------------------------------------------------------------

/// One table's worth of checkpoint state.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SnapshotTable {
    pub name: String,
    pub kind: TableKind,
    /// Circular-buffer capacity (streams only; 0 for relations).
    pub capacity: usize,
    pub columns: Vec<(String, AttrType)>,
    /// LSN of the table's newest logged record at snapshot time; log
    /// records at or below this are already reflected in `rows`.
    pub watermark: u64,
    /// Live rows in scan (time-of-insertion) order, with their stored
    /// timestamps. Always empty for ephemeral streams.
    pub rows: Vec<(u64, Vec<Scalar>)>,
}

/// A full checkpoint image: every table plus the idempotency-token
/// table. The token watermark is written **before** the token entries so
/// [`scan_snapshot_high_watermark`]'s header-only walk can reach it
/// without stepping over the entries.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct Snapshot {
    /// Tables in snapshot order.
    pub tables: Vec<SnapshotTable>,
    /// Idempotency-token outcomes as `(client_id, token_seq, outcome)`,
    /// in per-client FIFO (record) order.
    pub tokens: Vec<(u64, u64, TokenOutcome)>,
    /// Highest LSN at which a token was recorded when the snapshot was
    /// taken. Participates in the snapshot's high watermark so a token
    /// frame with the globally newest LSN never loses LSN ground when a
    /// checkpoint truncates the logs.
    pub token_watermark: u64,
}

fn encode_snapshot(snapshot: &Snapshot) -> Result<Vec<u8>> {
    let mut w = WireWriter::new();
    w.put_u8(2); // version: 2 = v1 table section + trailing token section
    w.put_u32(snapshot.tables.len() as u32);
    for t in &snapshot.tables {
        w.put_str(&t.name);
        w.put_u8(kind_to_byte(t.kind));
        w.put_u64(t.capacity as u64);
        w.put_u32(t.columns.len() as u32);
        for (col, ty) in &t.columns {
            w.put_str(col);
            w.put_u8(attr_to_byte(*ty));
        }
        w.put_u64(t.watermark);
        w.put_u32(t.rows.len() as u32);
        for (tstamp, values) in &t.rows {
            w.put_u64(*tstamp);
            w.put_scalars(values);
        }
    }
    w.put_u64(snapshot.token_watermark);
    w.put_u32(snapshot.tokens.len() as u32);
    for (client_id, seq, outcome) in &snapshot.tokens {
        w.put_u64(*client_id);
        w.put_u64(*seq);
        encode_outcome(&mut w, outcome);
    }
    let payload = w.finish();
    if u32::try_from(payload.len()).is_err() {
        // Refusing the checkpoint beats writing a frame whose u32 length
        // prefix lies about the payload: the rotated logs stay on disk
        // (rotate_end never runs) and recovery remains possible.
        return Err(Error::wal(format!(
            "snapshot payload of {} bytes exceeds the 4 GiB frame limit",
            payload.len()
        )));
    }
    Ok(frame(&payload))
}

/// Highest LSN covered by a snapshot: the max of its per-table
/// watermarks and the token watermark. A replication subscriber whose
/// `from_lsn` is below this cannot be served from the logs alone (the
/// checkpoint that wrote the snapshot truncated them) and bootstraps
/// from the snapshot instead.
pub(crate) fn snapshot_high_watermark(snapshot: &Snapshot) -> u64 {
    snapshot
        .tables
        .iter()
        .map(|t| t.watermark)
        .max()
        .unwrap_or(0)
        .max(snapshot.token_watermark)
}

/// The snapshot's high watermark, read with a header-only walk: row
/// payloads are stepped over (strings validated in place, nothing
/// materialised), so probing a multi-gigabyte snapshot on every
/// follower subscription costs a scan, not an allocation storm.
pub(crate) fn scan_snapshot_high_watermark(bytes: &[u8]) -> Result<u64> {
    let (payloads, _) = scan_frames(bytes);
    let payload = payloads
        .first()
        .ok_or_else(|| Error::wal("snapshot file is torn or corrupt"))?;
    let mut r = WireReader::new(payload);
    let version = r.get_u8()?;
    if version != 1 && version != 2 {
        return Err(Error::wal(format!("unknown snapshot version {version}")));
    }
    let ntables = r.get_u32()? as usize;
    if ntables > 1_000_000 {
        return Err(Error::wal("unreasonably many tables in snapshot"));
    }
    let mut high = 0u64;
    for _ in 0..ntables {
        r.get_str_slice()?; // name
        r.get_u8()?; // kind
        r.get_u64()?; // capacity
        let ncols = r.get_u32()? as usize;
        if ncols > 1_000_000 {
            return Err(Error::wal("unreasonably wide schema in snapshot"));
        }
        for _ in 0..ncols {
            r.get_str_slice()?;
            r.get_u8()?;
        }
        high = high.max(r.get_u64()?); // watermark
        let nrows = r.get_u32()? as usize;
        if nrows > 100_000_000 {
            return Err(Error::wal("unreasonably many rows in snapshot"));
        }
        for _ in 0..nrows {
            r.get_u64()?; // tstamp
            let nvals = r.get_u32()? as usize;
            if nvals > 1_000_000 {
                return Err(Error::protocol("unreasonably large scalar sequence"));
            }
            for _ in 0..nvals {
                match r.get_u8()? {
                    0 => {
                        r.get_i64()?;
                    }
                    1 => {
                        r.get_f64()?;
                    }
                    2 => {
                        r.get_u64()?;
                    }
                    3 => {
                        r.get_bool()?;
                    }
                    4 => {
                        r.get_str_slice()?;
                    }
                    other => {
                        return Err(Error::protocol(format!("unknown scalar tag {other}")));
                    }
                }
            }
        }
    }
    if version >= 2 {
        // The token watermark sits right after the table section,
        // before the token entries — no need to walk them.
        high = high.max(r.get_u64()?);
    }
    Ok(high)
}

pub(crate) fn decode_snapshot(bytes: &[u8]) -> Result<Snapshot> {
    let (payloads, _) = scan_frames(bytes);
    let payload = payloads
        .first()
        .ok_or_else(|| Error::wal("snapshot file is torn or corrupt"))?;
    let mut r = WireReader::new(payload);
    let version = r.get_u8()?;
    if version != 1 && version != 2 {
        return Err(Error::wal(format!("unknown snapshot version {version}")));
    }
    let ntables = r.get_u32()? as usize;
    if ntables > 1_000_000 {
        return Err(Error::wal("unreasonably many tables in snapshot"));
    }
    let mut tables = Vec::with_capacity(ntables);
    for _ in 0..ntables {
        let name = r.get_str()?;
        let kind = kind_from_byte(r.get_u8()?)?;
        let capacity = r.get_u64()? as usize;
        let ncols = r.get_u32()? as usize;
        if ncols > 1_000_000 {
            return Err(Error::wal("unreasonably wide schema in snapshot"));
        }
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let col = r.get_str()?;
            let ty = attr_from_byte(r.get_u8()?)?;
            columns.push((col, ty));
        }
        let watermark = r.get_u64()?;
        let nrows = r.get_u32()? as usize;
        if nrows > 100_000_000 {
            return Err(Error::wal("unreasonably many rows in snapshot"));
        }
        let mut rows = Vec::with_capacity(nrows);
        for _ in 0..nrows {
            let tstamp = r.get_u64()?;
            rows.push((tstamp, r.get_scalars()?));
        }
        tables.push(SnapshotTable {
            name,
            kind,
            capacity,
            columns,
            watermark,
            rows,
        });
    }
    let mut tokens = Vec::new();
    let mut token_watermark = 0u64;
    if version >= 2 {
        token_watermark = r.get_u64()?;
        let ntokens = r.get_u32()? as usize;
        if ntokens > 100_000_000 {
            return Err(Error::wal("unreasonably many tokens in snapshot"));
        }
        tokens.reserve(ntokens);
        for _ in 0..ntokens {
            let client_id = r.get_u64()?;
            let seq = r.get_u64()?;
            tokens.push((client_id, seq, decode_outcome(&mut r)?));
        }
    }
    Ok(Snapshot {
        tables,
        tokens,
        token_watermark,
    })
}

// ---------------------------------------------------------------------------
// The log itself.
// ---------------------------------------------------------------------------

/// What [`Wal::open`] found on disk, ready to re-apply.
#[derive(Debug)]
pub(crate) struct Recovery {
    /// The checkpoint snapshot — tables plus token table (may be empty).
    pub snapshot: Snapshot,
    /// Log records newer than the snapshot, in global LSN order, already
    /// filtered against the per-table watermarks.
    pub ops: Vec<ReplayOp>,
    /// A previous checkpoint was interrupted (rotated logs exist on
    /// disk); the opener should checkpoint immediately after replay to
    /// re-establish the invariant that rotated logs never outlive the
    /// snapshot that covers them.
    pub needs_checkpoint: bool,
}

#[derive(Debug)]
struct ShardState {
    file: File,
    /// Frames appended but not yet written to the file.
    buf: Vec<u8>,
    /// Commit tickets issued (monotone per shard).
    appended: u64,
    /// Highest ticket whose frame is durable under the current policy.
    durable: u64,
    /// A group-commit leader is writing outside the lock.
    syncing: bool,
    /// A write or fsync failed; the log is wedged and every commit on
    /// this shard reports the error.
    failed: Option<String>,
}

#[derive(Debug)]
struct WalShard {
    state: Mutex<ShardState>,
    cond: Condvar,
}

/// A commit ticket: proof that a record was appended, used to wait for
/// its durability after the table lock is released.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WalTicket {
    shard: usize,
    seq: u64,
}

impl WalTicket {
    /// The log shard this ticket commits on; the follower apply path
    /// waits for the *last* ticket of each shard instead of every one.
    pub(crate) fn shard_index(&self) -> usize {
        self.shard
    }
}

/// A consumer of sealed log bytes — the replication tailer. The sink is
/// handed every chunk of framed records in the order it reached the log
/// *file* of its shard; chunks from different shards arrive unordered
/// and carry their LSNs in-band, so the hub behind the sink re-sequences
/// them into the global commit order.
pub(crate) type ReplSink = Arc<dyn Fn(&[u8]) + Send + Sync>;

/// Everything durable on disk for a replication bootstrap: the raw
/// snapshot file (if any) plus every complete framed record as
/// `(lsn, frame bytes)`, deduplicated and sorted by LSN.
pub(crate) type Backlog = (Option<Vec<u8>>, Vec<(u64, Vec<u8>)>);

/// The write-ahead log: one buffered, group-committed file per table
/// store stripe. See the [module documentation](self).
pub(crate) struct Wal {
    dir: PathBuf,
    policy: SyncPolicy,
    shards: Box<[WalShard]>,
    next_lsn: AtomicU64,
    /// Highest LSN found on disk when the log was opened (0 for a fresh
    /// directory); the replication hub starts its commit watermark here.
    recovered_lsn: u64,
    /// Highest LSN below which recovery found **no holes** (see
    /// [`Wal::open`]); a replica resumes its subscription from here.
    recovered_contiguous_lsn: u64,
    checkpoint_every: u64,
    records_since_checkpoint: AtomicU64,
    records: AtomicU64,
    syncs: AtomicU64,
    checkpoints: AtomicU64,
    replayed: AtomicU64,
    /// Where sealed frames are shipped (the replication hub), when the
    /// cache serves a replication stream.
    sink: std::sync::RwLock<Option<ReplSink>>,
    /// The cache's observability registry, installed right after open
    /// (see [`Wal::set_obs`]); append / group-commit-wait / fsync
    /// durations are recorded into it.
    obs: std::sync::OnceLock<Arc<crate::obs::Obs>>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("policy", &self.policy)
            .field("shards", &self.shards.len())
            .finish()
    }
}

fn lock<'a>(m: &'a Mutex<ShardState>) -> MutexGuard<'a, ShardState> {
    // A panic while holding the shard lock poisons it; the state itself
    // is bytes and counters, which remain internally consistent, so
    // recover the guard rather than wedging every committer forever.
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Wal {
    /// Open (or create) the durability directory, read the snapshot and
    /// every complete log record, and return the log ready for appends
    /// plus everything the cache must replay.
    pub fn open(
        dir: &Path,
        shard_count: usize,
        policy: SyncPolicy,
        checkpoint_every: u64,
    ) -> Result<(Wal, Recovery)> {
        fs::create_dir_all(dir)?;

        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let snapshot = if snapshot_path.exists() {
            decode_snapshot(&fs::read(&snapshot_path)?)?
        } else {
            Snapshot::default()
        };
        let watermarks: std::collections::HashMap<&str, u64> = snapshot
            .tables
            .iter()
            .map(|t| (t.name.as_str(), t.watermark))
            .collect();
        let mut created: std::collections::HashSet<String> =
            snapshot.tables.iter().map(|t| t.name.clone()).collect();

        // Read every log file present — rotated (`.log.1`) and live — not
        // just the shards the current configuration would use: the shard
        // count may have changed across restarts. Records are merged and
        // replayed in global LSN order, so the file layout never affects
        // replay semantics.
        let mut ops: Vec<ReplayOp> = Vec::new();
        let mut needs_checkpoint = false;
        let mut max_lsn = snapshot_high_watermark(&snapshot);
        for shard in existing_shards(dir)? {
            if shard >= shard_count.max(1) {
                // An orphan from a larger previous shard_count: nothing
                // will ever append to it again, so checkpoint promptly —
                // once the snapshot covers its records, rotate_end
                // reclaims the file instead of re-scanning it forever.
                needs_checkpoint = true;
            }
            for (path, rotated) in [
                (rotated_path(dir, shard), true),
                (log_path(dir, shard), false),
            ] {
                if !path.exists() {
                    continue;
                }
                if rotated {
                    needs_checkpoint = true;
                }
                let mut bytes = Vec::new();
                File::open(&path)?.read_to_end(&mut bytes)?;
                let (payloads, valid_len) = scan_frames(&bytes);
                for payload in payloads {
                    let op = decode_record(payload)?;
                    max_lsn = max_lsn.max(op.lsn());
                    ops.push(op);
                }
                if valid_len < bytes.len() {
                    // Chop the torn tail off so appended records always
                    // follow the last valid frame — recovery must never
                    // find garbage *between* valid records. This matters
                    // for rotated files too: an interrupted checkpoint
                    // may later append the live log onto this very file
                    // (rotate_begin's no-clobber path), and those
                    // records must not land behind a torn frame.
                    OpenOptions::new()
                        .write(true)
                        .open(&path)?
                        .set_len(valid_len as u64)?;
                }
            }
        }
        ops.sort_by_key(ReplayOp::lsn);
        // A crash between "append live log onto a surviving rotated file"
        // and "truncate live log" (see rotate_begin) leaves the same
        // records in both files; LSNs are globally unique per record, so
        // duplicates are exactly that and the first copy wins.
        ops.dedup_by_key(|op| op.lsn());
        // The *contiguous* recovered watermark: the highest LSN such
        // that every record above the snapshot's high watermark and at
        // or below it survived on disk. A crash between the per-shard
        // fsyncs of one commit wave can persist a higher-LSN record
        // while losing a lower one; `max_lsn` papers over that hole
        // (correct for a primary, whose lost record was simply never
        // acknowledged), but a *replica* resuming its subscription must
        // resume from the contiguous point, or the hole would never be
        // re-fetched from the primary that still has the record.
        let snapshot_high = snapshot_high_watermark(&snapshot);
        let mut contiguous_lsn = snapshot_high;
        for op in &ops {
            let lsn = op.lsn();
            if lsn <= contiguous_lsn {
                continue;
            }
            if lsn == contiguous_lsn + 1 {
                contiguous_lsn += 1;
            } else {
                break;
            }
        }
        ops.retain(|op| match op {
            ReplayOp::CreateTable { name, .. } => created.insert(name.clone()),
            // Token records are filtered against the snapshot's token
            // watermark, not a per-table one. (Replaying one the snapshot
            // already carries would be harmless — recording is an
            // idempotent overwrite — this just avoids the wasted work.)
            ReplayOp::Token { lsn, .. } => *lsn > snapshot.token_watermark,
            other => other.lsn() > watermarks.get(other.table()).copied().unwrap_or(0),
        });

        let shards = (0..shard_count.max(1))
            .map(|shard| {
                let file = OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(log_path(dir, shard))?;
                Ok(WalShard {
                    state: Mutex::new(ShardState {
                        file,
                        buf: Vec::new(),
                        appended: 0,
                        durable: 0,
                        syncing: false,
                        failed: None,
                    }),
                    cond: Condvar::new(),
                })
            })
            .collect::<Result<Vec<_>>>()?
            .into_boxed_slice();

        let replayed = ops.len() as u64;
        let wal = Wal {
            dir: dir.to_path_buf(),
            policy,
            shards,
            next_lsn: AtomicU64::new(max_lsn + 1),
            recovered_lsn: max_lsn,
            recovered_contiguous_lsn: contiguous_lsn,
            checkpoint_every,
            records_since_checkpoint: AtomicU64::new(0),
            records: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            replayed: AtomicU64::new(replayed),
            sink: std::sync::RwLock::new(None),
            obs: std::sync::OnceLock::new(),
        };
        Ok((
            wal,
            Recovery {
                snapshot,
                ops,
                needs_checkpoint,
            },
        ))
    }

    /// The durability directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Allocate the next global log sequence number.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn.fetch_add(1, Ordering::Relaxed)
    }

    /// Highest LSN found on disk when the log was opened.
    pub fn recovered_lsn(&self) -> u64 {
        self.recovered_lsn
    }

    /// Highest LSN with no hole below it (above the snapshot): the safe
    /// point for a replica to resume its subscription from.
    pub fn recovered_contiguous_lsn(&self) -> u64 {
        self.recovered_contiguous_lsn
    }

    /// Ensure the next allocated LSN is at least `to`. Used at follower
    /// promotion: the promoted cache must mint LSNs strictly above every
    /// record it replicated, or its own writes would collide with the
    /// history it inherited.
    pub fn bump_next_lsn(&self, to: u64) {
        self.next_lsn.fetch_max(to, Ordering::Relaxed);
    }

    /// Install the replication tailer: every chunk of framed records is
    /// handed to `sink` as soon as it reaches the shard's log file.
    pub fn set_sink(&self, sink: ReplSink) {
        *self.sink.write().unwrap_or_else(|p| p.into_inner()) = Some(sink);
    }

    /// Install the observability registry. Called once by the cache
    /// builder before the log serves any appends; a log without one
    /// (unit tests constructing a bare `Wal`) simply records nothing.
    pub fn set_obs(&self, obs: Arc<crate::obs::Obs>) {
        let _ = self.obs.set(obs);
    }

    /// Start a duration measurement iff an enabled registry is present.
    #[inline]
    fn obs_timer(&self) -> Option<std::time::Instant> {
        match self.obs.get() {
            Some(obs) if obs.enabled() => Some(std::time::Instant::now()),
            _ => None,
        }
    }

    /// Record `elapsed` into `pick(registry)` when a timer was started.
    #[inline]
    fn obs_record(
        &self,
        t: Option<std::time::Instant>,
        pick: impl Fn(&crate::obs::Obs) -> &crate::obs::LatencyHistogram,
    ) {
        if let (Some(t), Some(obs)) = (t, self.obs.get()) {
            pick(obs).record_duration(t.elapsed());
        }
    }

    /// Ship `chunk` (concatenated framed records, in the order they hit
    /// one shard's file) to the replication tailer, if one is attached.
    fn ship(&self, chunk: &[u8]) {
        if chunk.is_empty() {
            return;
        }
        let sink = self.sink.read().unwrap_or_else(|p| p.into_inner());
        if let Some(sink) = sink.as_ref() {
            sink(chunk);
        }
    }

    /// Counters snapshot.
    pub fn stats(&self) -> WalStats {
        WalStats {
            records: self.records.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            replayed: self.replayed.load(Ordering::Relaxed),
        }
    }

    /// Whether enough records have accumulated since the last checkpoint
    /// to warrant a new one.
    pub fn checkpoint_due(&self) -> bool {
        self.checkpoint_every > 0
            && self.records_since_checkpoint.load(Ordering::Relaxed) >= self.checkpoint_every
    }

    /// Append one framed record to `shard`'s log. Callers hold the
    /// affected table's lock, which is what makes a table's log order
    /// equal its apply order; the returned ticket is awaited *after*
    /// that lock is released.
    pub fn append(&self, shard: usize, framed: &[u8]) -> Result<WalTicket> {
        let t = self.obs_timer();
        let shard_idx = shard % self.shards.len();
        let s = &self.shards[shard_idx];
        let mut state = lock(&s.state);
        if let Some(why) = &state.failed {
            return Err(Error::wal(why.clone()));
        }
        state.buf.extend_from_slice(framed);
        state.appended += 1;
        let seq = state.appended;
        self.records.fetch_add(1, Ordering::Relaxed);
        self.records_since_checkpoint
            .fetch_add(1, Ordering::Relaxed);
        match self.policy {
            SyncPolicy::Immediate => {
                // One write + one fsync per record, inside the append.
                self.flush_locked(s, &mut state, true)?;
            }
            SyncPolicy::OsOnly => {
                // Hand the bytes to the OS now (so a *process* crash loses
                // nothing) but leave the disk flush to flush()/checkpoints.
                self.flush_locked(s, &mut state, false)?;
            }
            SyncPolicy::Group => {}
        }
        self.obs_record(t, |o| &o.wal_append_ns);
        Ok(WalTicket {
            shard: shard_idx,
            seq,
        })
    }

    /// Block until the record behind `ticket` is durable. Under
    /// [`SyncPolicy::Group`] the first waiter flushes for everyone
    /// queued behind it (leader election via the `syncing` flag); under
    /// the other policies the append already did the work.
    pub fn wait_durable(&self, ticket: WalTicket) -> Result<()> {
        if !matches!(self.policy, SyncPolicy::Group) {
            return Ok(());
        }
        let t = self.obs_timer();
        let result = self.wait_durable_group(ticket);
        self.obs_record(t, |o| &o.wal_commit_wait_ns);
        result
    }

    /// [`Wal::wait_durable`] under [`SyncPolicy::Group`]: wait for (or
    /// lead) the flush covering `ticket`.
    fn wait_durable_group(&self, ticket: WalTicket) -> Result<()> {
        let s = &self.shards[ticket.shard];
        let mut state = lock(&s.state);
        loop {
            if let Some(why) = &state.failed {
                return Err(Error::wal(why.clone()));
            }
            if state.durable >= ticket.seq {
                return Ok(());
            }
            if state.syncing {
                state = s
                    .cond
                    .wait(state)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                continue;
            }
            // Become the leader: take every frame buffered so far and
            // flush it with a single fsync while the lock is free for
            // concurrent appenders to keep queueing.
            state.syncing = true;
            let chunk = std::mem::take(&mut state.buf);
            let target = state.appended;
            let file = state.file.try_clone();
            drop(state);
            let outcome = file.map_err(Error::from).and_then(|file| {
                (&file).write_all(&chunk)?;
                let t = self.obs_timer();
                file.sync_data()?;
                self.obs_record(t, |o| &o.wal_fsync_ns);
                Ok(())
            });
            if outcome.is_ok() {
                // Still the leader (`syncing` is ours), so chunks reach
                // the replication tailer in this shard's file order.
                self.ship(&chunk);
            }
            self.syncs.fetch_add(1, Ordering::Relaxed);
            state = lock(&s.state);
            state.syncing = false;
            match outcome {
                Ok(()) => state.durable = state.durable.max(target),
                Err(e) => state.failed = Some(e.to_string()),
            }
            s.cond.notify_all();
        }
    }

    /// Write (and, when `sync`, fsync) everything buffered on one shard.
    /// The state lock is held and no leader is in flight.
    fn flush_locked(&self, s: &WalShard, state: &mut ShardState, sync: bool) -> Result<()> {
        debug_assert!(!state.syncing);
        if !state.buf.is_empty() {
            let buf = std::mem::take(&mut state.buf);
            if let Err(e) = state.file.write_all(&buf) {
                state.failed = Some(e.to_string());
                return Err(e.into());
            }
            // The bytes are in the log file: seal them for replication.
            // The shard lock is held, so chunks ship in file order.
            self.ship(&buf);
        }
        if sync {
            let t = self.obs_timer();
            if let Err(e) = state.file.sync_data() {
                state.failed = Some(e.to_string());
                return Err(e.into());
            }
            self.obs_record(t, |o| &o.wal_fsync_ns);
            self.syncs.fetch_add(1, Ordering::Relaxed);
            state.durable = state.appended;
            s.cond.notify_all();
        }
        Ok(())
    }

    /// Force every shard's buffered records onto disk. This is the
    /// flush-before-ack hook: under [`SyncPolicy::OsOnly`] it upgrades
    /// best-effort writes to durable ones. Under the other policies it
    /// returns immediately: every *completed* insert already waited for
    /// its own durability, and sweeping the shards here would steal
    /// records out of in-flight group-commit convoys — extra fsyncs
    /// that shrink exactly the batches group commit exists to build.
    pub fn flush(&self) -> Result<()> {
        if !matches!(self.policy, SyncPolicy::OsOnly) {
            return Ok(());
        }
        for s in self.shards.iter() {
            let mut state = lock(&s.state);
            while state.syncing {
                state = s
                    .cond
                    .wait(state)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
            if let Some(why) = &state.failed {
                return Err(Error::wal(why.clone()));
            }
            if !state.buf.is_empty() || state.durable < state.appended {
                self.flush_locked(s, &mut state, true)?;
            }
        }
        Ok(())
    }

    /// Checkpoint phase 1: flush and rotate every shard's log so the
    /// snapshot about to be taken is never older than any record left in
    /// a live log file. New appends go to fresh files immediately.
    ///
    /// If a rotated file survives from a checkpoint that failed or
    /// crashed before its snapshot landed, its records are **not yet
    /// covered by any snapshot** — renaming over it would destroy
    /// acknowledged writes. The live log is appended onto the existing
    /// rotated file instead (replay sorts by LSN, so intra-file order
    /// never matters), and only then truncated.
    pub fn rotate_begin(&self) -> Result<()> {
        for (idx, s) in self.shards.iter().enumerate() {
            let mut state = lock(&s.state);
            while state.syncing {
                state = s
                    .cond
                    .wait(state)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
            self.flush_locked(s, &mut state, true)?;
            let live = log_path(&self.dir, idx);
            let rotated = rotated_path(&self.dir, idx);
            if rotated.exists() {
                let mut bytes = Vec::new();
                File::open(&live)?.read_to_end(&mut bytes)?;
                let mut dst = OpenOptions::new().append(true).open(&rotated)?;
                dst.write_all(&bytes)?;
                dst.sync_data()?;
                state.file.set_len(0)?;
            } else {
                fs::rename(&live, &rotated)?;
                state.file = OpenOptions::new().create(true).append(true).open(&live)?;
            }
        }
        fsync_dir(&self.dir)?;
        Ok(())
    }

    /// Checkpoint phase 2: persist the snapshot atomically (temp file,
    /// fsync, rename, directory fsync).
    pub fn write_snapshot(&self, snapshot: &Snapshot) -> Result<()> {
        let tmp = self.dir.join("snapshot.tmp");
        let bytes = encode_snapshot(snapshot)?;
        let mut file = File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        fsync_dir(&self.dir)?;
        Ok(())
    }

    /// Checkpoint phase 3: the snapshot is durable, so every rotated log
    /// (whose records it covers) can go — and so can any orphan live log
    /// from a larger previous `shard_count` (no append can ever reach a
    /// shard index at or beyond the current count, so its records are
    /// all in the snapshot too).
    /// Read everything durable on disk for a replication bootstrap: the
    /// raw snapshot file (if any) and every complete framed record in
    /// the log files, re-framed, deduplicated and sorted by LSN.
    ///
    /// Callers hold the cache's checkpoint lock, so no rotation can
    /// delete or rename a log file mid-read. Records buffered in memory
    /// but not yet written are *not* returned — they have not been
    /// shipped to the hub either, so a subscriber attached before this
    /// read receives them on the live stream instead.
    pub fn read_backlog(&self) -> Result<Backlog> {
        let snapshot_path = self.dir.join(SNAPSHOT_FILE);
        let snapshot = if snapshot_path.exists() {
            Some(fs::read(&snapshot_path)?)
        } else {
            None
        };
        let mut frames: Vec<(u64, Vec<u8>)> = Vec::new();
        for shard in existing_shards(&self.dir)? {
            for path in [rotated_path(&self.dir, shard), log_path(&self.dir, shard)] {
                if !path.exists() {
                    continue;
                }
                let bytes = fs::read(&path)?;
                for (lsn, frame) in split_frames(&bytes) {
                    frames.push((lsn, frame.to_vec()));
                }
            }
        }
        frames.sort_by_key(|(lsn, _)| *lsn);
        frames.dedup_by_key(|(lsn, _)| *lsn);
        Ok((snapshot, frames))
    }

    /// Replace the entire on-disk state with `snapshot` — the follower
    /// bootstrap path: a shipped snapshot supersedes whatever the
    /// follower had, so its live logs are truncated, rotated leftovers
    /// removed, and the snapshot written in their place. The follower's
    /// replication thread is the only writer, so no append can race the
    /// reset.
    pub fn reset_to_snapshot(&self, snapshot: &Snapshot) -> Result<()> {
        for (idx, s) in self.shards.iter().enumerate() {
            let mut state = lock(&s.state);
            while state.syncing {
                state = s
                    .cond
                    .wait(state)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
            state.buf.clear();
            state.durable = state.appended;
            state.file.set_len(0)?;
            let rotated = rotated_path(&self.dir, idx);
            if rotated.exists() {
                fs::remove_file(rotated)?;
            }
        }
        self.write_snapshot(snapshot)?;
        self.records_since_checkpoint.store(0, Ordering::Relaxed);
        Ok(())
    }

    pub fn rotate_end(&self) -> Result<()> {
        for idx in existing_shards(&self.dir)? {
            let rotated = rotated_path(&self.dir, idx);
            if rotated.exists() {
                fs::remove_file(rotated)?;
            }
            if idx >= self.shards.len() {
                let orphan = log_path(&self.dir, idx);
                if orphan.exists() {
                    fs::remove_file(orphan)?;
                }
            }
        }
        fsync_dir(&self.dir)?;
        self.records_since_checkpoint.store(0, Ordering::Relaxed);
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip_through_the_frame_format() {
        let cols = vec![
            ("ip".to_string(), AttrType::Str),
            ("bytes".to_string(), AttrType::Int),
        ];
        let create = encode_create(1, "BWUsage", TableKind::Persistent, 0, &cols);
        let row: Vec<Scalar> = vec![Scalar::Str("10.0.0.1".into()), Scalar::Int(7)];
        let insert = encode_insert(2, "BWUsage", true, 42, &[&row], None);
        let remove = encode_remove(3, "BWUsage", "10.0.0.1");
        let token = encode_token(
            4,
            99,
            7,
            &TokenOutcome::Inserted {
                replaced: false,
                tstamp: 42,
            },
        );
        let tokened_insert = encode_insert(5, "BWUsage", false, 43, &[&row], Some((99, 8, false)));
        let mut log = Vec::new();
        log.extend_from_slice(&create);
        log.extend_from_slice(&insert);
        log.extend_from_slice(&remove);
        log.extend_from_slice(&token);
        log.extend_from_slice(&tokened_insert);

        assert_eq!(count_complete_records(&log), 5);
        let (payloads, consumed) = scan_frames(&log);
        assert_eq!(consumed, log.len());
        let ops: Vec<ReplayOp> = payloads
            .into_iter()
            .map(|p| decode_record(p).unwrap())
            .collect();
        assert!(matches!(
            &ops[0],
            ReplayOp::CreateTable { lsn: 1, name, kind: TableKind::Persistent, capacity: 0, columns }
                if name == "BWUsage" && columns.len() == 2
        ));
        assert!(matches!(
            &ops[1],
            ReplayOp::Insert { lsn: 2, table, upsert: true, tstamp: 42, rows, token: None }
                if table == "BWUsage" && rows.len() == 1
        ));
        assert!(matches!(
            &ops[2],
            ReplayOp::Remove { lsn: 3, table, key } if table == "BWUsage" && key == "10.0.0.1"
        ));
        assert!(matches!(
            &ops[3],
            ReplayOp::Token {
                lsn: 4,
                client_id: 99,
                seq: 7,
                outcome: TokenOutcome::Inserted {
                    replaced: false,
                    tstamp: 42
                }
            }
        ));
        assert_eq!(ops[3].table(), TOKEN_TABLE_NAME);
        assert!(matches!(
            &ops[4],
            ReplayOp::Insert { lsn: 5, table, upsert: false, tstamp: 43, rows,
                token: Some((99, 8, false)) }
                if table == "BWUsage" && rows.len() == 1
        ));
    }

    #[test]
    fn torn_and_corrupt_tails_stop_the_scan() {
        let rec = encode_remove(9, "T", "k");
        let mut log = Vec::new();
        log.extend_from_slice(&rec);
        log.extend_from_slice(&rec);
        // Truncate anywhere inside the second record: only the first
        // survives.
        for cut in rec.len()..(2 * rec.len()) {
            assert_eq!(count_complete_records(&log[..cut]), 1, "cut at {cut}");
        }
        // Flip any byte of the second record: the checksum rejects it.
        for flip in rec.len()..(2 * rec.len()) {
            let mut copy = log.clone();
            copy[flip] ^= 0x40;
            assert_eq!(count_complete_records(&copy), 1, "flip at {flip}");
        }
        // The full log is intact.
        assert_eq!(count_complete_records(&log), 2);
    }

    #[test]
    fn snapshots_round_trip() {
        let tables = vec![
            SnapshotTable {
                name: "Flows".into(),
                kind: TableKind::Ephemeral,
                capacity: 512,
                columns: vec![("v".into(), AttrType::Int)],
                watermark: 0,
                rows: Vec::new(),
            },
            SnapshotTable {
                name: "BWUsage".into(),
                kind: TableKind::Persistent,
                capacity: 0,
                columns: vec![("ip".into(), AttrType::Str), ("n".into(), AttrType::Int)],
                watermark: 17,
                rows: vec![
                    (5, vec![Scalar::Str("a".into()), Scalar::Int(1)]),
                    (6, vec![Scalar::Str("b".into()), Scalar::Int(2)]),
                ],
            },
        ];
        let snapshot = Snapshot {
            tables,
            tokens: vec![
                (7, 0, TokenOutcome::Created),
                (
                    7,
                    1,
                    TokenOutcome::InsertedBatch {
                        tstamps: vec![5, 6],
                    },
                ),
            ],
            token_watermark: 23,
        };
        let bytes = encode_snapshot(&snapshot).unwrap();
        assert_eq!(decode_snapshot(&bytes).unwrap(), snapshot);
        // The header-only watermark scan agrees with the full decode —
        // and includes the token watermark, which here exceeds every
        // table watermark.
        assert_eq!(scan_snapshot_high_watermark(&bytes).unwrap(), 23);
        assert_eq!(snapshot_high_watermark(&snapshot), 23);
        // A torn snapshot is rejected outright.
        assert!(decode_snapshot(&bytes[..bytes.len() - 1]).is_err());
        assert!(scan_snapshot_high_watermark(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn version_one_snapshots_still_decode() {
        // Hand-build a v1 snapshot (no token section) and check both
        // readers accept it: durability directories written before the
        // protection layer must keep opening.
        let mut w = WireWriter::new();
        w.put_u8(1); // version
        w.put_u32(1); // one table
        w.put_str("T");
        w.put_u8(1); // persistent
        w.put_u64(0); // capacity
        w.put_u32(1); // one column
        w.put_str("v");
        w.put_u8(0); // Int
        w.put_u64(9); // watermark
        w.put_u32(0); // no rows
        let bytes = frame(&w.finish());
        let snapshot = decode_snapshot(&bytes).unwrap();
        assert_eq!(snapshot.tables.len(), 1);
        assert!(snapshot.tokens.is_empty());
        assert_eq!(snapshot.token_watermark, 0);
        assert_eq!(scan_snapshot_high_watermark(&bytes).unwrap(), 9);
    }
}
