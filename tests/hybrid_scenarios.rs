//! Integration tests for the hybrid scenarios that motivate the
//! unification: automata that need both the publish/subscribe face (raw
//! event streams) and the stream-database face (global, persistent state)
//! at the same time.

use std::time::Duration;

use cep_workloads::{DebsConfig, DebsGenerator, FlowConfig, FlowGenerator};
use gapl::event::Scalar;
use unipubsub::prelude::*;

#[test]
fn bandwidth_allowance_scenario_detects_exactly_the_right_violations() {
    let cache = CacheBuilder::new().build();
    cache.execute(FlowGenerator::create_table_sql()).unwrap();
    cache
        .execute(
            "create persistenttable Allowances (ipaddr varchar(16) primary key, bytes integer)",
        )
        .unwrap();
    cache
        .execute("create persistenttable BWUsage (ipaddr varchar(16) primary key, bytes integer)")
        .unwrap();

    // Host 0 is monitored with a small allowance, host 1 with a huge one.
    let monitored_small = FlowGenerator::local_ip(0);
    let monitored_large = FlowGenerator::local_ip(1);
    cache
        .execute(&format!(
            "insert into Allowances values ('{monitored_small}', 2000000)"
        ))
        .unwrap();
    cache
        .execute(&format!(
            "insert into Allowances values ('{monitored_large}', 999999999999)"
        ))
        .unwrap();

    let (_id, rx) = cache
        .register_automaton(
            r#"
            subscribe f to Flows;
            associate a with Allowances;
            associate b with BWUsage;
            int n, limit;
            identifier ip;
            sequence s;
            behavior {
                ip = Identifier(f.dstip);
                if (hasEntry(a, ip)) {
                    limit = seqElement(lookup(a, ip), 1);
                    if (hasEntry(b, ip))
                        n = seqElement(lookup(b, ip), 1);
                    else
                        n = 0;
                    n += f.nbytes;
                    s = Sequence(f.dstip, n);
                    if (n > limit)
                        send(s, limit, 'limit exceeded');
                    insert(b, ip, s);
                }
            }
            "#,
        )
        .unwrap();

    // Replay flows and compute the expected violations independently.
    let mut generator = FlowGenerator::new(FlowConfig {
        local_hosts: 4,
        ..FlowConfig::default()
    });
    let flows = generator.take(2_000);
    let mut usage_small = 0i64;
    let mut expected_small_violations = 0usize;
    let mut expected_totals = std::collections::HashMap::new();
    for flow in &flows {
        cache.insert("Flows", flow.to_scalars()).unwrap();
        if flow.dstip == monitored_small {
            usage_small += flow.nbytes;
            if usage_small > 2_000_000 {
                expected_small_violations += 1;
            }
        }
        if flow.dstip == monitored_small || flow.dstip == monitored_large {
            *expected_totals.entry(flow.dstip.clone()).or_insert(0i64) += flow.nbytes;
        }
    }
    assert!(cache.quiesce(Duration::from_secs(30)));

    // Only the small-allowance host produces notifications, one per flow
    // past the threshold.
    let notes: Vec<Notification> = rx.try_iter().collect();
    assert_eq!(notes.len(), expected_small_violations);
    assert!(notes
        .iter()
        .all(|n| n.values[0].as_str() == Some(monitored_small.as_str())));

    // The BWUsage relation holds the exact accumulated usage for every
    // monitored host — global state updated by the automaton, readable by
    // anyone.
    for (ip, expected) in expected_totals {
        let row = cache.lookup("BWUsage", &ip).unwrap().unwrap();
        assert_eq!(row.values()[1], Scalar::Int(expected), "usage of {ip}");
    }
    // Unmonitored hosts never appear.
    assert!(cache
        .lookup("BWUsage", &FlowGenerator::local_ip(2))
        .unwrap()
        .is_none());
}

#[test]
fn materialised_views_cascade_into_further_automata() {
    // Automaton A derives per-host byte counters into a persistent table;
    // automaton B subscribes to that table's topic (a materialised view)
    // and raises second-level alerts — "complex patterns presented as
    // materialised views ... and vice versa" (§3).
    let cache = CacheBuilder::new().build();
    cache
        .execute("create table Flows (dstip varchar(16), nbytes integer)")
        .unwrap();
    cache
        .execute("create persistenttable Totals (ipaddr varchar(16) primary key, bytes integer)")
        .unwrap();

    let (_a, _rx_a) = cache
        .register_automaton(
            r#"
            subscribe f to Flows;
            associate t with Totals;
            int n;
            identifier ip;
            behavior {
                ip = Identifier(f.dstip);
                if (hasEntry(t, ip))
                    n = seqElement(lookup(t, ip), 1);
                else
                    n = 0;
                n += f.nbytes;
                insert(t, ip, Sequence(f.dstip, n));
            }
            "#,
        )
        .unwrap();
    let (_b, rx_b) = cache
        .register_automaton(
            r#"
            subscribe total to Totals;
            behavior {
                if (total.bytes > 10000)
                    send(total.ipaddr, total.bytes);
            }
            "#,
        )
        .unwrap();

    for i in 0..20 {
        cache
            .insert(
                "Flows",
                vec![Scalar::Str("192.168.1.5".into()), Scalar::Int(1_000 + i)],
            )
            .unwrap();
    }
    assert!(cache.quiesce(Duration::from_secs(30)));

    let alerts: Vec<Notification> = rx_b.try_iter().collect();
    assert!(!alerts.is_empty());
    // The first alert fires as soon as the accumulated total passes 10 kB.
    let first_total = alerts[0].values[1].as_int().unwrap();
    assert!(first_total > 10_000 && first_total < 12_100);
    // Totals is an ordinary relation: the final value equals the sum.
    let expected: i64 = (0..20).map(|i| 1_000 + i).sum();
    let row = cache.lookup("Totals", "192.168.1.5").unwrap().unwrap();
    assert_eq!(row.values()[1], Scalar::Int(expected));
}

#[test]
fn the_debs_merged_automaton_tracks_the_reference_delays() {
    let cache = CacheBuilder::new().build();
    cache.execute(DebsGenerator::create_table_sql()).unwrap();
    cache
        .execute("create table Transitions (a_seq integer, delay integer)")
        .unwrap();
    let (_id, _rx) = cache
        .register_automaton(
            r#"
            subscribe t to Telemetry;
            int prev_a, prev_b, awaiting_b;
            int a_seq, delay;
            initialization {
                prev_a = 1;
                prev_b = 1;
                awaiting_b = 0;
            }
            behavior {
                if (t.sensor_a > prev_a) {
                    a_seq = t.seq;
                    awaiting_b = 1;
                }
                if (awaiting_b == 1) {
                    if (t.sensor_b > prev_b) {
                        delay = t.seq - a_seq;
                        publish('Transitions', a_seq, delay);
                        awaiting_b = 0;
                    }
                }
                prev_a = t.sensor_a;
                prev_b = t.sensor_b;
            }
            "#,
        )
        .unwrap();

    let mut generator = DebsGenerator::new(DebsConfig {
        events: 5_000,
        ..DebsConfig::default()
    });
    let telemetry = generator.generate();
    for event in &telemetry {
        cache.insert("Telemetry", event.to_scalars()).unwrap();
    }
    assert!(cache.quiesce(Duration::from_secs(30)));

    let reference = DebsGenerator::reference_delays(&telemetry);
    let derived = cache
        .execute("select delay from Transitions")
        .unwrap()
        .rows()
        .unwrap();
    let derived: Vec<i64> = derived
        .rows
        .iter()
        .map(|r| r.values[0].as_int().unwrap())
        .collect();
    assert_eq!(derived, reference);
}

#[test]
fn eight_automata_on_one_topic_all_observe_every_event_in_order() {
    // The structure of the performance-at-scale experiment (§6.2), checked
    // functionally: every automaton sees every tuple, in insertion order.
    let cache = CacheBuilder::new().build();
    cache.execute("create table Flows (seq integer)").unwrap();
    let receivers: Vec<_> = (0..8)
        .map(|_| {
            cache
                .register_automaton("subscribe f to Flows; behavior { send(f.seq); }")
                .unwrap()
                .1
        })
        .collect();
    for i in 0..200 {
        cache.insert("Flows", vec![Scalar::Int(i)]).unwrap();
    }
    assert!(cache.quiesce(Duration::from_secs(30)));
    for rx in receivers {
        let seen: Vec<i64> = rx
            .try_iter()
            .map(|n| n.values[0].as_int().unwrap())
            .collect();
        assert_eq!(seen, (0..200).collect::<Vec<i64>>());
    }
}
