//! The binary wire encoding used for RPC payloads.
//!
//! The encoder/decoder pair now lives in [`pscache::wire`] so that the
//! cache's write-ahead log can frame its records with exactly the same
//! primitives (little-endian fixed-width integers, length-prefixed
//! strings, one-byte scalar tags); this module re-exports it unchanged.
//! A scalar encoded for the wire and a scalar encoded into the log are
//! byte-identical.
//!
//! Decoding errors surface as [`pscache::Error::Protocol`], which
//! converts into [`crate::Error::Protocol`] via `From`, so existing
//! `?`-based call sites in this crate are unaffected by the move.

pub use pscache::wire::{WireReader, WireWriter};
