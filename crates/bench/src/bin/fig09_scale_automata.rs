//! Regenerates Fig. 9: insertion-to-processing delay vs the number of
//! automata subscribed to the `Flows` topic, at Δt = 8 ms.
//!
//! Run with `cargo run --release -p cep-bench --bin fig09_scale_automata`.

use cep_bench::fig09_10;

fn main() {
    let events: usize = std::env::var("FIG09_EVENTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);

    println!("Fig. 9 — delay vs number of automata (Δt = 8 ms, {events} events per point)\n");
    println!(
        "{:>9} {:>12} {:>12} {:>12} {:>12}",
        "automata", "mean (ms)", "stddev (ms)", "min (ms)", "max (ms)"
    );
    for point in fig09_10::run_fig09(events) {
        let d = &point.delay_ms;
        println!(
            "{:>9} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
            point.automata, d.mean, d.stddev, d.min, d.max
        );
    }
    println!("\nPaper shape: the average delay grows roughly linearly from 1 to 8 automata.");
}
