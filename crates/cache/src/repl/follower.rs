//! The follower side of replication: a background thread that dials the
//! primary, subscribes from the replica's applied watermark, and feeds
//! every shipped snapshot and frame batch through the cache's
//! recovery-style apply path.
//!
//! The thread owns the connection for the replica's whole life and
//! survives primary restarts: a failed dial or torn stream is retried
//! with **capped exponential backoff plus jitter** (the same reliable
//! re-subscription shape DDS-style middleware uses), and every
//! re-subscription resumes from `replica_lsn`, so reconnecting at an
//! arbitrary frame boundary can neither skip nor double-apply a record.
//! [`FollowerHandle::seal`] stops the stream cleanly — the promotion
//! path calls it before flipping the cache writable.

use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use crate::cache::CacheInner;
use crate::error::{Error, Result};
use crate::repl::proto::{self, FollowerMsg, PrimaryMsg};

use super::backoff_delay;

/// First retry delay after a failed dial or torn stream.
const BACKOFF_BASE: Duration = Duration::from_millis(50);
/// Retry delays stop growing here.
const BACKOFF_CAP: Duration = Duration::from_secs(2);

/// State shared between the streaming thread and the owning cache.
#[derive(Debug)]
pub(crate) struct FollowerShared {
    /// The primary's replication endpoint.
    pub addr: String,
    /// Set by seal/shutdown; the thread exits at the next boundary.
    pub stop: AtomicBool,
    /// Whether a stream is currently established.
    pub connected: AtomicBool,
    /// Completed sessions that ended in a reconnect attempt (a restarted
    /// primary counts once per re-established stream).
    pub reconnects: AtomicU64,
    /// Bootstrap snapshots applied (a fresh follower loads one; a
    /// long-partitioned one may load more).
    pub snapshots_loaded: AtomicU64,
    /// The primary's commit watermark from its latest heartbeat — the
    /// other half of the bounded-staleness computation.
    pub primary_commit_lsn: AtomicU64,
    /// The live socket, for unblocking the reader on seal.
    stream: Mutex<Option<TcpStream>>,
}

/// A running follower stream; owned by the [`Cache`](crate::Cache).
#[derive(Debug)]
pub(crate) struct FollowerHandle {
    shared: Arc<FollowerShared>,
    thread: Option<JoinHandle<()>>,
}

impl FollowerHandle {
    /// Spawn the streaming thread against the primary at `addr`.
    pub fn start(inner: Weak<CacheInner>, addr: String) -> FollowerHandle {
        let shared = Arc::new(FollowerShared {
            addr: addr.clone(),
            stop: AtomicBool::new(false),
            connected: AtomicBool::new(false),
            reconnects: AtomicU64::new(0),
            snapshots_loaded: AtomicU64::new(0),
            primary_commit_lsn: AtomicU64::new(0),
            stream: Mutex::new(None),
        });
        let run_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("pscache-repl-follower".into())
            .spawn(move || run(inner, &run_shared))
            .expect("spawning the follower thread never fails");
        FollowerHandle {
            shared,
            thread: Some(thread),
        }
    }

    /// The shared stream state (for stats).
    pub fn shared(&self) -> &Arc<FollowerShared> {
        &self.shared
    }

    /// Seal the stream: stop the thread, close the socket, and wait for
    /// the in-flight batch to finish applying. After `seal` returns no
    /// further record will ever be applied.
    pub fn seal(self) {
        // Drop does the work; `seal` exists so call sites say what they
        // mean at promotion/shutdown time.
        drop(self);
    }
}

impl Drop for FollowerHandle {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(stream) = self.shared.stream.lock().as_ref() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn run(inner: Weak<CacheInner>, shared: &Arc<FollowerShared>) {
    let mut attempt: u32 = 0;
    let mut ever_connected = false;
    while !shared.stop.load(Ordering::Acquire) {
        if let Ok(stream) = TcpStream::connect(&shared.addr) {
            if let Ok(clone) = stream.try_clone() {
                *shared.stream.lock() = Some(clone);
            }
            shared.connected.store(true, Ordering::Release);
            if ever_connected {
                shared.reconnects.fetch_add(1, Ordering::Relaxed);
            }
            ever_connected = true;
            attempt = 0;
            let _ = session(&inner, shared, stream);
            shared.connected.store(false, Ordering::Release);
            *shared.stream.lock() = None;
        }
        if shared.stop.load(Ordering::Acquire) || inner.strong_count() == 0 {
            break;
        }
        std::thread::sleep(backoff_delay(attempt, BACKOFF_BASE, BACKOFF_CAP));
        attempt = attempt.saturating_add(1);
    }
}

/// One established stream: subscribe from the replica watermark, then
/// apply whatever the primary sends until the connection dies or the
/// handle is sealed.
fn session(
    inner: &Weak<CacheInner>,
    shared: &Arc<FollowerShared>,
    stream: TcpStream,
) -> Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| Error::repl(e.to_string()))?);
    let mut writer = BufWriter::new(stream);
    let from_lsn = {
        let cache = inner.upgrade().ok_or_else(|| Error::repl("cache gone"))?;
        cache.repl_applied()
    };
    proto::write_magic(&mut writer)?;
    FollowerMsg::Subscribe { from_lsn }.write(&mut writer)?;
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return Ok(());
        }
        let Some(msg) = PrimaryMsg::read(&mut reader)? else {
            return Ok(());
        };
        let cache = inner.upgrade().ok_or_else(|| Error::repl("cache gone"))?;
        match msg {
            PrimaryMsg::Snapshot(bytes) => {
                cache.repl_apply_snapshot(&bytes)?;
                shared.snapshots_loaded.fetch_add(1, Ordering::Relaxed);
                FollowerMsg::Ack {
                    lsn: cache.repl_applied(),
                }
                .write(&mut writer)?;
            }
            PrimaryMsg::Frames(bytes) => {
                let applied = cache.repl_apply_frames(&bytes)?;
                if cache.obs.enabled() {
                    // How far behind the primary's advertised commit
                    // watermark this replica still is after the apply —
                    // recorded in *records*, not nanoseconds, into its
                    // own histogram.
                    let heard = shared.primary_commit_lsn.load(Ordering::Acquire);
                    cache
                        .obs
                        .repl_apply_lag
                        .record(heard.saturating_sub(applied));
                }
                FollowerMsg::Ack { lsn: applied }.write(&mut writer)?;
            }
            PrimaryMsg::Heartbeat { commit_lsn } => {
                shared
                    .primary_commit_lsn
                    .fetch_max(commit_lsn, Ordering::AcqRel);
            }
        }
    }
}
