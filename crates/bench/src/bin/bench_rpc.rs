//! RPC throughput snapshot: the connections-vs-throughput curve of the
//! event-driven reactor, serial vs pipelined, written as
//! `BENCH_rpc.json` for the performance trajectory.
//!
//! The scenario is the paper's periodic poller at scale: N applications
//! each running the same small windowed `select` over TCP. A *serial*
//! client issues one request per round trip — the per-connection read
//! ceiling the reactor work set out to break — while a *pipelined*
//! client keeps a window of correlated requests in flight and lets
//! replies complete out of order. The harness measures aggregate
//! reads/second at 1, 16, 256 and 1024 concurrent connections in both
//! modes against one `ReactorServer`.
//!
//! The headline metric is `rpc_speedup_16`: pipelined aggregate
//! throughput at 16 connections over the ~550 reads/sec baseline the
//! replication snapshot recorded for the serial windowed-select path
//! (`BENCH_repl.json`, `primary_reads_per_sec`). `scripts/bench_rpc.sh`
//! enforces `rpc_speedup_16 >= 10`.
//!
//! Run with `cargo run --release -p cep_bench --bin bench_rpc`
//! (output path override: `BENCH_RPC_OUT`; per-config op budget:
//! `BENCH_RPC_OPS`).

use std::fs;
use std::net::SocketAddr;
use std::time::Instant;

use gapl::event::Scalar;
use pscache::CacheBuilder;
use psrpc::client::CacheClient;
use psrpc::reactor::ReactorServer;

/// The serial read ceiling recorded by the replication snapshot
/// (`BENCH_repl.json`, `primary_reads_per_sec`).
const BASELINE_READS_PER_SEC: f64 = 550.0;
/// In-flight window per pipelined connection.
const WINDOW: usize = 32;
/// Rows in the polled table; the query returns the top slice.
const ROWS: i64 = 128;

const QUERY: &str = "select * from T where v >= 120";

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Aggregate reads/second for `conns` connections, each keeping
/// `window` requests in flight (1 = serial round trips). Connections
/// are pre-established and spread over a bounded driver pool so the
/// client side never needs a thousand driver threads.
fn measure(addr: SocketAddr, conns: usize, window: usize, total_ops: usize) -> f64 {
    let drivers = conns.min(8);
    let clients: Vec<CacheClient> = (0..conns)
        .map(|_| CacheClient::connect(addr).expect("bench client connects"))
        .collect();
    let ops_per_conn = (total_ops / conns).max(window).max(2);
    // Round ops to whole windows so every burst is full-depth.
    let bursts_per_conn = ops_per_conn.div_ceil(window);
    let started = Instant::now();
    let served: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = clients
            .chunks(conns.div_ceil(drivers))
            .map(|chunk| {
                scope.spawn(move || {
                    let mut done = 0usize;
                    for _ in 0..bursts_per_conn {
                        for client in chunk {
                            let pendings: Vec<_> = (0..window)
                                .map(|_| client.begin_execute(QUERY).expect("bench request sent"))
                                .collect();
                            for p in pendings {
                                let reply = p.wait().expect("bench reply arrives");
                                assert!(
                                    matches!(reply, psrpc::message::CacheReply::Rows { .. }),
                                    "the measured query must return rows"
                                );
                                done += 1;
                            }
                        }
                    }
                    done
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let elapsed = started.elapsed().as_secs_f64();
    drop(clients);
    served as f64 / elapsed
}

fn main() {
    let total_ops = env_usize("BENCH_RPC_OPS", 8_000);
    let out = std::env::var("BENCH_RPC_OUT").unwrap_or_else(|_| "BENCH_rpc.json".into());

    let cache = CacheBuilder::new().build();
    let server = ReactorServer::bind(cache, "127.0.0.1:0").expect("bind the reactor");
    let addr = server.local_addr();
    let setup = CacheClient::connect(addr).expect("setup client connects");
    setup
        .execute("create table T (v integer) capacity 256")
        .expect("create table");
    setup
        .insert_batch("T", (0..ROWS).map(|i| vec![Scalar::Int(i)]).collect())
        .expect("load rows");

    let mut lines = Vec::new();
    let mut pipelined_16 = 0.0f64;
    for &conns in &[1usize, 16, 256, 1024] {
        // Serial gets a smaller budget: it is the slow mode by design.
        let serial = measure(addr, conns, 1, total_ops / 4);
        let pipelined = measure(addr, conns, WINDOW, total_ops);
        if conns == 16 {
            pipelined_16 = pipelined;
        }
        println!(
            "{conns:>5} conns: serial {serial:>9.0} reads/s, pipelined {pipelined:>9.0} reads/s ({:.1}x)",
            pipelined / serial
        );
        lines.push(format!("  \"serial_{conns}_reads_per_sec\": {serial:.1}"));
        lines.push(format!(
            "  \"pipelined_{conns}_reads_per_sec\": {pipelined:.1}"
        ));
    }
    let speedup = pipelined_16 / BASELINE_READS_PER_SEC;

    let json = format!(
        "{{\n  \"scenario\": \"windowed select over the RPC reactor, 1..1024 connections, serial vs {WINDOW}-deep pipeline\",\n  \"window\": {WINDOW},\n{},\n  \"baseline_reads_per_sec\": {BASELINE_READS_PER_SEC:.1},\n  \"rpc_speedup_16\": {speedup:.1}\n}}\n",
        lines.join(",\n"),
    );
    fs::write(&out, &json).expect("write benchmark snapshot");
    println!("{json}");
    println!(
        "rpc: 16 pipelined connections serve {pipelined_16:.0} reads/s, \
         {speedup:.1}x the {BASELINE_READS_PER_SEC:.0}/s serial baseline -> {out}"
    );

    let stats = server.stats();
    assert_eq!(stats.rpc_in_flight, 0, "the reactor drained every request");
    drop(setup);
    server.shutdown();
}
