//! `pscache-health` — the load-balancer probe for a running cache
//! server.
//!
//! Issues one [`Request::Health`](psrpc::message::Request::Health) RPC
//! and reports the snapshot. The server answers it inline on the
//! reactor's event thread, so the probe stays meaningful when every
//! worker is saturated: a wedged worker pool is *visible* in the
//! report (`rpc_worker_busy == rpc_workers`, growing `rpc_in_flight`)
//! instead of timing the probe out.
//!
//! ```text
//! pscache-health <host:port> [--require-primary] [--max-lag N]
//!                [--max-worker-saturation R] [--format text|json]
//!                [--metrics] [--quiet]
//! ```
//!
//! `--format json` emits the same snapshot as one machine-readable JSON
//! object (hand-rolled — every field is an integer, a ratio, or a
//! string, so no serializer is needed). `--metrics` additionally issues
//! a [`Request::Metrics`](psrpc::message::Request::Metrics) RPC and
//! prints the node's latency histograms and counters — as Prometheus
//! exposition text in text mode, as a summarised object in JSON mode.
//! Neither flag changes the exit semantics.
//!
//! Exit codes, shaped for probe configs (Kubernetes, HAProxy, …):
//!
//! * `0` — the server answered and passed every requested check;
//! * `1` — the server answered but failed a check (follower when
//!   `--require-primary`, replication lag above `--max-lag`, worker
//!   pool busier than `--max-worker-saturation`);
//! * `2` — unreachable, timed out, or bad usage.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use psrpc::client::CacheClient;
use psrpc::message::HealthReport;

const USAGE: &str = "usage: pscache-health <host:port> [--require-primary] [--max-lag N] \
       [--max-worker-saturation R] [--format text|json] [--metrics] [--quiet]";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

struct Options {
    addr: String,
    require_primary: bool,
    max_lag: Option<u64>,
    /// Fail (exit 1) when `HealthReport::worker_saturation()` exceeds
    /// this ratio — e.g. `0.9` drops a backend from rotation while its
    /// worker pool is pinned, before clients see queueing latency.
    max_worker_saturation: Option<f64>,
    format: Format,
    metrics: bool,
    quiet: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut addr = None;
    let mut require_primary = false;
    let mut max_lag = None;
    let mut max_worker_saturation = None;
    let mut format = Format::Text;
    let mut metrics = false;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--require-primary" => require_primary = true,
            "--metrics" => metrics = true,
            "--format" => {
                let value = args.next().ok_or("--format needs `text` or `json`")?;
                format = match value.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    _ => return Err("--format needs `text` or `json`".into()),
                };
            }
            "--quiet" => quiet = true,
            "--max-lag" => {
                let value = args.next().ok_or("--max-lag needs a value")?;
                max_lag = Some(value.parse().map_err(|_| "--max-lag needs an integer")?);
            }
            "--max-worker-saturation" => {
                let value = args.next().ok_or("--max-worker-saturation needs a value")?;
                let ratio: f64 = value
                    .parse()
                    .map_err(|_| "--max-worker-saturation needs a ratio in [0, 1]")?;
                if !(0.0..=1.0).contains(&ratio) {
                    return Err("--max-worker-saturation needs a ratio in [0, 1]".into());
                }
                max_worker_saturation = Some(ratio);
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => {
                if addr.replace(other.to_owned()).is_some() {
                    return Err("more than one address given".into());
                }
            }
        }
    }
    Ok(Options {
        addr: addr.ok_or("an address is required")?,
        require_primary,
        max_lag,
        max_worker_saturation,
        format,
        metrics,
        quiet,
    })
}

/// The health report as one JSON object. `repl_lag` is `null` when no
/// follower is attached — same distinction the wire makes.
fn health_json(addr: &str, report: &HealthReport, elapsed: Duration) -> String {
    let lag = match report.repl_lag {
        Some(lag) => lag.to_string(),
        None => "null".to_string(),
    };
    format!(
        concat!(
            "{{\"addr\":\"{}\",\"role\":\"{}\",\"commit_lsn\":{},\"replica_lsn\":{},",
            "\"repl_lag\":{},\"connections_active\":{},\"rpc_in_flight\":{},",
            "\"rpc_queue_stalls\":{},\"rpc_worker_busy\":{},\"rpc_workers\":{},",
            "\"worker_saturation\":{:.4},\"rpc_requests_throttled\":{},",
            "\"slow_consumer_evictions\":{},\"automaton_unregistrations\":{},",
            "\"probe_ms\":{}}}"
        ),
        addr,
        if report.role_follower == 1 {
            "follower"
        } else {
            "primary"
        },
        report.commit_lsn,
        report.replica_lsn,
        lag,
        report.connections_active,
        report.rpc_in_flight,
        report.rpc_queue_stalls,
        report.rpc_worker_busy,
        report.rpc_workers,
        report.worker_saturation(),
        report.rpc_requests_throttled,
        report.slow_consumer_evictions,
        report.automaton_unregistrations,
        elapsed.as_millis(),
    )
}

/// The metrics snapshot as one JSON object: counters verbatim, each
/// histogram summarised to count/mean/p50/p99 (the full bucket vectors
/// stay behind the Prometheus exposition, which is built for them).
fn metrics_json(snapshot: &pscache::MetricsSnapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (name, v)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{v}"));
    }
    out.push_str("},\"histograms\":{");
    for (i, h) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{{\"count\":{},\"mean\":{:.1},\"p50\":{},\"p99\":{}}}",
            h.name,
            h.count,
            h.mean(),
            h.quantile(0.50),
            h.quantile(0.99),
        ));
    }
    out.push_str("}}");
    out
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("pscache-health: {message}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let started = Instant::now();
    let client = match CacheClient::connect(opts.addr.as_str()) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("pscache-health: {}: {e}", opts.addr);
            return ExitCode::from(2);
        }
    };
    let report = match client.health() {
        Ok(report) => report,
        Err(e) => {
            eprintln!("pscache-health: {}: health rpc failed: {e}", opts.addr);
            return ExitCode::from(2);
        }
    };
    let snapshot = if opts.metrics {
        match client.metrics() {
            Ok(snapshot) => Some(snapshot),
            Err(e) => {
                eprintln!("pscache-health: {}: metrics rpc failed: {e}", opts.addr);
                return ExitCode::from(2);
            }
        }
    } else {
        None
    };
    let elapsed = started.elapsed();

    let role = if report.role_follower == 1 {
        "follower"
    } else {
        "primary"
    };
    let lag_text = match report.repl_lag {
        Some(lag) => lag.to_string(),
        None => "-".to_string(),
    };
    if !opts.quiet {
        match opts.format {
            Format::Json => println!("{}", health_json(&opts.addr, &report, elapsed)),
            Format::Text => println!(
                "{} {role} commit_lsn={} replica_lsn={} repl_lag={} conns={} in_flight={} \
                 workers={}/{} saturation={:.2} throttled={} ({}ms)",
                opts.addr,
                report.commit_lsn,
                report.replica_lsn,
                lag_text,
                report.connections_active,
                report.rpc_in_flight,
                report.rpc_worker_busy,
                report.rpc_workers,
                report.worker_saturation(),
                report.rpc_requests_throttled,
                elapsed.as_millis(),
            ),
        }
        if let Some(snapshot) = &snapshot {
            match opts.format {
                Format::Json => println!("{}", metrics_json(snapshot)),
                Format::Text => print!("{}", snapshot.to_prometheus()),
            }
        }
    }

    if opts.require_primary && report.role_follower == 1 {
        eprintln!(
            "pscache-health: {} is a follower (--require-primary)",
            opts.addr
        );
        return ExitCode::from(1);
    }
    if let Some(max_lag) = opts.max_lag {
        // --max-lag asserts "replication is keeping up", which needs a
        // follower to be keeping up at all: an unreplicated server
        // fails the check instead of passing it vacuously with lag 0.
        match report.repl_lag {
            None => {
                eprintln!(
                    "pscache-health: {} has no follower attached (--max-lag {max_lag})",
                    opts.addr
                );
                return ExitCode::from(1);
            }
            Some(lag) if lag > max_lag => {
                eprintln!(
                    "pscache-health: {} replication lag {lag} exceeds --max-lag {max_lag}",
                    opts.addr
                );
                return ExitCode::from(1);
            }
            Some(_) => {}
        }
    }
    if let Some(max) = opts.max_worker_saturation {
        let saturation = report.worker_saturation();
        if saturation > max {
            eprintln!(
                "pscache-health: {} worker saturation {saturation:.2} ({}/{}) exceeds \
                 --max-worker-saturation {max}",
                opts.addr, report.rpc_worker_busy, report.rpc_workers
            );
            return ExitCode::from(1);
        }
    }
    // Guard against pathological probe latency even on success paths:
    // a probe that took this long is a readiness problem in itself.
    if elapsed > Duration::from_secs(5) {
        eprintln!(
            "pscache-health: {} answered but took {elapsed:?}",
            opts.addr
        );
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
