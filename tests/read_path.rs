//! The lock-free read path and the drop-table seams around it.
//!
//! `select` now evaluates against an epoch-published table snapshot
//! without holding the table mutex. These tests pin down the seams
//! that conversion exposed: the legacy mutex path must stay
//! observationally identical (differential check), and dropping a
//! table must evict every cache keyed by its name — compiled plans
//! in the SQL-text plan cache and the per-topic dispatch index — so
//! a recreated table with a different schema can never be served by
//! a stale artifact.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use gapl::event::Scalar;
use pscache::{Cache, CacheBuilder, Error, Query};

/// A fresh, empty scratch directory under the system temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pscache-readpath-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn dump(cache: &Cache, table: &str) -> Vec<(Vec<Scalar>, u64)> {
    cache
        .select(&Query::new(table))
        .expect("select * succeeds")
        .rows
        .into_iter()
        .map(|row| (row.values, row.tstamp))
        .collect()
}

/// The snapshot read path and the legacy mutex read path answer every
/// query identically — plain scans, since windows, predicates,
/// aggregates, and point lookups — over the same mutation history.
#[test]
fn snapshot_and_mutex_read_paths_are_observationally_identical() {
    let build = |mutex: bool| {
        let cache = CacheBuilder::new()
            .manual_clock()
            .mutex_read_path(mutex)
            .build();
        cache
            .execute("create table Flows (srcip varchar(16), nbytes integer)")
            .unwrap();
        cache
            .execute("create persistenttable KV (k varchar(16), v integer)")
            .unwrap();
        for i in 0..64i64 {
            cache.manual_clock().unwrap().advance(10);
            cache
                .insert(
                    "Flows",
                    vec![
                        Scalar::Str(format!("10.0.0.{}", i % 8).into()),
                        Scalar::Int(i),
                    ],
                )
                .unwrap();
            cache
                .upsert(
                    "KV",
                    vec![Scalar::Str(format!("k{}", i % 16).into()), Scalar::Int(i)],
                )
                .unwrap();
            if i % 7 == 0 {
                cache.remove("KV", &format!("k{}", i % 16)).unwrap();
            }
        }
        cache
    };
    let snap = build(false);
    let mutex = build(true);

    let queries = [
        "select * from Flows",
        "select srcip, nbytes from Flows where nbytes >= 32 order by nbytes desc limit 9",
        "select srcip, sum(nbytes) from Flows group by srcip order by srcip",
        "select * from Flows since 400",
        "select * from KV",
        "select k, v from KV where v > 40 order by k",
    ];
    for sql in queries {
        let a = snap.execute(sql).unwrap().rows().unwrap();
        let b = mutex.execute(sql).unwrap().rows().unwrap();
        assert_eq!(a, b, "read paths diverge on {sql:?}");
    }
    for key in ["k0", "k3", "k15", "missing"] {
        assert_eq!(
            snap.lookup("KV", key).unwrap(),
            mutex.lookup("KV", key).unwrap(),
            "lookup diverges on {key:?}"
        );
    }
    assert_eq!(
        snap.table_len("Flows").unwrap(),
        mutex.table_len("Flows").unwrap()
    );
    assert_eq!(
        snap.table_len("KV").unwrap(),
        mutex.table_len("KV").unwrap()
    );
}

/// Dropping a table evicts its compiled plans: recreating the same
/// name with the columns *swapped* and re-running the identical SQL
/// text must compile a fresh plan against the new schema, never
/// project through the stale one.
#[test]
fn drop_and_recreate_with_a_different_schema_never_serves_a_stale_plan() {
    let cache = CacheBuilder::new().manual_clock().build();
    cache
        .execute("create table T (a integer, b integer)")
        .unwrap();
    cache.manual_clock().unwrap().advance(10);
    cache
        .insert("T", vec![Scalar::Int(1), Scalar::Int(10)])
        .unwrap();
    cache.manual_clock().unwrap().advance(10);
    cache
        .insert("T", vec![Scalar::Int(2), Scalar::Int(20)])
        .unwrap();

    let sql = "select a, b from T where b >= 10 order by b";
    let first = cache.execute(sql).unwrap().rows().unwrap();
    assert_eq!(first.rows.len(), 2);
    let _ = cache.execute(sql).unwrap();
    let warm = cache.plan_cache_stats();
    assert!(warm.hits >= 1, "second run must hit the plan cache");
    assert!(warm.entries >= 1);

    cache.drop_table("T").unwrap();
    let gone = cache.plan_cache_stats();
    assert_eq!(gone.entries, 0, "drop must evict the table's cached plans");
    assert!(matches!(cache.execute(sql), Err(Error::NoSuchTable { .. })));
    assert!(matches!(
        cache.drop_table("T"),
        Err(Error::NoSuchTable { .. })
    ));

    // Same name, columns swapped: a stale plan would read `a` out of
    // what is now `b`'s slot (and vice versa).
    cache
        .execute("create table T (b integer, a integer)")
        .unwrap();
    cache.manual_clock().unwrap().advance(10);
    cache
        .insert("T", vec![Scalar::Int(100), Scalar::Int(7)])
        .unwrap();

    let after = cache.execute(sql).unwrap().rows().unwrap();
    assert_eq!(after.columns, vec!["a".to_string(), "b".to_string()]);
    assert_eq!(after.rows.len(), 1);
    assert_eq!(
        after.rows[0].values,
        vec![Scalar::Int(7), Scalar::Int(100)],
        "projection must follow the recreated schema, not the dropped one"
    );
    let recompiled = cache.plan_cache_stats();
    assert!(
        recompiled.misses > warm.misses,
        "the recreated table's first run must be a plan-cache miss"
    );
}

/// Dropping a table evicts its per-topic dispatch index: an automaton
/// whose prefilter was compiled against the old schema receives
/// nothing from a recreated table of the same name.
#[test]
fn drop_and_recreate_never_routes_through_a_stale_prefilter() {
    let cache = CacheBuilder::new().manual_clock().build();
    cache
        .execute("create table Flows (srcip varchar(16), nbytes integer)")
        .unwrap();
    let (id, notifications) = cache
        .register_automaton(
            "subscribe f to Flows; behavior { if (f.nbytes > 100) send(f.nbytes); }",
        )
        .unwrap();

    cache.manual_clock().unwrap().advance(10);
    cache
        .insert(
            "Flows",
            vec![Scalar::Str("10.0.0.1".into()), Scalar::Int(500)],
        )
        .unwrap();
    assert!(cache.quiesce(Duration::from_secs(5)));
    assert_eq!(notifications.try_iter().count(), 1);

    cache.drop_table("Flows").unwrap();

    // Recreate with the columns swapped. The old prefilter guarded
    // `f.nbytes > 100` against column 1; in the new schema column 1 is
    // an integer named `srcip`, so a stale bucket would happily route
    // (and the automaton would fire on the wrong attribute).
    cache
        .execute("create table Flows (nbytes varchar(16), srcip integer)")
        .unwrap();
    cache.manual_clock().unwrap().advance(10);
    cache
        .insert("Flows", vec![Scalar::Str("big".into()), Scalar::Int(500)])
        .unwrap();
    assert!(cache.quiesce(Duration::from_secs(5)));
    assert_eq!(
        notifications.try_iter().count(),
        0,
        "a dropped topic's subscribers must not survive into its successor"
    );

    cache.unregister_automaton(id).unwrap();
    assert_eq!(dump(&cache, "Flows").len(), 1);
}

/// A durable drop survives restart: the immediate checkpoint
/// supersedes the table's create and row records, and replay of any
/// older log segment tolerates records for the missing name.
#[test]
fn a_durable_drop_survives_restart() {
    let dir = scratch("durable-drop");
    {
        let cache = CacheBuilder::new().durability(&dir).open().unwrap();
        cache
            .execute("create persistenttable KV (k varchar(16) primary key, v integer)")
            .unwrap();
        cache
            .execute("create persistenttable Keep (k varchar(16) primary key, v integer)")
            .unwrap();
        for i in 0..10i64 {
            cache
                .insert(
                    "KV",
                    vec![Scalar::Str(format!("k{i}").into()), Scalar::Int(i)],
                )
                .unwrap();
            cache
                .insert(
                    "Keep",
                    vec![Scalar::Str(format!("k{i}").into()), Scalar::Int(i)],
                )
                .unwrap();
        }
        cache.drop_table("KV").unwrap();
        cache.shutdown();
    }
    let cache = CacheBuilder::new().durability(&dir).open().unwrap();
    assert!(matches!(
        cache.table_len("KV"),
        Err(Error::NoSuchTable { .. })
    ));
    assert_eq!(cache.table_len("Keep").unwrap(), 10);
    // The name is free for a different schema after recovery.
    cache.execute("create table KV (x real, y real)").unwrap();
    cache
        .insert("KV", vec![Scalar::Real(1.5), Scalar::Real(2.5)])
        .unwrap();
    assert_eq!(cache.table_len("KV").unwrap(), 1);
    cache.shutdown();
    let _ = fs::remove_dir_all(&dir);
}
