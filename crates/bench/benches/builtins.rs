//! Criterion companion to Fig. 7: per-invocation cost of GAPL built-ins,
//! measured through the same Fig. 6 template the figure binary uses but at
//! a reduced loop size so Criterion can take many samples.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cep_bench::fig07;
use gapl::event::{AttrType, Scalar, Schema, Tuple};
use gapl::vm::{RecordingHost, Vm};
use std::sync::Arc;

fn bench_builtins(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig07_builtins");
    let timer_schema =
        Arc::new(Schema::new("Timer", vec![("tstamp", AttrType::Tstamp)]).expect("valid schema"));
    let tick = Tuple::new(timer_schema, vec![Scalar::Tstamp(0)], 0).expect("valid tuple");

    // 1,000 loop iterations per behavior execution keeps each Criterion
    // sample around a millisecond.
    for case in fig07::cases(100) {
        let program = Arc::new(gapl::compile(&fig07::template(&case)).expect("compiles"));
        group.bench_function(BenchmarkId::from_parameter(case.label), |b| {
            let mut vm = Vm::new(Arc::clone(&program));
            let mut host = RecordingHost::default();
            vm.run_initialization(&mut host).expect("init");
            b.iter(|| {
                host.published.clear();
                host.sent.clear();
                vm.run_behavior("Timer", &tick, &mut host)
                    .expect("behavior");
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_builtins);
criterion_main!(benches);
