#!/usr/bin/env sh
# The tier-1 gate as a single command:
#
#   1. release build of the whole workspace;
#   2. the full test suite (unit, integration, property suites);
#   3. the documentation gate (rustdoc -D warnings + every doctest),
#      i.e. `cargo docs-check` plus doctests, via scripts/check_docs.sh;
#   4. the benchmark floors: the query engine's >= 10x window speedup
#      (BENCH_query.json) and the dispatch layer's >= 10x fan-out
#      speedup at 1,000 automata / 1% selectivity (BENCH_fanout.json).
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> documentation gate"
sh scripts/check_docs.sh

echo "==> bench floor: query engine window speedup"
cargo run --release -p cep_bench --bin bench_query
speedup=$(grep -o '"window_speedup": [0-9.]*' BENCH_query.json | tail -1 | cut -d' ' -f2)
echo "100k-row 1% window speedup: ${speedup}x (floor: 10x)"
awk "BEGIN { exit !(${speedup} >= 10.0) }" || {
    echo "FAIL: window speedup ${speedup}x below the 10x floor" >&2
    exit 1
}

echo "==> bench floor: automaton fan-out"
sh scripts/bench_fanout.sh

echo "CI gate passed"
