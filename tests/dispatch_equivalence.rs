//! Differential property suite for the predicate-indexed dispatch layer:
//! for random automaton populations and insert streams, the indexed
//! dispatch (equality buckets, range bands, scanned guards, catch-all)
//! must produce **byte-identical per-automaton output** — notifications,
//! recorded runtime errors and printed lines, all in order — to the
//! naive all-subscribers fan-out kept behind the test-only
//! `CacheBuilder::naive_fanout` flag.
//!
//! The automaton templates deliberately cover every slot of the index:
//! string-equality guards (buckets), numeric range conjunctions (bands),
//! disjunctions and `!=` (scans), stateful/opaque behaviors and
//! multi-topic automata (catch-all), plus guards that wrap mutable
//! state updates so a wrongly skipped event would desynchronise a
//! counter and change every later notification.

use std::time::Duration;

use proptest::prelude::*;

use gapl::event::Scalar;
use unipubsub::prelude::*;

const SYMS: [&str; 4] = ["K0", "K1", "K2", "K3"];

/// One automaton spec: `(kind, a, b, sym)` drawn from small domains.
type AutomatonSpec = (u8, i64, i64, usize);
/// One insert op: `(topic_selector, rows, price_base, sym_base)`.
type InsertOp = (u8, u8, i64, u8);

fn automaton_source(spec: &AutomatonSpec) -> String {
    let (kind, a, b, sym) = *spec;
    let sym = SYMS[sym % SYMS.len()];
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    match kind % 8 {
        // Equality bucket.
        0 => format!(
            "subscribe t to T; behavior {{ if (t.sym == '{sym}') send(t.sym, t.price); }}"
        ),
        // Range band.
        1 => format!(
            "subscribe t to T; behavior {{ if (t.price >= {lo} && t.price < {hi}) send(t.price); }}"
        ),
        // Disjunction: scanned guard.
        2 => format!(
            "subscribe t to T; behavior {{ if (t.sym == '{sym}' || t.price > {a}) send(t.price, t.sym); }}"
        ),
        // Opaque: leading statement mutates state unconditionally.
        3 => format!(
            "subscribe t to T; int n; behavior {{ n += 1; if (t.price > {a}) send(n, t.price); }}"
        ),
        // `!=`: scanned guard.
        4 => format!("subscribe t to T; behavior {{ if (t.price != {a}) send(t.price); }}"),
        // Guarded state: a wrongly skipped event would desync `n`.
        5 => format!(
            "subscribe t to T; int n; behavior {{ if (t.sym == '{sym}') {{ n += 1; send(n, t.load); }} }}"
        ),
        // Real-column band, plus a print side effect.
        6 => "subscribe t to T; behavior { if (t.load > 0.5) \
              { print(String('hot ', t.price)); send(t.load); } }"
            .to_string(),
        // Multi-topic: must stay opaque (and may raise runtime errors on
        // U events before any T event arrived — identically in both
        // modes).
        _ => format!(
            "subscribe t to T; subscribe u to U; int n; \
             behavior {{ if (t.price > {a}) n += 1; if (n > 1) send(n); }}"
        ),
    }
}

/// Observable output of one automaton: notification payloads (in
/// order), recorded errors, printed lines.
type Observed = (Vec<Vec<Scalar>>, Vec<String>, Vec<String>);

fn run_workload(naive: bool, specs: &[AutomatonSpec], ops: &[InsertOp]) -> Vec<Observed> {
    let cache = CacheBuilder::new()
        .manual_clock()
        .naive_fanout(naive)
        .build();
    cache
        .execute("create table T (sym varchar(4), price integer, load real)")
        .unwrap();
    cache.execute("create table U (v integer)").unwrap();

    let mut automata = Vec::new();
    for spec in specs {
        automata.push(
            cache
                .register_automaton(&automaton_source(spec))
                .expect("every template compiles"),
        );
    }

    for (topic_sel, rows, price_base, sym_base) in ops {
        cache.manual_clock().unwrap().advance(1000);
        if topic_sel % 4 == 0 {
            cache.insert("U", vec![Scalar::Int(*price_base)]).unwrap();
            continue;
        }
        let batch: Vec<Vec<Scalar>> = (0..*rows)
            .map(|r| {
                let price = price_base + i64::from(r);
                vec![
                    Scalar::from(SYMS[(usize::from(*sym_base) + r as usize) % SYMS.len()]),
                    Scalar::Int(price),
                    Scalar::Real((price.rem_euclid(7)) as f64 / 6.0),
                ]
            })
            .collect();
        if batch.len() == 1 {
            cache
                .insert("T", batch.into_iter().next().unwrap())
                .unwrap();
        } else {
            cache.insert_batch("T", batch).unwrap();
        }
    }
    assert!(
        cache.quiesce(Duration::from_secs(30)),
        "cache failed to quiesce"
    );

    let mut observed = Vec::new();
    for (id, rx) in automata {
        let notes: Vec<Vec<Scalar>> = rx.try_iter().map(|n| n.values).collect();
        let errors = cache.automaton_errors(id).unwrap();
        let printed = cache.printed(id).unwrap();
        observed.push((notes, errors, printed));
    }
    observed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole equivalence property: indexed dispatch ≡ naive
    /// fan-out, per automaton, byte for byte.
    #[test]
    fn indexed_dispatch_is_equivalent_to_naive_fanout(
        specs in proptest::collection::vec((0u8..8, -20i64..20, -20i64..20, 0usize..4), 1..7),
        ops in proptest::collection::vec((0u8..4, 1u8..6, -25i64..25, 0u8..4), 0..25),
    ) {
        let indexed = run_workload(false, &specs, &ops);
        let naive = run_workload(true, &specs, &ops);
        prop_assert_eq!(indexed, naive);
    }

    /// Dispatch accounting closes: for every automaton, events published
    /// on its topics since registration are exactly `delivered +
    /// skipped_by_prefilter`, and everything delivered is processed
    /// after a quiesce.
    #[test]
    fn dispatch_accounting_is_exact(
        specs in proptest::collection::vec((0u8..8, -20i64..20, -20i64..20, 0usize..4), 1..5),
        ops in proptest::collection::vec((1u8..4, 1u8..6, -25i64..25, 0u8..4), 0..15),
    ) {
        let cache = CacheBuilder::new().manual_clock().build();
        cache.execute("create table T (sym varchar(4), price integer, load real)").unwrap();
        cache.execute("create table U (v integer)").unwrap();
        let mut published = 0u64;
        let ids: Vec<AutomatonId> = specs
            .iter()
            .map(|s| cache.register_automaton(&automaton_source(s)).unwrap().0)
            .collect();
        for (_, rows, price_base, sym_base) in &ops {
            let batch: Vec<Vec<Scalar>> = (0..*rows)
                .map(|r| {
                    let price = price_base + i64::from(r);
                    vec![
                        Scalar::from(SYMS[(usize::from(*sym_base) + r as usize) % SYMS.len()]),
                        Scalar::Int(price),
                        Scalar::Real((price.rem_euclid(7)) as f64 / 6.0),
                    ]
                })
                .collect();
            published += batch.len() as u64;
            cache.insert_batch("T", batch).unwrap();
        }
        prop_assert!(cache.quiesce(Duration::from_secs(30)));
        for (id, spec) in ids.iter().zip(&specs) {
            let t = cache.automaton_telemetry(*id).unwrap();
            // Multi-topic automata also count U publishes; none were made.
            prop_assert_eq!(
                t.delivered + t.skipped_by_prefilter,
                published,
                "automaton {:?} accounting does not close", spec
            );
            prop_assert_eq!(t.processed, t.delivered);
            prop_assert_eq!(t.queue_depth, 0);
        }
    }
}
