#!/usr/bin/env sh
# Protection-layer snapshot: prices exactly-once dedup on the insert
# hot path and admission-control fairness under a flooding client.
# Writes BENCH_protect.json at the repository root and enforces two
# acceptance floors:
#
#   protect_dedup_ratio    >= 0.9   idempotency tokens (the default for
#                                   every blocking mutation) may cost at
#                                   most 10% of the untokened pipelined
#                                   insert throughput
#   protect_fairness_ratio >= 0.5   a well-behaved, self-paced client
#                                   keeps at least half its isolated
#                                   throughput while a hostile
#                                   connection floods ~10x the quota
#
# Floors are enforced by the bench crate's `check_floor` binary: a
# missing file, missing key, or unparsable metric is a hard failure —
# a bench that did not produce its number must never count as a pass.
set -eu

cd "$(dirname "$0")/.."

echo "==> snapshot: BENCH_protect.json"
cargo run --release -p cep_bench --bin bench_protect

cargo run --release -q -p cep_bench --bin check_floor -- \
    BENCH_protect.json protect_dedup_ratio 0.9 \
    "tokened/untokened insert throughput ratio"
cargo run --release -q -p cep_bench --bin check_floor -- \
    BENCH_protect.json protect_fairness_ratio 0.5 \
    "paced-client flooded/isolated throughput ratio"

echo "protect snapshot complete"
