//! A Zipf (power-law) rank sampler.
//!
//! Web requests per host follow a Zipfian rank/frequency distribution
//! (Fig. 15 of the paper): the `r`-th most popular host receives a number
//! of requests proportional to `1 / r^s`.

use rand::Rng;

/// Samples ranks `0..n` with probability proportional to `1/(rank+1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
    exponent: f64,
}

impl Zipf {
    /// Build a sampler over `n` ranks with the given exponent (`s ≈ 1` is
    /// classic web-traffic behaviour).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `exponent` is not finite and positive.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "a Zipf distribution needs at least one rank");
        assert!(
            exponent.is_finite() && exponent > 0.0,
            "the Zipf exponent must be positive"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(exponent);
            cumulative.push(total);
        }
        // Normalise so the last entry is exactly 1.0.
        for c in &mut cumulative {
            *c /= total;
        }
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Zipf {
            cumulative,
            exponent,
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.cumulative.len()
    }

    /// The configured exponent.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Sample one rank in `0..ranks()` (0 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("cumulative values are finite"))
        {
            Ok(ix) => ix,
            Err(ix) => ix.min(self.cumulative.len() - 1),
        }
    }

    /// The probability mass of a given rank.
    ///
    /// # Panics
    ///
    /// Panics when `rank` is out of range.
    pub fn probability(&self, rank: usize) -> f64 {
        let prev = if rank == 0 {
            0.0
        } else {
            self.cumulative[rank - 1]
        };
        self.cumulative[rank] - prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one_and_decrease_with_rank() {
        let z = Zipf::new(100, 1.0);
        let total: f64 = (0..100).map(|r| z.probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for r in 1..100 {
            assert!(z.probability(r) <= z.probability(r - 1) + 1e-12);
        }
        assert_eq!(z.ranks(), 100);
        assert_eq!(z.exponent(), 1.0);
    }

    #[test]
    fn sampling_respects_the_distribution_roughly() {
        let z = Zipf::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 50];
        let n = 50_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 should be clearly more popular than rank 10, which should
        // be clearly more popular than rank 40.
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[40]);
        // Rank 0 should take roughly its theoretical share (within 20 %).
        let expected = z.probability(0) * n as f64;
        assert!((counts[0] as f64 - expected).abs() < expected * 0.2);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn non_positive_exponent_panics() {
        let _ = Zipf::new(10, 0.0);
    }
}
