//! Attribute bindings carried by NFA instances.

use std::collections::BTreeMap;
use std::fmt;

use gapl::event::Scalar;

/// The bindings accumulated by a partial match: named scalar values copied
/// or aggregated from the events consumed so far.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Bindings {
    values: BTreeMap<String, Scalar>,
}

impl Bindings {
    /// Empty bindings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind `name` to `value`, replacing any previous binding.
    pub fn set(&mut self, name: impl Into<String>, value: Scalar) {
        self.values.insert(name.into(), value);
    }

    /// The value bound to `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Scalar> {
        self.values.get(name)
    }

    /// The value bound to `name` as an `f64`, if numeric.
    pub fn get_real(&self, name: &str) -> Option<f64> {
        self.values.get(name).and_then(Scalar::as_real)
    }

    /// The value bound to `name` as an `i64`, if integral.
    pub fn get_int(&self, name: &str) -> Option<i64> {
        self.values.get(name).and_then(Scalar::as_int)
    }

    /// The value bound to `name` as a string slice, if textual.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.values.get(name).and_then(Scalar::as_str)
    }

    /// Increment the integer binding `name` by `delta` (creating it at
    /// `delta` when absent). Used by FOLD-style aggregation.
    pub fn add_int(&mut self, name: &str, delta: i64) {
        let next = self.get_int(name).unwrap_or(0) + delta;
        self.set(name, Scalar::Int(next));
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no bindings exist.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Scalar)> {
        self.values.iter()
    }
}

impl fmt::Display for Bindings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(String, Scalar)> for Bindings {
    fn from_iter<T: IntoIterator<Item = (String, Scalar)>>(iter: T) -> Self {
        Bindings {
            values: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_and_typed_views() {
        let mut b = Bindings::new();
        assert!(b.is_empty());
        b.set("price", Scalar::Real(10.5));
        b.set("name", Scalar::Str("ACME".into()));
        b.set("count", Scalar::Int(3));
        assert_eq!(b.get_real("price"), Some(10.5));
        assert_eq!(b.get_str("name"), Some("ACME"));
        assert_eq!(b.get_int("count"), Some(3));
        assert_eq!(b.get("missing"), None);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn add_int_accumulates() {
        let mut b = Bindings::new();
        b.add_int("n", 1);
        b.add_int("n", 4);
        assert_eq!(b.get_int("n"), Some(5));
    }

    #[test]
    fn display_and_from_iterator() {
        let b: Bindings = vec![
            ("a".to_string(), Scalar::Int(1)),
            ("b".to_string(), Scalar::Str("x".into())),
        ]
        .into_iter()
        .collect();
        assert_eq!(b.to_string(), "{a=1, b=x}");
        assert_eq!(b.iter().count(), 2);
    }
}
