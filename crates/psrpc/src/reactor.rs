//! The event-driven RPC server: thousands of connections, a handful of
//! threads.
//!
//! [`crate::server::RpcServer`] spends two threads per connection, which
//! caps a node at hundreds of clients and — because each connection's
//! worker blocks in `read` between requests — serialises every client on
//! its own round-trip latency. This module keeps that server compiled in
//! as the semantic oracle and adds a second transport with the same wire
//! format and the same request semantics (both call the server module's
//! `handle_request`) but an inverted thread model:
//!
//! * one **reactor thread** owns every socket. It blocks in
//!   [`crate::poll::wait`] over the listener, a [`Waker`] doorbell, and
//!   all nonblocking connection sockets; it reads bytes, reassembles
//!   fragments, decodes [`ClientMessage`]s into per-connection inboxes,
//!   and flushes per-connection outboxes;
//! * a small **worker pool** executes decoded requests. At most one
//!   worker drains a given connection at a time (the `executing` flag),
//!   which preserves the blocking server's contract: requests on one
//!   connection are executed and answered in receive order. Workers for
//!   *different* connections run in parallel, exactly as the blocking
//!   server's per-connection threads did;
//! * **backpressure** is per connection: when a client pipelines more
//!   than [`ReactorConfig::max_pipeline_depth`] undecided requests, the
//!   reactor parks that connection's read interest (counted in
//!   `rpc_queue_stalls`) and lets TCP flow control push back, resuming
//!   as workers drain the inbox.
//!
//! Shutdown preserves [`crate::server::RpcServer::shutdown`]'s drain
//! contract: stop accepting, stop reading, execute every request already
//! received, flush every reply, then tear down — force-closing only what
//! outlives the grace period — and finally flush the write-ahead log so
//! an acknowledged insert can never be lost to a server exit.

use std::collections::{HashSet, VecDeque};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use pscache::{AutomatonId, Cache, ClientPolicy, IdemToken};

use crate::error::{Error, Result};
use crate::framing::{fragment, FRAGMENT_HEADER, FRAGMENT_PAYLOAD};
use crate::message::{CacheReply, ClientMessage, Request, ServerMessage, ServerStats};
use crate::poll::{self, PollFd, Waker, POLL_IN, POLL_OUT};
use crate::server::{
    handle_request, health_report, teardown_registered, HubMsg, NotificationHub, RequestCtx,
    RouteSink, StatsInner,
};

/// Requests one worker executes for a connection before re-queuing it,
/// so one deeply pipelined client cannot starve the others.
const WORKER_BUDGET: usize = 32;

/// How long [`ReactorServer::shutdown`] lets connections drain before
/// force-closing the stragglers (mirrors the blocking server's grace).
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// Tuning knobs for a [`ReactorServer`].
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Worker threads executing decoded requests. The reactor thread
    /// itself never executes a request, so this is the server's whole
    /// execution parallelism.
    pub workers: usize,
    /// Decoded-but-unanswered requests one connection may queue before
    /// its read interest is parked (counted in
    /// [`ServerStats::rpc_queue_stalls`]).
    pub max_pipeline_depth: usize,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            workers: pscache::config::DEFAULT_RPC_WORKERS,
            max_pipeline_depth: pscache::config::DEFAULT_RPC_MAX_PIPELINE,
        }
    }
}

/// What a worker pulls off the shared job queue.
enum Job {
    /// Drain this connection's inbox (its `executing` flag is set).
    Conn(Arc<ConnShared>),
    /// Exit; one per worker at shutdown.
    Stop,
}

/// Per-connection execution state, behind one mutex. The invariant the
/// whole design rests on: `executing` is true exactly while one worker
/// owns this connection, so requests execute strictly in inbox order.
#[derive(Default)]
struct ExecState {
    /// Decoded requests awaiting execution, in receive order, each with
    /// its decode-time timestamp (`None` when metrics are disabled) so
    /// the worker that claims it can charge the inbox wait to the
    /// `queue` stage of the request's latency breakdown.
    inbox: VecDeque<(ClientMessage, Option<Instant>)>,
    /// A worker currently owns this connection's inbox.
    executing: bool,
    /// No more bytes will be read (EOF, parse error, or drain).
    read_closed: bool,
    /// The connection is dead: discard the inbox, tear down, free.
    defunct: bool,
    /// Teardown (automaton unregistration) has run; the reactor may
    /// drop the socket.
    torn_down: bool,
    /// Read interest is currently parked for backpressure (tracked so a
    /// stall is counted once per episode, not once per poll iteration).
    paused: bool,
}

/// The parts of a connection shared between the reactor thread, the
/// worker pool, and the notification hub's route.
struct ConnShared {
    exec: Mutex<ExecState>,
    /// Outbound wire bytes (already fragmented); only the reactor
    /// thread drains it into the socket.
    out: Mutex<Vec<u8>>,
    /// Automata this connection registered; touched only by the single
    /// active worker, including at teardown.
    registered: Mutex<HashSet<AutomatonId>>,
    /// The reactor's doorbell, rung whenever `out` gains bytes.
    waker: Arc<Waker>,
    /// Server counters, reachable from the hub's delivery path (which
    /// holds only this struct) so slow-consumer eviction can account.
    stats: Arc<StatsInner>,
    /// Outbox bytes beyond which the hub evicts this connection as a
    /// slow consumer ([`pscache::ClientPolicy::max_outbox_bytes`]; 0
    /// disables eviction).
    max_outbox_bytes: usize,
    /// The served cache's observability registry, reachable from the
    /// flush path (which holds only this struct) so a drained outbox
    /// can complete the flush stage of its pending operations.
    obs: Arc<pscache::Obs>,
    /// Replies appended to `out` whose flush has not yet happened: the
    /// reactor completes (and records) each one when the outbox next
    /// drains to empty. Empty whenever metrics are disabled.
    pending_ops: Mutex<VecDeque<PendingOp>>,
}

/// Cap on outstanding [`PendingOp`]s per connection: a subscriber whose
/// outbox never fully drains (a notification firehose) must not pin
/// unbounded trace state; past the cap the oldest span is dropped
/// unrecorded.
const PENDING_OPS_CAP: usize = 1024;

/// A measured request whose reply sits in the outbox awaiting flush —
/// the first two stages of its latency breakdown, waiting for the third.
struct PendingOp {
    /// Client-stamped wire trace id (0 when unstamped).
    trace_id: u64,
    kind: pscache::ReqKind,
    /// Table the request addressed, for the slow-op log.
    table: Option<String>,
    queue_ns: u64,
    exec_ns: u64,
    /// When the reply landed in the outbox.
    appended: Instant,
}

/// Append one logical message to an outbox, atomically with respect to
/// other messages (fragments of two messages must never interleave).
fn append_message(out: &Mutex<Vec<u8>>, message: &[u8]) {
    let mut out = out.lock();
    for frag in fragment(message) {
        out.extend_from_slice(&frag);
    }
}

/// The hub's route to a reactor connection: append to the outbox, ring
/// the doorbell.
struct ReactorRoute {
    shared: Arc<ConnShared>,
}

impl RouteSink for ReactorRoute {
    fn deliver(&self, msg: ServerMessage) -> bool {
        if self.shared.exec.lock().defunct {
            return false;
        }
        append_message(&self.shared.out, &msg.encode());
        // Slow-consumer eviction: a client that subscribes to a firehose
        // and stops draining its socket would otherwise buffer unbounded
        // notification bytes server-side. Past the policy cap the
        // connection is defunct — its automata are unregistered by the
        // teardown worker, exactly as if it had disconnected.
        if self.shared.max_outbox_bytes > 0
            && self.shared.out.lock().len() > self.shared.max_outbox_bytes
        {
            if self.shared.obs.enabled() {
                self.shared
                    .obs
                    .slow_consumer_evictions
                    .fetch_add(1, Ordering::Relaxed);
            }
            mark_defunct(&self.shared, &self.shared.stats);
            self.shared.waker.wake();
            return false;
        }
        self.shared.waker.wake();
        true
    }
}

/// Incremental fragment reassembly over a nonblocking byte stream — the
/// streaming counterpart of [`crate::framing::read_message`], fed bytes
/// as the socket produces them.
#[derive(Default)]
struct FrameParser {
    buf: Vec<u8>,
    pos: usize,
    msg: Vec<u8>,
}

impl FrameParser {
    fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// The next complete logical message, if the buffer holds one.
    fn next_message(&mut self) -> Result<Option<Vec<u8>>> {
        loop {
            let avail = self.buf.len() - self.pos;
            if avail < FRAGMENT_HEADER {
                break;
            }
            let h = &self.buf[self.pos..];
            let len = u16::from_le_bytes([h[0], h[1]]) as usize;
            let last = h[2] != 0;
            if len > FRAGMENT_PAYLOAD {
                return Err(Error::protocol(format!(
                    "fragment length {len} exceeds the {FRAGMENT_PAYLOAD}-byte payload limit"
                )));
            }
            if avail < FRAGMENT_HEADER + len {
                break;
            }
            let start = self.pos + FRAGMENT_HEADER;
            self.msg.extend_from_slice(&self.buf[start..start + len]);
            self.pos += FRAGMENT_HEADER + len;
            if last {
                self.compact();
                return Ok(Some(std::mem::take(&mut self.msg)));
            }
        }
        self.compact();
        Ok(None)
    }

    fn compact(&mut self) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

/// Continuously-refilled token buckets backing the per-connection
/// request-rate and byte quotas. Touched only by the reactor thread, so
/// no lock; floats so sub-1/sec refill accumulates across polls.
struct Throttle {
    req_tokens: f64,
    byte_tokens: f64,
    last_refill: Instant,
}

impl Throttle {
    /// A fresh connection starts with full buckets: an idle client may
    /// spend its whole burst allowance immediately.
    fn full(policy: &ClientPolicy) -> Throttle {
        Throttle {
            req_tokens: request_bucket_cap(policy),
            byte_tokens: policy.max_bytes_per_sec as f64,
            last_refill: Instant::now(),
        }
    }
}

fn request_bucket_cap(policy: &ClientPolicy) -> f64 {
    if policy.burst > 0 {
        policy.burst as f64
    } else {
        policy.max_requests_per_sec as f64
    }
}

/// Admission decision for one decoded request of `nbytes` wire bytes
/// with `inbox_len` requests already decoded-but-unanswered on the same
/// connection. Refills the buckets by wall-clock time, then either
/// admits (consuming tokens) or rejects (consuming nothing — a rejected
/// request must not push the client further into debt).
fn admit(policy: &ClientPolicy, t: &mut Throttle, nbytes: usize, inbox_len: usize) -> bool {
    if policy.max_in_flight > 0 && inbox_len >= policy.max_in_flight {
        return false;
    }
    let now = Instant::now();
    let dt = now.duration_since(t.last_refill).as_secs_f64();
    t.last_refill = now;
    if policy.max_requests_per_sec > 0 {
        t.req_tokens = (t.req_tokens + dt * policy.max_requests_per_sec as f64)
            .min(request_bucket_cap(policy));
        if t.req_tokens < 1.0 {
            return false;
        }
    }
    if policy.max_bytes_per_sec > 0 {
        t.byte_tokens = (t.byte_tokens + dt * policy.max_bytes_per_sec as f64)
            .min(policy.max_bytes_per_sec as f64);
        if t.byte_tokens < nbytes as f64 {
            return false;
        }
    }
    if policy.max_requests_per_sec > 0 {
        t.req_tokens -= 1.0;
    }
    if policy.max_bytes_per_sec > 0 {
        t.byte_tokens -= nbytes as f64;
    }
    true
}

/// The reactor thread's view of one connection: the socket plus the
/// shared queues.
struct Conn {
    shared: Arc<ConnShared>,
    stream: TcpStream,
    parser: FrameParser,
    throttle: Throttle,
}

/// A running event-driven RPC server bound to a TCP address.
///
/// Wire-compatible with [`crate::server::RpcServer`] — any
/// [`crate::client::CacheClient`] works against either — but built to
/// hold thousands of concurrent connections and to let a pipelining
/// client keep many requests in flight on one socket.
pub struct ReactorServer {
    local_addr: SocketAddr,
    cache: Cache,
    stats: Arc<StatsInner>,
    shutting_down: Arc<AtomicBool>,
    waker: Arc<Waker>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    job_tx: Sender<Job>,
    hub: Option<NotificationHub>,
}

impl std::fmt::Debug for ReactorServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorServer")
            .field("local_addr", &self.local_addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl ReactorServer {
    /// Bind with the cache's configured worker count (see
    /// `pscache::CacheBuilder::rpc_workers`) and the default pipeline
    /// depth.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the listener or the reactor's doorbell
    /// cannot be created.
    ///
    /// # Example
    ///
    /// ```
    /// use pscache::CacheBuilder;
    /// use psrpc::{client::CacheClient, reactor::ReactorServer};
    ///
    /// let server = ReactorServer::bind(CacheBuilder::new().build(), "127.0.0.1:0")?;
    /// let client = CacheClient::connect(server.local_addr())?;
    /// client.execute("create table T (v integer)")?;
    /// client.insert("T", vec![7i64.into()])?;
    /// assert_eq!(client.select("select * from T")?.len(), 1);
    /// drop(client);
    /// server.shutdown();
    /// # Ok::<(), psrpc::Error>(())
    /// ```
    pub fn bind(cache: Cache, addr: impl ToSocketAddrs) -> Result<ReactorServer> {
        let config = ReactorConfig {
            workers: cache.rpc_workers(),
            ..ReactorConfig::default()
        };
        Self::bind_with(cache, addr, config)
    }

    /// Bind with explicit tuning.
    ///
    /// # Errors
    ///
    /// See [`ReactorServer::bind`].
    pub fn bind_with(
        cache: Cache,
        addr: impl ToSocketAddrs,
        config: ReactorConfig,
    ) -> Result<ReactorServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stats = Arc::new(StatsInner::default());
        let hub = NotificationHub::start(Arc::clone(&stats));
        let waker = Arc::new(Waker::new()?);
        let shutting_down = Arc::new(AtomicBool::new(false));
        let (job_tx, job_rx) = unbounded::<Job>();

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let cache = cache.clone();
                let note_tx = hub.note_tx.clone();
                let control_tx = hub.control_tx.clone();
                let stats = Arc::clone(&stats);
                let job_rx = job_rx.clone();
                let job_tx = job_tx.clone();
                std::thread::Builder::new()
                    .name(format!("psrpc-reactor-worker-{i}"))
                    .spawn(move || {
                        worker_loop(&cache, &note_tx, &control_tx, &stats, &job_rx, &job_tx)
                    })
                    .expect("spawning a reactor worker never fails")
            })
            .collect();

        let reactor = {
            let reactor_cache = cache.clone();
            let policy = cache.client_policy();
            let stats = Arc::clone(&stats);
            let waker = Arc::clone(&waker);
            let shutting_down = Arc::clone(&shutting_down);
            let job_tx = job_tx.clone();
            let max_pipeline = config.max_pipeline_depth.max(1);
            std::thread::Builder::new()
                .name("psrpc-reactor".into())
                .spawn(move || {
                    reactor_loop(
                        &listener,
                        &reactor_cache,
                        &policy,
                        &stats,
                        &shutting_down,
                        &waker,
                        &job_tx,
                        max_pipeline,
                    );
                })
                .expect("spawning the reactor thread never fails")
        };

        Ok(ReactorServer {
            local_addr,
            cache,
            stats,
            shutting_down,
            waker,
            reactor: Some(reactor),
            workers,
            job_tx,
            hub: Some(hub),
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the server's counters, including the reactor's
    /// in-flight depth and backpressure stalls.
    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot(&self.cache)
    }

    /// Graceful shutdown with the same contract as
    /// [`crate::server::RpcServer::shutdown`]: stop accepting, stop
    /// reading, execute every request already received and flush its
    /// reply, force-close what outlives the grace period, join every
    /// thread, and flush the write-ahead log.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutting_down.store(true, Ordering::Release);
        self.waker.wake();
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
        // Teardown jobs the reactor queued on its way out run before
        // these sentinels, so every automaton is unregistered by the
        // time the workers exit.
        for _ in 0..self.workers.len() {
            let _ = self.job_tx.send(Job::Stop);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(hub) = self.hub.take() {
            hub.finish();
        }
        let _ = self.cache.flush_wal();
    }
}

impl Drop for ReactorServer {
    fn drop(&mut self) {
        if self.reactor.is_some() || self.hub.is_some() {
            self.stop();
        }
    }
}

fn worker_loop(
    cache: &Cache,
    note_tx: &Sender<pscache::Notification>,
    control_tx: &Sender<HubMsg>,
    stats: &StatsInner,
    job_rx: &Receiver<Job>,
    job_tx: &Sender<Job>,
) {
    let ctx = RequestCtx {
        cache,
        note_tx,
        control_tx,
        stats,
    };
    while let Ok(job) = job_rx.recv() {
        match job {
            Job::Stop => break,
            Job::Conn(conn) => run_conn(&ctx, job_tx, &conn),
        }
    }
}

/// Drain one connection's inbox (up to [`WORKER_BUDGET`] requests),
/// append each reply to its outbox, and ring the reactor. Runs with the
/// connection's `executing` flag held; clears it on every return path
/// except the fairness re-queue.
fn run_conn(ctx: &RequestCtx<'_>, job_tx: &Sender<Job>, conn: &Arc<ConnShared>) {
    for _ in 0..WORKER_BUDGET {
        let (msg, received) = {
            let mut exec = conn.exec.lock();
            if exec.defunct {
                let dropped = exec.inbox.len() as u64;
                exec.inbox.clear();
                if dropped > 0 {
                    ctx.stats.in_flight.fetch_sub(dropped, Ordering::Release);
                }
                if exec.torn_down {
                    exec.executing = false;
                    return;
                }
                exec.torn_down = true;
                drop(exec);
                {
                    let mut registered = conn.registered.lock();
                    teardown_registered(ctx, &mut registered);
                }
                ctx.stats.active.fetch_sub(1, Ordering::Release);
                conn.exec.lock().executing = false;
                conn.waker.wake();
                return;
            }
            match exec.inbox.pop_front() {
                Some(entry) => entry,
                None => {
                    exec.executing = false;
                    drop(exec);
                    // The finalisation sweep skips connections while
                    // `executing` is set; if an EOF (or drain) arrived
                    // during this run, nothing else will wake the
                    // reactor to notice the flag cleared. Ring it.
                    conn.waker.wake();
                    return;
                }
            }
        };
        let route_conn = Arc::clone(conn);
        let route = move || {
            Box::new(ReactorRoute {
                shared: Arc::clone(&route_conn),
            }) as Box<dyn RouteSink>
        };
        let token = msg
            .token
            .map(|(client_id, seq)| IdemToken { client_id, seq });
        // The first stage of the latency breakdown closes at pickup:
        // queue time is decode-to-claim. Everything trace-related keys
        // off `received` being stamped, so a metrics-off cache pays no
        // clock reads here.
        let span = received.map(|at| {
            let table = match &msg.request {
                Request::Insert { table, .. } | Request::InsertBatch { table, .. } => {
                    Some(table.clone())
                }
                _ => None,
            };
            (
                at.elapsed().as_nanos() as u64,
                crate::server::req_kind(&msg.request),
                table,
                Instant::now(),
            )
        });
        ctx.stats.worker_busy.fetch_add(1, Ordering::Release);
        let reply = {
            let mut registered = conn.registered.lock();
            handle_request(ctx, &mut registered, &route, msg.request, token)
        };
        ctx.stats.worker_busy.fetch_sub(1, Ordering::Release);
        append_message(
            &conn.out,
            &ServerMessage::Reply {
                seq: msg.seq,
                reply,
            }
            .encode(),
        );
        if let Some((queue_ns, kind, table, exec_started)) = span {
            let mut pending = conn.pending_ops.lock();
            if pending.len() >= PENDING_OPS_CAP {
                pending.pop_front();
            }
            pending.push_back(PendingOp {
                trace_id: msg.trace.unwrap_or(0),
                kind,
                table,
                queue_ns,
                exec_ns: exec_started.elapsed().as_nanos() as u64,
                appended: Instant::now(),
            });
        }
        ctx.stats.in_flight.fetch_sub(1, Ordering::Release);
        conn.waker.wake();
    }
    // Budget spent with work possibly left: go to the back of the queue
    // (keeping `executing` set, so the reactor won't double-enqueue).
    let _ = job_tx.send(Job::Conn(Arc::clone(conn)));
}

/// The connection is unusable (write failure): discard undecided work
/// and flag it for teardown. Idempotent.
fn mark_defunct(shared: &ConnShared, stats: &StatsInner) {
    let mut exec = shared.exec.lock();
    if exec.defunct {
        return;
    }
    exec.defunct = true;
    let dropped = exec.inbox.len() as u64;
    exec.inbox.clear();
    if dropped > 0 {
        stats.in_flight.fetch_sub(dropped, Ordering::Release);
    }
    drop(exec);
    // Spans whose flush will never happen are dropped, not recorded
    // with a fabricated flush time.
    shared.pending_ops.lock().clear();
}

fn accept_all(
    listener: &TcpListener,
    conns: &mut Vec<Conn>,
    stats: &Arc<StatsInner>,
    waker: &Arc<Waker>,
    policy: &ClientPolicy,
    obs: &Arc<pscache::Obs>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                stream.set_nodelay(true).ok();
                stats.accepted.fetch_add(1, Ordering::Release);
                stats.active.fetch_add(1, Ordering::Release);
                conns.push(Conn {
                    shared: Arc::new(ConnShared {
                        exec: Mutex::new(ExecState::default()),
                        out: Mutex::new(Vec::new()),
                        registered: Mutex::new(HashSet::new()),
                        waker: Arc::clone(waker),
                        stats: Arc::clone(stats),
                        max_outbox_bytes: policy.max_outbox_bytes,
                        obs: Arc::clone(obs),
                        pending_ops: Mutex::new(VecDeque::new()),
                    }),
                    stream,
                    parser: FrameParser::default(),
                    throttle: Throttle::full(policy),
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Drain readable bytes into the parser and decoded requests into the
/// inbox, handing the connection to a worker when it goes busy.
///
/// This is also where admission control lives: health probes are
/// answered inline (never queued, so a probe gets its reply even with
/// every worker wedged), and requests over the connection's rate, byte
/// or in-flight budget are answered with a typed `Throttled` rejection
/// without ever reaching the worker pool.
fn reactor_read(
    conn: &mut Conn,
    buf: &mut [u8],
    cache: &Cache,
    policy: &ClientPolicy,
    stats: &StatsInner,
    job_tx: &Sender<Job>,
    max_pipeline: usize,
) {
    loop {
        match (&conn.stream).read(buf) {
            Ok(0) => {
                conn.shared.exec.lock().read_closed = true;
                return;
            }
            Ok(n) => {
                conn.parser.push(&buf[..n]);
                loop {
                    match conn.parser.next_message() {
                        Ok(Some(bytes)) => match ClientMessage::decode(&bytes) {
                            Ok(msg) => {
                                stats.requests.fetch_add(1, Ordering::Release);
                                if matches!(msg.request, Request::Health) {
                                    // Readiness must not depend on worker
                                    // availability: answer from atomics on
                                    // the reactor thread. The outbox is
                                    // flushed later this same poll
                                    // iteration.
                                    cache.obs().count_request(pscache::ReqKind::Control);
                                    append_message(
                                        &conn.shared.out,
                                        &ServerMessage::Reply {
                                            seq: msg.seq,
                                            reply: CacheReply::Health {
                                                report: health_report(cache, stats),
                                            },
                                        }
                                        .encode(),
                                    );
                                    continue;
                                }
                                if matches!(msg.request, Request::Metrics) {
                                    // Same contract as Health: a scraper
                                    // must get its numbers from a node
                                    // whose worker pool is saturated —
                                    // which is exactly when the numbers
                                    // matter. Snapshotting is lock-free
                                    // reads of atomics, cheap enough for
                                    // the poll thread.
                                    cache.obs().count_request(pscache::ReqKind::Control);
                                    append_message(
                                        &conn.shared.out,
                                        &ServerMessage::Reply {
                                            seq: msg.seq,
                                            reply: CacheReply::Metrics {
                                                snapshot: cache.obs().snapshot(),
                                            },
                                        }
                                        .encode(),
                                    );
                                    continue;
                                }
                                let inbox_len = conn.shared.exec.lock().inbox.len();
                                if !admit(policy, &mut conn.throttle, bytes.len(), inbox_len) {
                                    stats.requests_throttled.fetch_add(1, Ordering::Release);
                                    append_message(
                                        &conn.shared.out,
                                        &ServerMessage::Reply {
                                            seq: msg.seq,
                                            reply: CacheReply::Throttled {
                                                retry_after_ms: policy.retry_after().as_millis()
                                                    as u64,
                                            },
                                        }
                                        .encode(),
                                    );
                                    continue;
                                }
                                stats.in_flight.fetch_add(1, Ordering::Release);
                                let received = cache.obs().enabled().then(Instant::now);
                                let mut exec = conn.shared.exec.lock();
                                exec.inbox.push_back((msg, received));
                                if !exec.executing {
                                    exec.executing = true;
                                    drop(exec);
                                    let _ = job_tx.send(Job::Conn(Arc::clone(&conn.shared)));
                                }
                            }
                            // Undecodable message: stop reading; queued
                            // requests still get their replies.
                            Err(_) => {
                                conn.shared.exec.lock().read_closed = true;
                                return;
                            }
                        },
                        Ok(None) => break,
                        Err(_) => {
                            conn.shared.exec.lock().read_closed = true;
                            return;
                        }
                    }
                }
                // At the pipeline cap: leave the rest in the kernel
                // buffer and let TCP flow control push back.
                if conn.shared.exec.lock().inbox.len() >= max_pipeline {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                mark_defunct(&conn.shared, stats);
                return;
            }
        }
    }
}

/// Write as much buffered output as the socket accepts right now.
fn flush_out(conn: &Conn, stats: &StatsInner) {
    let mut failed = false;
    let drained;
    {
        let mut out = conn.shared.out.lock();
        let mut written = 0;
        while written < out.len() {
            match (&conn.stream).write(&out[written..]) {
                Ok(0) => {
                    failed = true;
                    break;
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        out.drain(..written);
        drained = !failed && out.is_empty();
        if failed {
            out.clear();
        }
    }
    if failed {
        mark_defunct(&conn.shared, stats);
        return;
    }
    // A fully drained outbox completes the flush stage of every reply
    // it carried: their bytes are in the kernel's send buffer, the last
    // moment the server can observe. A partial flush leaves the spans
    // pending — honest, since some of those bytes are still ours.
    if drained {
        let mut pending = conn.shared.pending_ops.lock();
        if !pending.is_empty() {
            let now = Instant::now();
            for op in pending.drain(..) {
                conn.shared.obs.record_rpc(pscache::OpTrace {
                    trace_id: op.trace_id,
                    kind: op.kind,
                    table: op.table,
                    queue_ns: op.queue_ns,
                    exec_ns: op.exec_ns,
                    flush_ns: now.saturating_duration_since(op.appended).as_nanos() as u64,
                });
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn reactor_loop(
    listener: &TcpListener,
    cache: &Cache,
    policy: &ClientPolicy,
    stats: &Arc<StatsInner>,
    shutting_down: &AtomicBool,
    waker: &Arc<Waker>,
    job_tx: &Sender<Job>,
    max_pipeline: usize,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut read_buf = vec![0u8; 16 * 1024];
    let mut drain_deadline: Option<Instant> = None;

    loop {
        let draining = shutting_down.load(Ordering::Acquire);
        if draining && drain_deadline.is_none() {
            drain_deadline = Some(Instant::now() + DRAIN_GRACE);
        }
        let force = drain_deadline.is_some_and(|d| Instant::now() >= d);

        // Finalisation sweep: flag finished (or force-expired)
        // connections defunct and queue their teardown on a worker.
        for conn in &conns {
            let mut exec = conn.shared.exec.lock();
            if force && !exec.defunct {
                exec.defunct = true;
            }
            if exec.torn_down || exec.executing {
                continue;
            }
            if exec.defunct {
                exec.executing = true;
                drop(exec);
                let _ = job_tx.send(Job::Conn(Arc::clone(&conn.shared)));
                continue;
            }
            let quiesced = exec.inbox.is_empty() && (exec.read_closed || draining);
            drop(exec);
            if quiesced && conn.shared.out.lock().is_empty() {
                let mut exec = conn.shared.exec.lock();
                // Re-check under the lock: a worker or the hub may have
                // raced new state in.
                if !exec.executing && !exec.defunct && exec.inbox.is_empty() {
                    exec.defunct = true;
                    exec.executing = true;
                    drop(exec);
                    let _ = job_tx.send(Job::Conn(Arc::clone(&conn.shared)));
                }
            }
        }
        // Dropping a torn-down Conn closes its socket.
        conns.retain(|c| !c.shared.exec.lock().torn_down);

        if draining && conns.is_empty() {
            return;
        }

        // Interest list, rebuilt every iteration (interest flips with
        // backpressure and outbox occupancy).
        let mut fds = Vec::with_capacity(conns.len() + 2);
        fds.push(PollFd::new(waker.poll_fd(), POLL_IN));
        let listener_slot = if draining {
            None
        } else {
            fds.push(PollFd::new(listener.as_raw_fd(), POLL_IN));
            Some(fds.len() - 1)
        };
        let base = fds.len();
        let mut slots: Vec<usize> = Vec::with_capacity(conns.len());
        for (i, conn) in conns.iter().enumerate() {
            let mut events = 0i16;
            {
                let mut exec = conn.shared.exec.lock();
                if !exec.read_closed && !exec.defunct && !draining {
                    if exec.inbox.len() < max_pipeline {
                        events |= POLL_IN;
                        exec.paused = false;
                    } else if !exec.paused {
                        exec.paused = true;
                        stats.queue_stalls.fetch_add(1, Ordering::Release);
                    }
                }
            }
            if !conn.shared.out.lock().is_empty() {
                events |= POLL_OUT;
            }
            if events != 0 {
                fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                slots.push(i);
            }
        }

        let timeout = draining.then(|| Duration::from_millis(25));
        if poll::wait(&mut fds, timeout).is_err() {
            // A transient poll failure: back off instead of spinning.
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }

        if fds[0].readable() {
            waker.drain();
        }
        if let Some(slot) = listener_slot {
            if fds[slot].readable() {
                accept_all(listener, &mut conns, stats, waker, policy, cache.obs());
            }
        }
        for (k, &i) in slots.iter().enumerate() {
            if fds[base + k].readable() {
                reactor_read(
                    &mut conns[i],
                    &mut read_buf,
                    cache,
                    policy,
                    stats,
                    job_tx,
                    max_pipeline,
                );
            }
        }
        // Flush every non-empty outbox — including connections that
        // gained bytes while we were blocked (their wake got us here)
        // and were not registered for POLLOUT this round.
        for conn in &conns {
            if !conn.shared.out.lock().is_empty() {
                flush_out(conn, stats);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::CacheClient;
    use gapl::event::Scalar;
    use pscache::CacheBuilder;

    #[test]
    fn bind_and_shutdown_do_not_hang() {
        let server = ReactorServer::bind(CacheBuilder::new().build(), "127.0.0.1:0").unwrap();
        assert_ne!(server.local_addr().port(), 0);
        server.shutdown();
    }

    #[test]
    fn serves_the_same_wire_protocol_as_the_blocking_server() {
        let server = ReactorServer::bind(CacheBuilder::new().build(), "127.0.0.1:0").unwrap();
        let client = CacheClient::connect(server.local_addr()).unwrap();
        client.ping().unwrap();
        client.execute("create table T (v integer)").unwrap();
        let tstamps = client
            .insert_batch("T", (0..20).map(|i| vec![Scalar::Int(i)]).collect())
            .unwrap();
        assert_eq!(tstamps.len(), 20);
        let rows = client.select("select * from T where v >= 10").unwrap();
        assert_eq!(rows.len(), 10);
        let stats = client.server_stats().unwrap();
        assert!(stats.requests_served >= 4);
        assert_eq!(stats.connections_active, 1);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn notifications_route_back_over_the_registering_connection() {
        let server = ReactorServer::bind(CacheBuilder::new().build(), "127.0.0.1:0").unwrap();
        let listener = CacheClient::connect(server.local_addr()).unwrap();
        let inserter = CacheClient::connect(server.local_addr()).unwrap();
        listener.execute("create table T (v integer)").unwrap();
        let id = listener
            .register_automaton("subscribe t to T; behavior { if (t.v > 5) send(t.v); }")
            .unwrap();
        for i in 0..10 {
            inserter.insert("T", vec![Scalar::Int(i)]).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut notes = Vec::new();
        while notes.len() < 4 && Instant::now() < deadline {
            if let Ok(n) = listener
                .notifications()
                .recv_timeout(Duration::from_millis(50))
            {
                notes.push(n);
            }
        }
        assert_eq!(notes.len(), 4);
        assert!(notes.iter().all(|n| n.automaton == id));
        assert!(inserter.drain_notifications().is_empty());
        drop(listener);
        drop(inserter);
        server.shutdown();
    }

    #[test]
    fn disconnect_unregisters_the_connections_automata() {
        let cache = CacheBuilder::new().build();
        let server = ReactorServer::bind(cache.clone(), "127.0.0.1:0").unwrap();
        let client = CacheClient::connect(server.local_addr()).unwrap();
        client.execute("create table T (v integer)").unwrap();
        client
            .register_automaton("subscribe t to T; behavior { }")
            .unwrap();
        assert_eq!(cache.automata().len(), 1);
        drop(client);
        let deadline = Instant::now() + Duration::from_secs(5);
        while !cache.automata().is_empty() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(cache.automata().is_empty());
        server.shutdown();
    }

    #[test]
    fn many_concurrent_connections_are_served() {
        let server = ReactorServer::bind(CacheBuilder::new().build(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let clients: Vec<CacheClient> = (0..64)
            .map(|_| CacheClient::connect(addr).unwrap())
            .collect();
        for client in &clients {
            client.ping().unwrap();
        }
        assert_eq!(server.stats().connections_active, 64);
        assert_eq!(server.stats().rpc_in_flight, 0);
        drop(clients);
        server.shutdown();
    }

    #[test]
    fn frame_parser_reassembles_across_arbitrary_chunking() {
        let msg_small = b"hello".to_vec();
        let msg_big: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        let mut wire = Vec::new();
        for m in [&msg_small, &msg_big] {
            for frag in fragment(m) {
                wire.extend_from_slice(&frag);
            }
        }
        // Feed one byte at a time: worst-case chunking.
        let mut parser = FrameParser::default();
        let mut out = Vec::new();
        for b in wire {
            parser.push(&[b]);
            while let Some(m) = parser.next_message().unwrap() {
                out.push(m);
            }
        }
        assert_eq!(out, vec![msg_small, msg_big]);
    }

    #[test]
    fn frame_parser_rejects_oversized_fragments() {
        let mut parser = FrameParser::default();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(2000u16).to_le_bytes());
        bytes.push(1);
        bytes.push(0);
        parser.push(&bytes);
        assert!(parser.next_message().is_err());
    }
}
