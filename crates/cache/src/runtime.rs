//! The automaton execution runtime (§5 of the paper).
//!
//! When an application registers an automaton, the cache compiles its GAPL
//! source; on success a dedicated thread is created to animate the
//! automaton. The thread executes the `initialization` clause once and then
//! blocks waiting for events on the topics the automaton subscribed to. The
//! runtime guarantees that tuples are delivered to an automaton in strict
//! time-of-insertion order: the cache appends every published tuple to the
//! automaton's unbounded FIFO delivery channel while still holding the
//! per-table lock, and the automaton drains the channel in order. Batched
//! inserts keep the same guarantee — the whole batch is appended under one
//! lock acquisition, so an automaton sees a batch as a contiguous run of
//! deliveries with nothing interleaved. Tables live in a lock-striped
//! sharded store, so the ordering guarantee is *per table*: deliveries
//! from different tables interleave in an unspecified (but
//! per-channel-FIFO) order, exactly as in the single-map design.
//!
//! While processing an event the automaton may `send()` information to the
//! registering application — surfaced here as a [`Notification`] on a
//! channel — and may `publish()` tuples into other tables, potentially
//! triggering other automata.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;

use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;

use gapl::event::{Scalar, Timestamp, Tuple};
use gapl::vm::{HostInterface, Vm};
use gapl::Program;

use crate::cache::CacheInner;

/// Identifies a registered automaton; returned by registration and used to
/// manage the automaton later (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AutomatonId(pub u64);

impl std::fmt::Display for AutomatonId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "automaton#{}", self.0)
    }
}

/// A complex-event notification produced by an automaton's `send()` and
/// delivered to the application that registered it.
#[derive(Debug, Clone, PartialEq)]
pub struct Notification {
    /// The automaton that sent the notification.
    pub automaton: AutomatonId,
    /// The flattened values passed to `send()`.
    pub values: Vec<Scalar>,
    /// The cache time at which the notification was produced.
    pub at: Timestamp,
}

/// A message on an automaton's delivery channel.
#[derive(Debug)]
pub(crate) enum Delivery {
    /// An event published on a subscribed topic.
    Event {
        /// The topic the tuple was inserted into.
        topic: Arc<str>,
        /// The tuple itself.
        tuple: Tuple,
    },
    /// Ask the automaton thread to exit.
    Shutdown,
}

/// Counters and buffers shared between an automaton thread and the cache.
#[derive(Debug, Default)]
pub(crate) struct AutomatonStats {
    /// Events enqueued for this automaton.
    pub delivered: AtomicU64,
    /// Events fully processed by the behavior clause.
    pub processed: AtomicU64,
    /// Runtime errors raised while processing events.
    pub errors: Mutex<Vec<String>>,
    /// Lines produced by `print()`.
    pub printed: Mutex<Vec<String>>,
}

/// The cache-side handle for a running automaton.
#[derive(Debug)]
pub(crate) struct AutomatonHandle {
    pub program: Arc<Program>,
    pub sender: Sender<Delivery>,
    pub join: Option<JoinHandle<()>>,
}

impl AutomatonHandle {
    /// Ask the thread to stop and wait for it.
    pub fn shutdown(mut self) {
        let _ = self.sender.send(Delivery::Shutdown);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// The [`HostInterface`] implementation that wires an automaton into the
/// cache: `publish()` becomes an insertion (which may cascade to other
/// automata), `send()` becomes a [`Notification`], and associations resolve
/// to the cache's persistent tables.
pub(crate) struct CacheHost {
    pub cache: Weak<CacheInner>,
    pub automaton: AutomatonId,
    pub notifier: Sender<Notification>,
    pub stats: Arc<AutomatonStats>,
    pub print_to_stdout: bool,
}

impl CacheHost {
    fn cache(&self) -> gapl::Result<Arc<CacheInner>> {
        self.cache
            .upgrade()
            .ok_or_else(|| gapl::Error::runtime("the cache has been shut down"))
    }
}

impl HostInterface for CacheHost {
    fn now(&self) -> Timestamp {
        self.cache.upgrade().map(|c| c.now()).unwrap_or(0)
    }

    fn publish(&mut self, topic: &str, values: Vec<Scalar>) -> gapl::Result<()> {
        let cache = self.cache()?;
        cache
            .insert_values(topic, values, true)
            .map(|_| ())
            .map_err(|e| gapl::Error::runtime(e.to_string()))
    }

    fn send(&mut self, values: Vec<Scalar>) -> gapl::Result<()> {
        let at = self.now();
        // A vanished application is not an automaton error: the paper's
        // cache keeps automata running even when the registering process is
        // slow or gone, so a closed channel is silently tolerated.
        let _ = self.notifier.send(Notification {
            automaton: self.automaton,
            values,
            at,
        });
        Ok(())
    }

    fn print(&mut self, text: &str) {
        if self.print_to_stdout {
            println!("{text}");
        }
        self.stats.printed.lock().push(text.to_owned());
    }

    fn assoc_lookup(&mut self, table: &str, key: &str) -> gapl::Result<Option<Vec<Scalar>>> {
        let cache = self.cache()?;
        cache
            .persistent_lookup(table, key)
            .map_err(|e| gapl::Error::runtime(e.to_string()))
    }

    fn assoc_insert(&mut self, table: &str, key: &str, values: Vec<Scalar>) -> gapl::Result<()> {
        let cache = self.cache()?;
        cache
            .persistent_upsert(table, key, values)
            .map_err(|e| gapl::Error::runtime(e.to_string()))
    }

    fn assoc_has_entry(&mut self, table: &str, key: &str) -> gapl::Result<bool> {
        Ok(self.assoc_lookup(table, key)?.is_some())
    }

    fn assoc_remove(&mut self, table: &str, key: &str) -> gapl::Result<()> {
        let cache = self.cache()?;
        cache
            .persistent_remove(table, key)
            .map(|_| ())
            .map_err(|e| gapl::Error::runtime(e.to_string()))
    }

    fn assoc_size(&mut self, table: &str) -> gapl::Result<usize> {
        let cache = self.cache()?;
        cache
            .table_len(table)
            .map_err(|e| gapl::Error::runtime(e.to_string()))
    }

    fn assoc_keys(&mut self, table: &str) -> gapl::Result<Vec<String>> {
        let cache = self.cache()?;
        cache
            .persistent_keys(table)
            .map_err(|e| gapl::Error::runtime(e.to_string()))
    }
}

/// Spawn the thread animating one automaton. The thread owns the [`Vm`]
/// (whose values are deliberately not `Send`); only the compiled
/// [`Program`] crosses the thread boundary.
pub(crate) fn spawn_automaton(
    id: AutomatonId,
    program: Arc<Program>,
    cache: Weak<CacheInner>,
    receiver: Receiver<Delivery>,
    notifier: Sender<Notification>,
    stats: Arc<AutomatonStats>,
    print_to_stdout: bool,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("automaton-{}", id.0))
        .spawn(move || {
            let mut host = CacheHost {
                cache,
                automaton: id,
                notifier,
                stats: Arc::clone(&stats),
                print_to_stdout,
            };
            let mut vm = Vm::new(Arc::clone(&program));
            if let Err(e) = vm.run_initialization(&mut host) {
                stats.errors.lock().push(format!("initialization: {e}"));
            }
            while let Ok(delivery) = receiver.recv() {
                match delivery {
                    Delivery::Event { topic, tuple } => {
                        if let Err(e) = vm.run_behavior(&topic, &tuple, &mut host) {
                            stats.errors.lock().push(format!("behavior: {e}"));
                        }
                        stats.processed.fetch_add(1, Ordering::Release);
                    }
                    Delivery::Shutdown => break,
                }
            }
        })
        .expect("spawning an automaton thread never fails on supported platforms")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn automaton_id_displays_compactly() {
        assert_eq!(AutomatonId(7).to_string(), "automaton#7");
    }

    #[test]
    fn notification_is_cloneable_and_comparable() {
        let n = Notification {
            automaton: AutomatonId(1),
            values: vec![Scalar::Int(3)],
            at: 12,
        };
        assert_eq!(n.clone(), n);
    }

    #[test]
    fn stats_start_at_zero() {
        let s = AutomatonStats::default();
        assert_eq!(s.delivered.load(Ordering::Relaxed), 0);
        assert_eq!(s.processed.load(Ordering::Relaxed), 0);
        assert!(s.errors.lock().is_empty());
        assert!(s.printed.lock().is_empty());
    }
}
