//! Integration test: the Cayuga baseline and the cache-side (GAPL)
//! implementations of the stock queries agree on what they detect.

use std::sync::Arc;

use cayuga::queries::{q1_select_publish, q3_increasing_runs, reference_maximal_runs};
use cayuga::Engine;
use cep_workloads::{StockConfig, StockGenerator};
use gapl::event::Tuple;
use gapl::vm::{RecordingHost, Vm};

fn small_dataset() -> Vec<Tuple> {
    let mut generator = StockGenerator::new(StockConfig {
        events: 3_000,
        symbols: 8,
        seed: 99,
        ..StockConfig::default()
    });
    let schema = Arc::new(StockGenerator::schema());
    generator
        .generate()
        .iter()
        .enumerate()
        .map(|(i, t)| Tuple::new(Arc::clone(&schema), t.to_scalars(), i as u64).unwrap())
        .collect()
}

/// The GAPL implementation of Q3 used in the example and the benchmark.
const Q3_GAPL: &str = r#"
    subscribe s to Stocks;
    associate runs with RunState;
    real prev;
    int len;
    sequence st;
    identifier name;
    behavior {
        name = Identifier(s.name);
        if (hasEntry(runs, name)) {
            st = lookup(runs, name);
            prev = seqElement(st, 1);
            len = seqElement(st, 2);
        } else {
            prev = s.price;
            len = 1;
        }
        if (s.price > prev)
            len += 1;
        else {
            if (len >= 3)
                send(s.name, len);
            len = 1;
        }
        insert(runs, name, Sequence(s.name, s.price, len));
    }
"#;

#[test]
fn q1_output_count_equals_the_input_size_for_both_engines() {
    let events = small_dataset();

    let mut engine = Engine::new(q1_select_publish());
    engine.run(&events);
    assert_eq!(engine.matches().len(), events.len());

    let program = Arc::new(
        gapl::compile("subscribe s to Stocks; behavior { publish('T', s.name, s.price); }")
            .unwrap(),
    );
    let mut vm = Vm::new(program);
    let mut host = RecordingHost::default();
    vm.run_initialization(&mut host).unwrap();
    for e in &events {
        vm.run_behavior("Stocks", e, &mut host).unwrap();
    }
    assert_eq!(host.published.len(), events.len());
    assert!(host.published.iter().all(|(topic, _)| topic == "T"));
}

#[test]
fn q3_gapl_detects_exactly_the_maximal_runs_of_the_reference() {
    let events = small_dataset();
    let reference = reference_maximal_runs(&events, 3);

    let program = Arc::new(gapl::compile(Q3_GAPL).unwrap());
    let mut vm = Vm::new(program);
    let mut host = RecordingHost::default();
    vm.run_initialization(&mut host).unwrap();
    for e in &events {
        vm.run_behavior("Stocks", e, &mut host).unwrap();
    }
    // The GAPL automaton reports runs when they end, exactly like the
    // streaming reference (except runs still open at end-of-stream, which
    // the reference flushes and the automaton cannot see).
    let gapl_runs: Vec<(String, i64)> = host
        .sent
        .iter()
        .map(|values| {
            (
                values[0].as_str().unwrap().to_owned(),
                values[1].as_int().unwrap(),
            )
        })
        .collect();
    let reference_closed: Vec<(String, i64)> =
        reference.iter().take(gapl_runs.len()).cloned().collect();
    assert_eq!(gapl_runs, reference_closed);
    assert!(!gapl_runs.is_empty(), "the dataset contains injected runs");
}

#[test]
fn q3_nfa_superset_contains_every_maximal_run() {
    let events = small_dataset();
    let reference = reference_maximal_runs(&events, 3);
    let mut engine = Engine::new(q3_increasing_runs(3));
    engine.run(&events);
    for (name, len) in &reference {
        assert!(
            engine.matches().iter().any(|m| {
                m.bindings.get_str("name") == Some(name.as_str())
                    && m.bindings.get_int("len") == Some(*len)
            }),
            "NFA missed the maximal run {name}:{len}"
        );
    }
    // The NFA does strictly more bookkeeping than the single-pass automaton.
    assert!(engine.instances_created() as usize > events.len());
}

#[test]
fn the_cache_side_q3_also_runs_inside_the_cache_runtime() {
    use std::time::Duration;
    use unipubsub::prelude::*;

    let cache = CacheBuilder::new().build();
    cache.execute(StockGenerator::create_table_sql()).unwrap();
    cache
        .execute("create persistenttable RunState (name varchar(8), price real, len integer)")
        .unwrap();
    let (_id, rx) = cache.register_automaton(Q3_GAPL).unwrap();

    let mut generator = StockGenerator::new(StockConfig {
        events: 2_000,
        symbols: 5,
        seed: 7,
        ..StockConfig::default()
    });
    let ticks = generator.generate();
    for t in &ticks {
        cache.insert("Stocks", t.to_scalars()).unwrap();
    }
    assert!(cache.quiesce(Duration::from_secs(30)));

    let schema = Arc::new(StockGenerator::schema());
    let events: Vec<Tuple> = ticks
        .iter()
        .enumerate()
        .map(|(i, t)| Tuple::new(Arc::clone(&schema), t.to_scalars(), i as u64).unwrap())
        .collect();
    let reference = reference_maximal_runs(&events, 3);
    let notified: Vec<(String, i64)> = rx
        .try_iter()
        .map(|n| {
            (
                n.values[0].as_str().unwrap().to_owned(),
                n.values[1].as_int().unwrap(),
            )
        })
        .collect();
    let reference_closed: Vec<(String, i64)> =
        reference.iter().take(notified.len()).cloned().collect();
    assert_eq!(notified, reference_closed);
}
