//! Abstract syntax tree for GAPL automata.

use crate::value::DeclType;

/// A complete automaton source file (§4.2 of the paper): subscriptions,
/// associations, declarations, an optional `initialization` clause and a
/// mandatory `behavior` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct AutomatonAst {
    /// `subscribe <var> to <Topic>;` items, in source order.
    pub subscriptions: Vec<SubscriptionDecl>,
    /// `associate <var> with <Table>;` items, in source order.
    pub associations: Vec<AssociationDecl>,
    /// Local variable declarations.
    pub declarations: Vec<VarDecl>,
    /// The optional `initialization { ... }` clause.
    pub initialization: Option<Block>,
    /// The `behavior { ... }` clause, executed on every delivered event.
    pub behavior: Block,
}

/// `subscribe <var> to <Topic>;`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubscriptionDecl {
    /// Local variable that always refers to the most recent event.
    pub var: String,
    /// The topic (table) subscribed to.
    pub topic: String,
    /// Source line of the declaration.
    pub line: usize,
}

/// `associate <var> with <Table>;`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssociationDecl {
    /// Local map-like variable bound to the persistent table.
    pub var: String,
    /// The persistent table name.
    pub table: String,
    /// Source line of the declaration.
    pub line: usize,
}

/// `int a, b, c;` style declaration of one or more locals of one type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarDecl {
    /// Declared type.
    pub ty: DeclType,
    /// Names declared with this type.
    pub names: Vec<String>,
    /// Source line of the declaration.
    pub line: usize,
}

/// A `{ ... }` block of statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
}

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    AddAssign,
    /// `-=`
    SubAssign,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `x = expr;`, `x += expr;`, `x -= expr;`
    Assign {
        /// Target local variable.
        target: String,
        /// Assignment flavour.
        op: AssignOp,
        /// Right-hand side.
        value: Expr,
        /// Source line.
        line: usize,
    },
    /// An expression evaluated for its side effects (a call), e.g.
    /// `send(s, limit, 'limit exceeded');`
    Expr {
        /// The expression (typically a [`Expr::Call`]).
        expr: Expr,
        /// Source line.
        line: usize,
    },
    /// `if (cond) stmt [else stmt]`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_branch: Box<Stmt>,
        /// Optional else branch.
        else_branch: Option<Box<Stmt>>,
        /// Source line.
        line: usize,
    },
    /// `while (cond) stmt`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
        /// Source line.
        line: usize,
    },
    /// A nested `{ ... }` block.
    Block(Block),
}

/// Binary operators, in GAPL surface syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// Reference to a local, subscription or association variable.
    Var(String),
    /// Field access on a subscription variable: `f.nbytes`.
    Field {
        /// Variable holding the event.
        object: String,
        /// Attribute name.
        field: String,
    },
    /// Function call — either a built-in (`lookup(...)`) or an aggregate
    /// constructor (`Sequence(...)`, `Window(...)`).
    Call {
        /// Function name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

impl Block {
    /// An empty block.
    pub fn empty() -> Self {
        Block { stmts: Vec::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_empty_has_no_statements() {
        assert!(Block::empty().stmts.is_empty());
    }

    #[test]
    fn ast_nodes_are_cloneable_and_comparable() {
        let e = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::Int(1)),
            rhs: Box::new(Expr::Var("x".into())),
        };
        assert_eq!(e.clone(), e);
    }
}
