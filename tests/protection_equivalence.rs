//! Differential suite for the protection layer: idempotency-token
//! dedup must be *invisible* to a correct client.
//!
//! The property drives a server with a random script of interleaved
//! mutations and reads. In the **retry run** every tokened mutation is
//! issued twice with the same token — simulating a client whose reply
//! was lost and who retried — and the duplicate's reply must be
//! byte-identical to the original. The whole retry run must then be
//! byte-equivalent to a **no-retry oracle run** of the same script on a
//! fresh server: same reply stream, same final table contents. Any
//! double-apply, reply-shape drift, or timestamp skew between the
//! deduped path and the plain path fails the property.
//!
//! A second group of tests pins the token table's bound: under
//! sustained load the per-client history never exceeds the configured
//! cap, old tokens are evicted FIFO, and each client gets its own
//! budget.

use proptest::prelude::*;

use gapl::event::Scalar;
use psrpc::client::CacheClient;
use psrpc::message::{CacheReply, Request, ServerMessage};
use psrpc::reactor::ReactorServer;
use psrpc::server::RpcServer;
use unipubsub::prelude::*;

/// One server under test, behind a common interface.
enum Server {
    Blocking(RpcServer),
    Reactor(ReactorServer),
}

impl Server {
    fn start(kind: &str, cache: pscache::Cache) -> Server {
        match kind {
            "blocking" => Server::Blocking(RpcServer::bind(cache, "127.0.0.1:0").unwrap()),
            _ => Server::Reactor(ReactorServer::bind(cache, "127.0.0.1:0").unwrap()),
        }
    }

    fn addr(&self) -> std::net::SocketAddr {
        match self {
            Server::Blocking(s) => s.local_addr(),
            Server::Reactor(s) => s.local_addr(),
        }
    }

    fn shutdown(self) {
        match self {
            Server::Blocking(s) => s.shutdown(),
            Server::Reactor(s) => s.shutdown(),
        }
    }
}

/// Reduce a reply to comparable bytes (correlation ids are client-side
/// counters, not semantics, so they are normalised to zero).
fn reply_bytes(outcome: Result<CacheReply, psrpc::Error>) -> Vec<u8> {
    let reply = match outcome {
        Ok(reply) => reply,
        Err(psrpc::Error::Remote { message }) => CacheReply::Error { message },
        Err(other) => panic!("transport failure during a differential run: {other}"),
    };
    ServerMessage::Reply { seq: 0, reply }.encode()
}

/// Translate one script op into (request, is a tokened mutation).
fn op_request(op: &(usize, i64)) -> (Request, bool) {
    let (kind, v) = *op;
    match kind {
        // Tokened mutations: the paths the dedup table protects.
        0 => (
            Request::Insert {
                table: "T".into(),
                values: vec![Scalar::Int(v)],
                upsert: false,
            },
            true,
        ),
        1 => (
            Request::InsertBatch {
                table: "T".into(),
                rows: (0..3).map(|i| vec![Scalar::Int(v + i)]).collect(),
                upsert: false,
            },
            true,
        ),
        2 => (
            Request::Execute {
                command: format!("insert into T values ({v})"),
            },
            true,
        ),
        3 => (
            Request::Insert {
                table: "P".into(),
                values: vec![
                    Scalar::from(format!("k{}", v.rem_euclid(8))),
                    Scalar::Int(v),
                ],
                upsert: true,
            },
            true,
        ),
        // Reads and errors: never tokened, issued once in both runs.
        4 => (
            Request::Execute {
                command: "select * from T".into(),
            },
            false,
        ),
        5 => (
            Request::Execute {
                command: "select * from P".into(),
            },
            false,
        ),
        _ => (
            Request::Execute {
                command: "select * from Missing".into(),
            },
            false,
        ),
    }
}

/// Run one script; with `retry` every tokened mutation is issued twice
/// with the same token and the duplicate reply must match the original
/// byte for byte. Returns the comparable observation: first-issue
/// replies in order, plus the final contents of both tables.
fn run_script(kind: &str, retry: bool, ops: &[(usize, i64)]) -> (Vec<Vec<u8>>, Vec<u8>, Vec<u8>) {
    let cache = CacheBuilder::new().manual_clock().build();
    cache.execute("create table T (v integer)").unwrap();
    cache
        .execute("create persistenttable P (k varchar(8) primary key, v integer)")
        .unwrap();
    let server = Server::start(kind, cache.clone());
    let client = CacheClient::connect(server.addr()).unwrap();

    let mut replies = Vec::new();
    for op in ops {
        cache.manual_clock().unwrap().advance(1);
        let (request, tokened) = op_request(op);
        if tokened {
            let token = Some(client.next_token());
            let first = reply_bytes(
                client
                    .begin_request_with_token(request.clone(), token)
                    .unwrap()
                    .wait(),
            );
            if retry {
                // A re-APPLY would add a second row (or flip an
                // upsert's `replaced` flag), so the byte-equal reply
                // here plus the final-state comparison against the
                // no-retry oracle together prove the outcome was
                // replayed from the token table, not re-executed.
                let dup = reply_bytes(
                    client
                        .begin_request_with_token(request, token)
                        .unwrap()
                        .wait(),
                );
                assert_eq!(first, dup, "duplicate token produced a different reply");
            }
            replies.push(first);
        } else {
            replies.push(reply_bytes(client.begin_request(request).unwrap().wait()));
        }
    }

    let final_t = reply_bytes(client.begin_execute("select * from T").unwrap().wait());
    let final_p = reply_bytes(client.begin_execute("select * from P").unwrap().wait());
    server.shutdown();
    (replies, final_t, final_p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Retrying every tokened mutation is byte-equivalent to never
    /// retrying, on both transports: same reply stream, same final
    /// state. (The reactor's retry run is additionally compared against
    /// the blocking oracle, so the dedup paths of the two transports
    /// cannot drift apart.)
    #[test]
    fn retried_tokened_scripts_match_the_no_retry_oracle(
        ops in proptest::collection::vec((0usize..7, -50i64..50), 1..30),
    ) {
        let oracle = run_script("reactor", false, &ops);
        let retried = run_script("reactor", true, &ops);
        prop_assert_eq!(&oracle, &retried, "reactor dedup diverged for ops {:?}", &ops);
        let blocking = run_script("blocking", true, &ops);
        prop_assert_eq!(&oracle, &blocking, "blocking dedup diverged for ops {:?}", &ops);
    }
}

/// The token table is FIFO-bounded per client: a client that issues far
/// more mutations than the configured history keeps only the most
/// recent `token_history` outcomes, and the bound holds *during* the
/// load, not just after it.
#[test]
fn token_table_never_exceeds_its_configured_bound() {
    let cache = CacheBuilder::new().token_history(16).build();
    cache.execute("create table T (v integer)").unwrap();
    let server = ReactorServer::bind(cache.clone(), "127.0.0.1:0").unwrap();
    let client = CacheClient::connect(server.local_addr()).unwrap();

    for i in 0..500 {
        client.insert("T", vec![Scalar::Int(i)]).unwrap();
        assert!(
            cache.token_count() <= 16,
            "token table exceeded its bound at insert {i}: {}",
            cache.token_count()
        );
    }
    assert_eq!(cache.table_len("T").unwrap(), 500);

    // A retry of a long-evicted token no longer dedups — but with the
    // original reply long since delivered, that is only reachable by a
    // buggy client; the bound trades unbounded memory for exactly-once
    // over the *recent* window the reconnect path actually replays.
    let stale = (client.client_id(), 1);
    let outcome = client
        .begin_request_with_token(
            Request::Insert {
                table: "T".into(),
                values: vec![Scalar::Int(-1)],
                upsert: false,
            },
            Some(stale),
        )
        .unwrap()
        .wait();
    assert!(
        outcome.is_ok(),
        "evicted token should re-execute, not error"
    );
    assert_eq!(cache.table_len("T").unwrap(), 501);

    server.shutdown();
}

/// Each client gets its own history budget: one chatty client cannot
/// evict another client's recent tokens.
#[test]
fn token_budgets_are_per_client() {
    let cache = CacheBuilder::new().token_history(8).build();
    cache.execute("create table T (v integer)").unwrap();
    let server = ReactorServer::bind(cache.clone(), "127.0.0.1:0").unwrap();
    let quiet = CacheClient::connect(server.local_addr()).unwrap();
    let chatty = CacheClient::connect(server.local_addr()).unwrap();

    // The quiet client records one tokened outcome...
    let token = quiet.next_token();
    let original = reply_bytes(
        quiet
            .begin_request_with_token(
                Request::Insert {
                    table: "T".into(),
                    values: vec![Scalar::Int(7)],
                    upsert: false,
                },
                Some(token),
            )
            .unwrap()
            .wait(),
    );

    // ...then the chatty client floods far past the shared bound.
    for i in 0..100 {
        chatty.insert("T", vec![Scalar::Int(i)]).unwrap();
    }
    assert!(cache.token_count() <= 2 * 8, "per-client bound violated");

    // The quiet client's token must still dedup: its retry replays the
    // original outcome instead of inserting a second row.
    let replayed = reply_bytes(
        quiet
            .begin_request_with_token(
                Request::Insert {
                    table: "T".into(),
                    values: vec![Scalar::Int(7)],
                    upsert: false,
                },
                Some(token),
            )
            .unwrap()
            .wait(),
    );
    assert_eq!(
        original, replayed,
        "flooding neighbour evicted a live token"
    );
    assert_eq!(cache.table_len("T").unwrap(), 101);

    server.shutdown();
}

/// Crash-recovery keeps the dedup table: a token recorded before an
/// unclean shutdown still replays its original outcome after the WAL is
/// replayed into a fresh cache.
#[test]
fn token_dedup_survives_crash_recovery() {
    // Note the persistent table: ephemeral stream rows are not logged
    // (the same contract crash recovery and replication already have),
    // so only durable mutations carry their token into the WAL.
    let insert = Request::Insert {
        table: "P".into(),
        values: vec![Scalar::from("a"), Scalar::Int(42)],
        upsert: false,
    };
    let dir = tempdir();
    let token;
    let original;
    {
        let cache = CacheBuilder::new().durability(&dir).build();
        cache
            .execute("create persistenttable P (k varchar(8) primary key, v integer)")
            .unwrap();
        let server = ReactorServer::bind(cache.clone(), "127.0.0.1:0").unwrap();
        let client = CacheClient::connect(server.local_addr()).unwrap();
        token = client.next_token();
        original = reply_bytes(
            client
                .begin_request_with_token(insert.clone(), Some(token))
                .unwrap()
                .wait(),
        );
        server.shutdown();
        // Drop without checkpoint: recovery must come from the WAL.
    }
    let cache = CacheBuilder::new().durability(&dir).build();
    assert_eq!(cache.table_len("P").unwrap(), 1);
    let server = ReactorServer::bind(cache.clone(), "127.0.0.1:0").unwrap();
    let client = CacheClient::connect(server.local_addr()).unwrap();
    let replayed = reply_bytes(
        client
            .begin_request_with_token(insert, Some(token))
            .unwrap()
            .wait(),
    );
    assert_eq!(original, replayed, "recovery lost the token outcome");
    assert_eq!(
        cache.table_len("P").unwrap(),
        1,
        "recovery re-applied a deduped insert"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

fn tempdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pscache-protect-eq-{}-{:?}",
        std::process::id(),
        std::time::Instant::now()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}
