//! Transports: how framed messages move between an application and the
//! cache.
//!
//! Two transports are provided:
//!
//! * **TCP** — applications are separate processes, as in the paper's
//!   deployments; fragmentation happens on the byte stream.
//! * **In-process loopback** — both ends live in the same process, used for
//!   deterministic tests and benchmarks. Messages are still fragmented and
//!   reassembled so the 1024-byte behaviour of Fig. 13 is preserved.

use std::io::{BufReader, BufWriter};
use std::net::TcpStream;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::error::{Error, Result};
use crate::framing::{self, fragment};

/// The sending half of a duplex message transport.
pub trait SendHalf: Send {
    /// Send one logical message (fragmented as needed).
    ///
    /// # Errors
    ///
    /// Returns an error when the peer is gone or the transport fails.
    fn send(&mut self, message: &[u8]) -> Result<()>;
}

/// One idle-aware receive outcome; see [`RecvHalf::recv_idle`].
#[derive(Debug)]
pub enum RecvEvent {
    /// A complete logical message.
    Message(Vec<u8>),
    /// Nothing arrived within the transport's polling interval; the
    /// stream is intact. Lets a draining server check its shutdown flag
    /// between requests.
    Idle,
    /// The peer closed the connection cleanly.
    Closed,
}

/// The receiving half of a duplex message transport.
pub trait RecvHalf: Send {
    /// Receive one logical message; `Ok(None)` means the peer closed the
    /// connection cleanly.
    ///
    /// # Errors
    ///
    /// Returns an error on transport failures or protocol violations.
    fn recv(&mut self) -> Result<Option<Vec<u8>>>;

    /// Receive one logical message, surfacing inter-message timeouts as
    /// [`RecvEvent::Idle`] instead of blocking forever. The default
    /// simply blocks (transports without timeouts never go idle).
    ///
    /// # Errors
    ///
    /// See [`RecvHalf::recv`].
    fn recv_idle(&mut self) -> Result<RecvEvent> {
        Ok(match self.recv()? {
            Some(message) => RecvEvent::Message(message),
            None => RecvEvent::Closed,
        })
    }
}

/// TCP sending half (buffered).
#[derive(Debug)]
pub struct TcpSendHalf {
    writer: BufWriter<TcpStream>,
}

/// TCP receiving half (buffered).
#[derive(Debug)]
pub struct TcpRecvHalf {
    reader: BufReader<TcpStream>,
}

/// Split a connected [`TcpStream`] into framed halves.
///
/// # Errors
///
/// Returns an I/O error if the stream cannot be cloned.
pub fn tcp_split(stream: TcpStream) -> Result<(TcpSendHalf, TcpRecvHalf)> {
    stream.set_nodelay(true).ok();
    let read_stream = stream.try_clone()?;
    Ok((
        TcpSendHalf {
            writer: BufWriter::new(stream),
        },
        TcpRecvHalf {
            reader: BufReader::new(read_stream),
        },
    ))
}

impl SendHalf for TcpSendHalf {
    fn send(&mut self, message: &[u8]) -> Result<()> {
        framing::write_message(&mut self.writer, message)
    }
}

impl Drop for TcpSendHalf {
    fn drop(&mut self) {
        // The receive half holds a duplicated file descriptor for the same
        // socket, so merely closing this one would not signal end-of-stream
        // to the peer; an explicit write-side shutdown does.
        use std::io::Write as _;
        let _ = self.writer.flush();
        let _ = self.writer.get_ref().shutdown(std::net::Shutdown::Write);
    }
}

impl RecvHalf for TcpRecvHalf {
    fn recv(&mut self) -> Result<Option<Vec<u8>>> {
        framing::read_message(&mut self.reader)
    }

    fn recv_idle(&mut self) -> Result<RecvEvent> {
        // Goes idle only when the socket has a read timeout configured
        // (the server sets one on accepted connections).
        Ok(match framing::read_message_or_idle(&mut self.reader)? {
            framing::ReadEvent::Message(m) => RecvEvent::Message(m),
            framing::ReadEvent::Idle => RecvEvent::Idle,
            framing::ReadEvent::Closed => RecvEvent::Closed,
        })
    }
}

/// In-process sending half: fragments are individual channel messages.
#[derive(Debug, Clone)]
pub struct InprocSendHalf {
    tx: Sender<Vec<u8>>,
}

/// In-process receiving half.
#[derive(Debug)]
pub struct InprocRecvHalf {
    rx: Receiver<Vec<u8>>,
    pending: Vec<u8>,
}

/// One side of an in-process duplex connection.
pub type InprocEndpoint = (InprocSendHalf, InprocRecvHalf);

/// Create a connected pair of in-process endpoints (client side, server
/// side).
pub fn inproc_pair() -> (InprocEndpoint, InprocEndpoint) {
    let (a_tx, a_rx) = unbounded();
    let (b_tx, b_rx) = unbounded();
    (
        (
            InprocSendHalf { tx: a_tx },
            InprocRecvHalf {
                rx: b_rx,
                pending: Vec::new(),
            },
        ),
        (
            InprocSendHalf { tx: b_tx },
            InprocRecvHalf {
                rx: a_rx,
                pending: Vec::new(),
            },
        ),
    )
}

impl SendHalf for InprocSendHalf {
    fn send(&mut self, message: &[u8]) -> Result<()> {
        for frag in fragment(message) {
            self.tx.send(frag).map_err(|_| Error::Disconnected)?;
        }
        Ok(())
    }
}

impl InprocRecvHalf {
    /// Shared body of `recv`/`recv_idle`: `idle_poll` bounds the wait
    /// for the *first* fragment of a message; mid-message fragments are
    /// always waited for (an in-process sender cannot stall
    /// mid-message without having vanished).
    fn recv_inner(&mut self, idle_poll: Option<std::time::Duration>) -> Result<RecvEvent> {
        self.pending.clear();
        loop {
            let frag = match (idle_poll, self.pending.is_empty()) {
                (Some(poll), true) => match self.rx.recv_timeout(poll) {
                    Ok(f) => f,
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                        return Ok(RecvEvent::Idle)
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                        return Ok(RecvEvent::Closed)
                    }
                },
                _ => match self.rx.recv() {
                    Ok(f) => f,
                    Err(_) => {
                        return if self.pending.is_empty() {
                            Ok(RecvEvent::Closed)
                        } else {
                            Err(Error::protocol("peer vanished mid-message"))
                        }
                    }
                },
            };
            if frag.len() < crate::framing::FRAGMENT_HEADER {
                return Err(Error::protocol("runt fragment"));
            }
            let len = u16::from_le_bytes([frag[0], frag[1]]) as usize;
            let last = frag[2] != 0;
            if frag.len() != crate::framing::FRAGMENT_HEADER + len {
                return Err(Error::protocol("fragment length mismatch"));
            }
            self.pending
                .extend_from_slice(&frag[crate::framing::FRAGMENT_HEADER..]);
            if last {
                return Ok(RecvEvent::Message(std::mem::take(&mut self.pending)));
            }
        }
    }
}

impl RecvHalf for InprocRecvHalf {
    fn recv(&mut self) -> Result<Option<Vec<u8>>> {
        Ok(match self.recv_inner(None)? {
            RecvEvent::Message(m) => Some(m),
            RecvEvent::Closed => None,
            RecvEvent::Idle => unreachable!("recv_inner(None) never goes idle"),
        })
    }

    fn recv_idle(&mut self) -> Result<RecvEvent> {
        self.recv_inner(Some(std::time::Duration::from_millis(100)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn inproc_round_trip_small_and_large() {
        let ((mut client_tx, mut client_rx), (mut server_tx, mut server_rx)) = inproc_pair();
        client_tx.send(b"hello").unwrap();
        assert_eq!(server_rx.recv().unwrap().unwrap(), b"hello");

        let big: Vec<u8> = (0..10_000u32).map(|i| (i % 256) as u8).collect();
        server_tx.send(&big).unwrap();
        assert_eq!(client_rx.recv().unwrap().unwrap(), big);
    }

    #[test]
    fn inproc_clean_close_yields_none() {
        let ((client_tx, _client_rx), (_server_tx, mut server_rx)) = inproc_pair();
        drop(client_tx);
        assert!(server_rx.recv().unwrap().is_none());
    }

    #[test]
    fn tcp_round_trip_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let (mut tx, mut rx) = tcp_split(stream).unwrap();
            let msg = rx.recv().unwrap().unwrap();
            tx.send(&msg).unwrap(); // echo
            let big = rx.recv().unwrap().unwrap();
            tx.send(&big).unwrap();
        });

        let stream = TcpStream::connect(addr).unwrap();
        let (mut tx, mut rx) = tcp_split(stream).unwrap();
        tx.send(b"ping").unwrap();
        assert_eq!(rx.recv().unwrap().unwrap(), b"ping");
        let big = vec![42u8; 5000];
        tx.send(&big).unwrap();
        assert_eq!(rx.recv().unwrap().unwrap(), big);
        server.join().unwrap();
    }
}
