//! Run-time values manipulated by GAPL automata.
//!
//! The basic data types follow Table 1 of the paper (`int`, `real`,
//! `tstamp`, `bool`, `string`); the aggregate and supporting data types
//! follow Table 2 (`sequence`, `map`, `window`, `identifier`, `iterator`).
//!
//! Aggregate values are reference types: assigning a map to another local
//! variable aliases the same underlying container, exactly like the C
//! implementation described in the paper. Aggregates therefore use
//! [`Rc<RefCell<...>>`] internally; a [`crate::vm::Vm`] (and all its values)
//! lives on the single executor-pool worker that owns its automaton, so no
//! cross-thread sharing of values ever happens — tuples, not values, are
//! what crosses threads.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::event::{Scalar, Timestamp, Tuple};

/// Declared type of a GAPL local variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeclType {
    /// 64-bit integer.
    Int,
    /// Double-precision floating point.
    Real,
    /// Nanosecond timestamp.
    Tstamp,
    /// Boolean.
    Bool,
    /// UTF-8 string.
    String,
    /// Key used in maps.
    Identifier,
    /// Ordered set of heterogeneous values.
    Sequence,
    /// Identifier-keyed dictionary.
    Map,
    /// Row- or time-constrained collection.
    Window,
    /// Iterator over a map's keys or a window's values.
    Iterator,
}

impl DeclType {
    /// The keyword used in GAPL source for this type, if any.
    pub fn keyword(self) -> &'static str {
        match self {
            DeclType::Int => "int",
            DeclType::Real => "real",
            DeclType::Tstamp => "tstamp",
            DeclType::Bool => "bool",
            DeclType::String => "string",
            DeclType::Identifier => "identifier",
            DeclType::Sequence => "sequence",
            DeclType::Map => "map",
            DeclType::Window => "window",
            DeclType::Iterator => "iterator",
        }
    }

    /// Parse a type keyword.
    pub fn from_keyword(kw: &str) -> Option<DeclType> {
        Some(match kw {
            "int" => DeclType::Int,
            "real" => DeclType::Real,
            "tstamp" => DeclType::Tstamp,
            "bool" => DeclType::Bool,
            "string" => DeclType::String,
            "identifier" => DeclType::Identifier,
            "sequence" => DeclType::Sequence,
            "map" => DeclType::Map,
            "window" => DeclType::Window,
            "iterator" => DeclType::Iterator,
            _ => return None,
        })
    }

    /// The default (zero) value of a variable of this type.
    pub fn default_value(self) -> Value {
        match self {
            DeclType::Int => Value::Int(0),
            DeclType::Real => Value::Real(0.0),
            DeclType::Tstamp => Value::Tstamp(0),
            DeclType::Bool => Value::Bool(false),
            DeclType::String => Value::Str(Arc::from("")),
            DeclType::Identifier => Value::Identifier(Arc::from("")),
            DeclType::Sequence => Value::Sequence(Rc::new(RefCell::new(Vec::new()))),
            DeclType::Map => Value::Map(Rc::new(RefCell::new(MapData::new(DeclType::Int)))),
            DeclType::Window => {
                Value::Window(Rc::new(RefCell::new(WindowData::rows(DeclType::Int, 0))))
            }
            DeclType::Iterator => Value::Iterator(Rc::new(RefCell::new(IteratorData::empty()))),
        }
    }
}

impl fmt::Display for DeclType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// The constraint of a [`WindowData`]: either a maximum number of rows or a
/// maximum time span in seconds, per Table 2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowConstraint {
    /// Keep at most this many items (oldest evicted first).
    Rows(usize),
    /// Keep only items within this many seconds of the newest item.
    Secs(u64),
}

/// The contents of a `window` aggregate.
#[derive(Debug, Clone)]
pub struct WindowData {
    /// Element type the window was constructed with.
    pub element_type: DeclType,
    /// Row-count or time-interval constraint.
    pub constraint: WindowConstraint,
    items: VecDeque<(Timestamp, Value)>,
}

impl WindowData {
    /// A row-constrained window holding at most `n` items.
    pub fn rows(element_type: DeclType, n: usize) -> Self {
        WindowData {
            element_type,
            constraint: WindowConstraint::Rows(n),
            items: VecDeque::new(),
        }
    }

    /// A time-constrained window holding items no older than `secs` seconds
    /// relative to the most recently appended item.
    pub fn secs(element_type: DeclType, secs: u64) -> Self {
        WindowData {
            element_type,
            constraint: WindowConstraint::Secs(secs),
            items: VecDeque::new(),
        }
    }

    /// Append an item with the given timestamp, evicting per the constraint.
    pub fn append(&mut self, at: Timestamp, value: Value) {
        self.items.push_back((at, value));
        self.evict(at);
    }

    fn evict(&mut self, now: Timestamp) {
        match self.constraint {
            WindowConstraint::Rows(n) => {
                while self.items.len() > n.max(1) {
                    self.items.pop_front();
                }
            }
            WindowConstraint::Secs(secs) => {
                let horizon = now.saturating_sub(secs.saturating_mul(1_000_000_000));
                while let Some((t, _)) = self.items.front() {
                    if *t < horizon {
                        self.items.pop_front();
                    } else {
                        break;
                    }
                }
            }
        }
    }

    /// Number of items currently held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the window holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate over `(timestamp, value)` pairs, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &(Timestamp, Value)> {
        self.items.iter()
    }

    /// Remove and drop all items.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Snapshot of the values, oldest first.
    pub fn values(&self) -> Vec<Value> {
        self.items.iter().map(|(_, v)| v.clone()).collect()
    }
}

/// The contents of a `map` aggregate: identifier-keyed, deterministic
/// (lexicographic) iteration order.
#[derive(Debug, Clone)]
pub struct MapData {
    /// Element type the map was constructed with (`Map(int)` etc.).
    pub value_type: DeclType,
    entries: BTreeMap<String, Value>,
}

impl MapData {
    /// Create an empty map bound to `value_type`.
    pub fn new(value_type: DeclType) -> Self {
        MapData {
            value_type,
            entries: BTreeMap::new(),
        }
    }

    /// Insert or replace the entry for `key`, returning the prior value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.entries.insert(key, value)
    }

    /// Value bound to `key`, if any.
    pub fn lookup(&self, key: &str) -> Option<Value> {
        self.entries.get(key).cloned()
    }

    /// True if `key` is present.
    pub fn has_entry(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Remove the entry for `key`, returning it if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.entries.remove(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Snapshot of the keys in iteration order.
    pub fn keys(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Iterate over `(key, value)` pairs in iteration order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter()
    }
}

/// The state of an `iterator` value.
///
/// Iterators snapshot the keys of a map (or the values of a window) at
/// construction time, so mutating the underlying aggregate while iterating —
/// as the "frequent" algorithm of Fig. 14 does — is well defined.
#[derive(Debug, Clone)]
pub struct IteratorData {
    items: Vec<Value>,
    next: usize,
}

impl IteratorData {
    /// An exhausted iterator.
    pub fn empty() -> Self {
        IteratorData {
            items: Vec::new(),
            next: 0,
        }
    }

    /// An iterator over a snapshot of items.
    pub fn over(items: Vec<Value>) -> Self {
        IteratorData { items, next: 0 }
    }

    /// Whether another item is available.
    pub fn has_next(&self) -> bool {
        self.next < self.items.len()
    }

    /// Return the next item and advance, or `None` when exhausted.
    pub fn advance(&mut self) -> Option<Value> {
        let v = self.items.get(self.next).cloned();
        if v.is_some() {
            self.next += 1;
        }
        v
    }

    /// Total number of items in the snapshot.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A run-time GAPL value.
#[derive(Debug, Clone, Default)]
pub enum Value {
    /// Absence of a value (uninitialised aggregate slots, missing lookups).
    #[default]
    Null,
    /// 64-bit integer.
    Int(i64),
    /// Double-precision floating point.
    Real(f64),
    /// Nanosecond timestamp.
    Tstamp(Timestamp),
    /// Boolean.
    Bool(bool),
    /// UTF-8 string, shared by reference count. `Arc` (not `Rc`) so a
    /// string lifted out of a delivered tuple — or stored back into one —
    /// is shared with the cache rather than copied.
    Str(Arc<str>),
    /// Map key, same shared representation as [`Value::Str`].
    Identifier(Arc<str>),
    /// Ordered, heterogeneous sequence.
    Sequence(Rc<RefCell<Vec<Value>>>),
    /// Identifier-keyed dictionary.
    Map(Rc<RefCell<MapData>>),
    /// Row- or time-constrained collection.
    Window(Rc<RefCell<WindowData>>),
    /// Iterator over a map or window snapshot.
    Iterator(Rc<RefCell<IteratorData>>),
    /// The most recent event delivered on a subscribed topic.
    Event(Rc<Tuple>),
    /// A handle onto a persistent table bound with `associate`; the payload
    /// is the association index within the automaton.
    Assoc(usize),
}

impl Value {
    /// A human-readable name of the value's run-time type.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Int(_) => "int",
            Value::Real(_) => "real",
            Value::Tstamp(_) => "tstamp",
            Value::Bool(_) => "bool",
            Value::Str(_) => "string",
            Value::Identifier(_) => "identifier",
            Value::Sequence(_) => "sequence",
            Value::Map(_) => "map",
            Value::Window(_) => "window",
            Value::Iterator(_) => "iterator",
            Value::Event(_) => "event",
            Value::Assoc(_) => "association",
        }
    }

    /// Construct a string value.
    pub fn string(s: impl Into<Arc<str>>) -> Value {
        Value::Str(s.into())
    }

    /// Construct an identifier value.
    pub fn identifier(s: impl Into<Arc<str>>) -> Value {
        Value::Identifier(s.into())
    }

    /// Construct a sequence value from items.
    pub fn sequence(items: Vec<Value>) -> Value {
        Value::Sequence(Rc::new(RefCell::new(items)))
    }

    /// Truthiness used by `if`/`while` conditions.
    ///
    /// # Errors
    ///
    /// Returns a runtime error for values with no boolean interpretation.
    pub fn truthy(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            Value::Int(i) => Ok(*i != 0),
            Value::Real(r) => Ok(*r != 0.0),
            Value::Tstamp(t) => Ok(*t != 0),
            Value::Null => Ok(false),
            other => Err(Error::runtime(format!(
                "cannot use a {} as a condition",
                other.type_name()
            ))),
        }
    }

    /// Numeric view as `f64`, when the value is numeric.
    pub fn as_real(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Real(r) => Some(*r),
            Value::Tstamp(t) => Some(*t as f64),
            Value::Bool(b) => Some(f64::from(u8::from(*b))),
            _ => None,
        }
    }

    /// Numeric view as `i64`, when the value is integral.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Tstamp(t) => Some(*t as i64),
            Value::Bool(b) => Some(i64::from(*b)),
            Value::Real(r) => Some(*r as i64),
            _ => None,
        }
    }

    /// String view (strings and identifiers).
    pub fn as_text(&self) -> Option<String> {
        match self {
            Value::Str(s) | Value::Identifier(s) => Some(s.to_string()),
            _ => None,
        }
    }

    /// Shared string view (strings and identifiers); cloning the result
    /// shares the bytes instead of copying them.
    pub fn as_shared_text(&self) -> Option<&Arc<str>> {
        match self {
            Value::Str(s) | Value::Identifier(s) => Some(s),
            _ => None,
        }
    }

    /// Convert this value to the scalar used in tuples, if possible.
    ///
    /// # Errors
    ///
    /// Aggregates, events and associations cannot be stored inside tuples.
    pub fn to_scalar(&self) -> Result<Scalar> {
        Ok(match self {
            Value::Int(i) => Scalar::Int(*i),
            Value::Real(r) => Scalar::Real(*r),
            Value::Tstamp(t) => Scalar::Tstamp(*t),
            Value::Bool(b) => Scalar::Bool(*b),
            Value::Str(s) | Value::Identifier(s) => Scalar::Str(Arc::clone(s)),
            other => {
                return Err(Error::runtime(format!(
                    "a {} cannot be converted to a tuple attribute",
                    other.type_name()
                )))
            }
        })
    }

    /// Flatten this value into scalars: sequences and windows flatten to
    /// their elements (recursively), scalars to themselves. Used by
    /// `publish()` and `send()`.
    pub fn flatten_scalars(&self, out: &mut Vec<Scalar>) -> Result<()> {
        match self {
            Value::Sequence(seq) => {
                for item in seq.borrow().iter() {
                    item.flatten_scalars(out)?;
                }
                Ok(())
            }
            Value::Window(w) => {
                for (_, item) in w.borrow().iter() {
                    item.flatten_scalars(out)?;
                }
                Ok(())
            }
            Value::Event(t) => {
                out.extend(t.values().iter().cloned());
                Ok(())
            }
            Value::Null => Ok(()),
            other => {
                out.push(other.to_scalar()?);
                Ok(())
            }
        }
    }

    /// Structural equality used by `==` / `!=` in GAPL.
    pub fn gapl_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Str(a) | Value::Identifier(a), Value::Str(b) | Value::Identifier(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (a, b) => match (a.as_real(), b.as_real()) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }

    /// Ordering used by `<`, `<=`, `>`, `>=` in GAPL.
    ///
    /// # Errors
    ///
    /// Returns a runtime error when the two values are not comparable.
    pub fn gapl_cmp(&self, other: &Value) -> Result<std::cmp::Ordering> {
        match (self, other) {
            (Value::Str(a) | Value::Identifier(a), Value::Str(b) | Value::Identifier(b)) => {
                Ok(a.cmp(b))
            }
            (a, b) => match (a.as_real(), b.as_real()) {
                (Some(x), Some(y)) => x
                    .partial_cmp(&y)
                    .ok_or_else(|| Error::runtime("NaN comparison")),
                _ => Err(Error::runtime(format!(
                    "cannot compare {} with {}",
                    a.type_name(),
                    b.type_name()
                ))),
            },
        }
    }
}

impl From<Scalar> for Value {
    fn from(s: Scalar) -> Self {
        match s {
            Scalar::Int(i) => Value::Int(i),
            Scalar::Real(r) => Value::Real(r),
            Scalar::Tstamp(t) => Value::Tstamp(t),
            Scalar::Bool(b) => Value::Bool(b),
            Scalar::Str(s) => Value::Str(s),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Real(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::string(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => {
                if r.fract() == 0.0 && r.is_finite() {
                    write!(f, "{r:.6}")
                } else {
                    write!(f, "{r}")
                }
            }
            Value::Tstamp(t) => write!(f, "{t}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) | Value::Identifier(s) => write!(f, "{s}"),
            Value::Sequence(seq) => {
                write!(f, "[")?;
                for (i, v) in seq.borrow().iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Map(m) => write!(f, "map({} entries)", m.borrow().len()),
            Value::Window(w) => write!(f, "window({} items)", w.borrow().len()),
            Value::Iterator(i) => write!(f, "iterator({} items)", i.borrow().len()),
            Value::Event(t) => write!(f, "{t}"),
            Value::Assoc(ix) => write!(f, "association#{ix}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decl_type_round_trips_keywords() {
        for ty in [
            DeclType::Int,
            DeclType::Real,
            DeclType::Tstamp,
            DeclType::Bool,
            DeclType::String,
            DeclType::Identifier,
            DeclType::Sequence,
            DeclType::Map,
            DeclType::Window,
            DeclType::Iterator,
        ] {
            assert_eq!(DeclType::from_keyword(ty.keyword()), Some(ty));
        }
        assert_eq!(DeclType::from_keyword("void"), None);
    }

    #[test]
    fn window_rows_evicts_oldest() {
        let mut w = WindowData::rows(DeclType::Int, 3);
        for i in 0..5 {
            w.append(i as u64, Value::Int(i));
        }
        assert_eq!(w.len(), 3);
        let vals: Vec<i64> = w.values().iter().map(|v| v.as_int().unwrap()).collect();
        assert_eq!(vals, vec![2, 3, 4]);
    }

    #[test]
    fn window_secs_evicts_by_time() {
        let mut w = WindowData::secs(DeclType::Int, 10);
        w.append(1_000_000_000, Value::Int(1));
        w.append(15_000_000_000, Value::Int(2));
        // At t = 20 s the 10 s horizon is [10 s, 20 s]: the item from 1 s
        // is evicted, the one from 15 s survives.
        w.append(20_000_000_000, Value::Int(3));
        let vals: Vec<i64> = w.values().iter().map(|v| v.as_int().unwrap()).collect();
        assert_eq!(vals, vec![2, 3]);
        w.clear();
        assert!(w.is_empty());
    }

    #[test]
    fn map_basic_operations() {
        let mut m = MapData::new(DeclType::Int);
        assert!(m.is_empty());
        assert!(m.insert("a".into(), Value::Int(1)).is_none());
        assert!(m.insert("a".into(), Value::Int(2)).is_some());
        m.insert("b".into(), Value::Int(3));
        assert!(m.has_entry("a"));
        assert!(!m.has_entry("c"));
        assert_eq!(m.lookup("b").unwrap().as_int(), Some(3));
        assert_eq!(m.keys(), vec!["a".to_string(), "b".to_string()]);
        assert!(m.remove("a").is_some());
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn iterator_snapshot_semantics() {
        let mut it = IteratorData::over(vec![Value::Int(1), Value::Int(2)]);
        assert!(it.has_next());
        assert_eq!(it.advance().unwrap().as_int(), Some(1));
        assert_eq!(it.advance().unwrap().as_int(), Some(2));
        assert!(!it.has_next());
        assert!(it.advance().is_none());
        assert!(IteratorData::empty().is_empty());
    }

    #[test]
    fn truthiness_and_comparisons() {
        assert!(Value::Int(3).truthy().unwrap());
        assert!(!Value::Int(0).truthy().unwrap());
        assert!(!Value::Null.truthy().unwrap());
        assert!(Value::sequence(vec![]).truthy().is_err());
        assert!(Value::Int(1).gapl_eq(&Value::Real(1.0)));
        assert!(Value::string("x").gapl_eq(&Value::identifier("x")));
        assert!(!Value::string("x").gapl_eq(&Value::Int(1)));
        assert_eq!(
            Value::Int(1).gapl_cmp(&Value::Int(2)).unwrap(),
            std::cmp::Ordering::Less
        );
        assert!(Value::string("a").gapl_cmp(&Value::Int(1)).is_err());
    }

    #[test]
    fn flatten_scalars_flattens_sequences_recursively() {
        let inner = Value::sequence(vec![Value::Int(2), Value::Int(3)]);
        let outer = Value::sequence(vec![Value::string("a"), inner]);
        let mut out = Vec::new();
        outer.flatten_scalars(&mut out).unwrap();
        assert_eq!(
            out,
            vec![Scalar::Str("a".into()), Scalar::Int(2), Scalar::Int(3)]
        );
    }

    #[test]
    fn to_scalar_rejects_aggregates() {
        assert!(Value::sequence(vec![]).to_scalar().is_err());
        assert_eq!(Value::Int(1).to_scalar().unwrap(), Scalar::Int(1));
    }

    #[test]
    fn display_is_never_empty() {
        for v in [
            Value::Null,
            Value::Int(0),
            Value::Real(1.5),
            Value::Bool(false),
            Value::string(""),
            Value::sequence(vec![]),
            Value::Map(Rc::new(RefCell::new(MapData::new(DeclType::Int)))),
        ] {
            assert!(!format!("{v}").is_empty() || matches!(v, Value::Str(_)));
            assert!(!format!("{v:?}").is_empty());
        }
    }
}
