//! Network flow records, the raw event stream of the home-network scenarios
//! (§4.3) and of the performance-at-scale experiments (§6.2).

use gapl::event::{AttrType, Scalar, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One network flow record, matching the `Flows` table of Fig. 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Flow {
    /// IP protocol number (6 = TCP, 17 = UDP).
    pub protocol: i64,
    /// Source IP address.
    pub srcip: String,
    /// Source transport port.
    pub sport: i64,
    /// Destination IP address.
    pub dstip: String,
    /// Destination transport port.
    pub dport: i64,
    /// Number of packets in the flow.
    pub npkts: i64,
    /// Number of bytes in the flow.
    pub nbytes: i64,
}

impl Flow {
    /// The flow as scalar values, in [`FlowGenerator::schema`] order.
    pub fn to_scalars(&self) -> Vec<Scalar> {
        vec![
            Scalar::Int(self.protocol),
            Scalar::Str(self.srcip.as_str().into()),
            Scalar::Int(self.sport),
            Scalar::Str(self.dstip.as_str().into()),
            Scalar::Int(self.dport),
            Scalar::Int(self.npkts),
            Scalar::Int(self.nbytes),
        ]
    }
}

/// Configuration for the flow generator.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Number of distinct hosts on the home network (destinations of
    /// down-loads).
    pub local_hosts: usize,
    /// Number of distinct remote servers.
    pub remote_hosts: usize,
    /// Largest flow size in bytes.
    pub max_flow_bytes: i64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            local_hosts: 8,
            remote_hosts: 64,
            max_flow_bytes: 1_500_000,
            seed: 42,
        }
    }
}

/// Deterministic generator of [`Flow`] records.
#[derive(Debug)]
pub struct FlowGenerator {
    config: FlowConfig,
    rng: StdRng,
}

impl FlowGenerator {
    /// Create a generator from a configuration.
    pub fn new(config: FlowConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        FlowGenerator { config, rng }
    }

    /// The schema of the `Flows` table (Fig. 3).
    pub fn schema() -> Schema {
        Schema::new(
            "Flows",
            vec![
                ("protocol", AttrType::Int),
                ("srcip", AttrType::Str),
                ("sport", AttrType::Int),
                ("dstip", AttrType::Str),
                ("dport", AttrType::Int),
                ("npkts", AttrType::Int),
                ("nbytes", AttrType::Int),
            ],
        )
        .expect("the Flows schema is statically valid")
    }

    /// The `create table` statement for the `Flows` table.
    pub fn create_table_sql() -> &'static str {
        "create table Flows (protocol integer, srcip varchar(16), sport integer, \
         dstip varchar(16), dport integer, npkts integer, nbytes integer)"
    }

    /// The IP address of local host `i` (destination of down-loads).
    pub fn local_ip(i: usize) -> String {
        format!("192.168.1.{}", 10 + i)
    }

    /// Generate the next flow.
    pub fn next_flow(&mut self) -> Flow {
        let local = Self::local_ip(self.rng.gen_range(0..self.config.local_hosts));
        let remote = format!(
            "203.0.{}.{}",
            self.rng.gen_range(0..self.config.remote_hosts),
            self.rng.gen_range(1..255)
        );
        let nbytes = self.rng.gen_range(64..=self.config.max_flow_bytes);
        Flow {
            protocol: if self.rng.gen_bool(0.8) { 6 } else { 17 },
            srcip: remote,
            sport: self.rng.gen_range(1024..65535),
            dstip: local,
            dport: *[80, 443, 8080, 53]
                .get(self.rng.gen_range(0usize..4))
                .expect("index in range"),
            npkts: (nbytes / 1400).max(1),
            nbytes,
        }
    }

    /// Generate `n` flows.
    pub fn take(&mut self, n: usize) -> Vec<Flow> {
        (0..n).map(|_| self.next_flow()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flows_conform_to_the_schema() {
        let schema = FlowGenerator::schema();
        let mut generator = FlowGenerator::new(FlowConfig::default());
        for flow in generator.take(100) {
            assert!(schema.check(&flow.to_scalars()).is_ok());
            assert!(flow.nbytes >= 64);
            assert!(flow.npkts >= 1);
            assert!(flow.dstip.starts_with("192.168.1."));
        }
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let mut a = FlowGenerator::new(FlowConfig::default());
        let mut b = FlowGenerator::new(FlowConfig::default());
        assert_eq!(a.take(50), b.take(50));
        let mut c = FlowGenerator::new(FlowConfig {
            seed: 7,
            ..FlowConfig::default()
        });
        assert_ne!(a.take(50), c.take(50));
    }

    #[test]
    fn local_addresses_stay_within_the_configured_pool() {
        let config = FlowConfig {
            local_hosts: 2,
            ..FlowConfig::default()
        };
        let mut generator = FlowGenerator::new(config);
        for flow in generator.take(200) {
            assert!(
                flow.dstip == FlowGenerator::local_ip(0)
                    || flow.dstip == FlowGenerator::local_ip(1)
            );
        }
    }
}
