//! Criterion companion to Fig. 18: the three stock queries on the
//! Cayuga-style NFA engine vs the GAPL automata, on a reduced dataset so
//! each sample stays in Criterion's comfortable range.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cayuga::queries::{q1_select_publish, q2_double_top, q3_increasing_runs};
use cep_bench::fig18;
use cep_workloads::StockConfig;

fn bench_stock_queries(c: &mut Criterion) {
    let events = fig18::dataset(StockConfig {
        events: 10_000,
        symbols: 25,
        ..StockConfig::default()
    });

    let mut group = c.benchmark_group("fig18_stock_queries");
    group.sample_size(10);

    type Case = (&'static str, Box<dyn Fn() -> cayuga::Nfa>, &'static str);
    let cases: Vec<Case> = vec![
        ("Q1", Box::new(q1_select_publish), fig18::Q1_GAPL),
        ("Q2", Box::new(|| q2_double_top(0.02)), fig18::Q2_GAPL),
        ("Q3", Box::new(|| q3_increasing_runs(3)), fig18::Q3_GAPL),
    ];

    for (name, make_nfa, gapl_source) in &cases {
        group.bench_with_input(BenchmarkId::new("cayuga", name), name, |b, _| {
            b.iter(|| fig18::run_cayuga(make_nfa(), &events));
        });
        group.bench_with_input(BenchmarkId::new("cache", name), name, |b, _| {
            b.iter(|| fig18::run_gapl(gapl_source, &events));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stock_queries);
criterion_main!(benches);
