//! A human-readable disassembler for compiled automata.
//!
//! The cache compiles every registered automaton to stack-machine bytecode
//! (§5); this module renders that bytecode for debugging, documentation
//! and the management tooling exposed by
//! `pscache::Cache::automaton_program`.

use std::fmt::Write as _;

use crate::builtins::BuiltinId;
use crate::program::{Const, Instr, LocalKind, Program};

impl Program {
    /// Render the whole program — locals, subscriptions, associations,
    /// constants and both bytecode sequences — as a readable listing.
    ///
    /// # Example
    ///
    /// ```
    /// let p = gapl::compile("subscribe t to Timer; int n; behavior { n = n + 1; }")?;
    /// let listing = p.disassemble();
    /// assert!(listing.contains("behavior:"));
    /// assert!(listing.contains("add"));
    /// # Ok::<(), gapl::Error>(())
    /// ```
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "; automaton: {} local(s), {} constant(s)",
            self.locals().len(),
            self.consts().len()
        );
        for (ix, local) in self.locals().iter().enumerate() {
            let kind = match &local.kind {
                LocalKind::Subscription { topic } => format!("subscription of `{topic}`"),
                LocalKind::Association { index } => {
                    format!("association with `{}`", self.associations()[*index].table)
                }
                LocalKind::Declared(ty) => format!("{ty}"),
            };
            let _ = writeln!(out, ";   local[{ix}] {} : {kind}", local.name);
        }
        for (ix, c) in self.consts().iter().enumerate() {
            let _ = writeln!(out, ";   const[{ix}] = {}", render_const(c));
        }
        let _ = writeln!(out, "initialization:");
        render_code(&mut out, self.init_code(), self);
        let _ = writeln!(out, "behavior:");
        render_code(&mut out, self.behavior_code(), self);
        out
    }
}

fn render_const(c: &Const) -> String {
    match c {
        Const::Int(i) => i.to_string(),
        Const::Real(r) => format!("{r}"),
        Const::Str(s) => format!("{s:?}"),
        Const::Bool(b) => b.to_string(),
    }
}

fn render_code(out: &mut String, code: &[Instr], program: &Program) {
    for (pc, instr) in code.iter().enumerate() {
        let text = render_instr(instr, program);
        let _ = writeln!(out, "  {pc:4}  {text}");
    }
}

fn render_instr(instr: &Instr, program: &Program) -> String {
    match instr {
        Instr::PushConst(ix) => format!(
            "push.const   #{ix} ({})",
            program
                .consts()
                .get(*ix)
                .map(render_const)
                .unwrap_or_else(|| "?".into())
        ),
        Instr::LoadLocal(slot) => format!("load.local   {} ({})", slot, local_name(program, *slot)),
        Instr::StoreLocal(slot) => {
            format!("store.local  {} ({})", slot, local_name(program, *slot))
        }
        Instr::LoadField { slot, name_const } => format!(
            "load.field   {}.{}",
            local_name(program, *slot),
            program
                .consts()
                .get(*name_const)
                .map(render_const)
                .unwrap_or_else(|| "?".into())
        ),
        Instr::Neg => "neg".into(),
        Instr::Not => "not".into(),
        Instr::Add => "add".into(),
        Instr::Sub => "sub".into(),
        Instr::Mul => "mul".into(),
        Instr::Div => "div".into(),
        Instr::Rem => "rem".into(),
        Instr::CmpEq => "cmp.eq".into(),
        Instr::CmpNe => "cmp.ne".into(),
        Instr::CmpLt => "cmp.lt".into(),
        Instr::CmpLe => "cmp.le".into(),
        Instr::CmpGt => "cmp.gt".into(),
        Instr::CmpGe => "cmp.ge".into(),
        Instr::And => "and".into(),
        Instr::Or => "or".into(),
        Instr::Jump(target) => format!("jump         -> {target}"),
        Instr::JumpIfFalse(target) => format!("jump.false   -> {target}"),
        Instr::Pop => "pop".into(),
        Instr::CallBuiltin { builtin, argc } => {
            format!("call         {}/{argc}", builtin_name(*builtin))
        }
        Instr::Halt => "halt".into(),
    }
}

fn builtin_name(b: BuiltinId) -> &'static str {
    b.name()
}

fn local_name(program: &Program, slot: usize) -> &str {
    program
        .locals()
        .get(slot)
        .map(|l| l.name.as_str())
        .unwrap_or("?")
}

#[cfg(test)]
mod tests {
    #[test]
    fn disassembly_mentions_every_structural_element() {
        let p = crate::compile(
            r#"
            subscribe f to Flows;
            associate a with Allowances;
            int n;
            initialization { n = 0; }
            behavior {
                if (hasEntry(a, Identifier(f.srcip)))
                    n += 1;
                else
                    send(n, 'done');
                while (n > 10)
                    n -= 1;
            }
            "#,
        )
        .unwrap();
        let text = p.disassemble();
        for needle in [
            "subscription of `Flows`",
            "association with `Allowances`",
            "initialization:",
            "behavior:",
            "call         hasEntry/2",
            "call         Identifier/1",
            "call         send/2",
            "load.field   f.\"srcip\"",
            "jump.false",
            "jump",
            "halt",
            "cmp.gt",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn every_instruction_renders_distinctly() {
        let p = crate::compile(
            "subscribe t to Timer; int a; bool b; behavior { \
             a = -a + 1 - 2 * 3 / 4 % 5; \
             b = !(a == 1) && (a != 2) || (a < 3) && (a <= 4) && (a > 5) && (a >= 6); }",
        )
        .unwrap();
        let text = p.disassemble();
        for op in [
            "neg", "not", "add", "sub", "mul", "div", "rem", "cmp.eq", "cmp.ne", "cmp.lt",
            "cmp.le", "cmp.gt", "cmp.ge", "and", "or",
        ] {
            assert!(
                text.lines()
                    .any(|l| l.trim().ends_with(op) || l.contains(&format!("  {op}"))),
                "missing `{op}` in:\n{text}"
            );
        }
    }
}
