//! Replication tests: WAL shipping from a primary to follower replicas,
//! read scaling, reconnection, and failover promotion.
//!
//! The centrepiece is a differential proptest in the style of
//! `tests/durability.rs`: random mutation histories run against a
//! replicated pair while the follower is crashed and re-attached at
//! arbitrary stream positions, and the follower must end byte-identical
//! to an op-by-op model of the primary. The satellite tests cover the
//! named scenarios: the 3-node read-scaling topology, bootstrap from a
//! checkpoint instead of log-zero, the staleness watermark, promotion
//! under load, and a follower surviving a primary restart.

use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use gapl::event::Scalar;
use pscache::wal::{count_complete_records, log_path};
use pscache::{Cache, CacheBuilder, Error, Query, ReplRole};

/// A fresh, empty scratch directory under the system temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("pscache-replication-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// `select * from {table}` as `(values, tstamp)` pairs in scan order.
fn dump(cache: &Cache, table: &str) -> Vec<(Vec<Scalar>, u64)> {
    cache
        .select(&Query::new(table))
        .expect("select * succeeds")
        .rows
        .into_iter()
        .map(|row| (row.values, row.tstamp))
        .collect()
}

/// Block until `follower` has applied everything `primary` has
/// committed (with an equal watermark), or panic after `timeout`.
fn converge(primary: &Cache, follower: &Cache, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        let commit = primary.commit_lsn();
        if follower.replica_lsn() >= commit {
            return;
        }
        if Instant::now() >= deadline {
            panic!(
                "follower stuck at lsn {} with primary at {} (stats: {:?})",
                follower.replica_lsn(),
                commit,
                follower.repl_stats()
            );
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn a_follower_mirrors_the_primary_and_is_read_only() {
    let dir = scratch("basic-primary");
    let primary = CacheBuilder::new()
        .durability(&dir)
        .replicate_to("127.0.0.1:0")
        .open()
        .unwrap();
    let addr = primary.repl_addr().expect("listener is bound").to_string();

    primary
        .execute("create persistenttable KV (k varchar(16) primary key, v integer)")
        .unwrap();
    for i in 0..50i64 {
        primary
            .insert(
                "KV",
                vec![Scalar::Str(format!("k{i}").into()), Scalar::Int(i)],
            )
            .unwrap();
    }

    let follower = Cache::follow(&addr).unwrap();
    assert_eq!(follower.repl_role(), ReplRole::Follower);
    assert_eq!(primary.repl_role(), ReplRole::Primary);
    converge(&primary, &follower, Duration::from_secs(10));

    // Byte-identical state: same rows, same scan order, same timestamps.
    assert_eq!(dump(&follower, "KV"), dump(&primary, "KV"));
    assert_eq!(follower.table_names(), primary.table_names());

    // Mutations are rejected on the replica, in every surface form.
    assert!(matches!(
        follower.insert("KV", vec![Scalar::Str("x".into()), Scalar::Int(1)]),
        Err(Error::ReadOnlyReplica { .. })
    ));
    assert!(matches!(
        follower.execute("insert into KV values ('x', 1)"),
        Err(Error::ReadOnlyReplica { .. })
    ));
    assert!(matches!(
        follower.execute("create table T (v integer)"),
        Err(Error::ReadOnlyReplica { .. })
    ));
    assert!(matches!(
        follower.remove("KV", "k0"),
        Err(Error::ReadOnlyReplica { .. })
    ));

    // Reads keep working, and new primary writes keep flowing.
    primary
        .upsert("KV", vec![Scalar::Str("k0".into()), Scalar::Int(999)])
        .unwrap();
    converge(&primary, &follower, Duration::from_secs(10));
    let row = follower.lookup("KV", "k0").unwrap().unwrap();
    assert_eq!(row.values()[1], Scalar::Int(999));

    let stats = primary.repl_stats();
    assert_eq!(stats.followers, 1);
    assert!(stats.frames_shipped > 0);

    follower.shutdown();
    primary.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn three_node_scenario_read_scaling_and_failover() {
    // Primary + 2 followers; inserts on the primary become visible to
    // follower queries in LSN order; killing the primary and promoting
    // a follower loses no acknowledged insert.
    let dir_p = scratch("three-node-primary");
    let dir_f1 = scratch("three-node-follower1");
    let primary = CacheBuilder::new()
        .durability(&dir_p)
        .replicate_to("127.0.0.1:0")
        .open()
        .unwrap();
    let addr = primary.repl_addr().unwrap().to_string();

    // Follower 1 is durable (promotable without loss); follower 2 is a
    // pure in-memory read replica.
    let f1 = CacheBuilder::new()
        .durability(&dir_f1)
        .follow(&addr)
        .open()
        .unwrap();
    let f2 = Cache::follow(&addr).unwrap();

    primary
        .execute("create persistenttable Accounts (id varchar(16) primary key, balance integer)")
        .unwrap();
    primary.execute("create table Ticks (v integer)").unwrap();
    let mut acked = 0i64;
    for i in 0..200i64 {
        primary
            .insert(
                "Accounts",
                vec![Scalar::Str(format!("acct{i:04}").into()), Scalar::Int(i)],
            )
            .unwrap();
        acked += 1;
    }
    // Ephemeral stream rows are not replicated (same contract as crash
    // recovery), but the stream's DDL is.
    primary.insert("Ticks", vec![Scalar::Int(7)]).unwrap();

    converge(&primary, &f1, Duration::from_secs(10));
    converge(&primary, &f2, Duration::from_secs(10));

    // Read scaling: both followers answer the same query locally, in
    // the same (LSN/insertion) order as the primary.
    let on_primary = dump(&primary, "Accounts");
    assert_eq!(on_primary.len(), acked as usize);
    assert_eq!(dump(&f1, "Accounts"), on_primary);
    assert_eq!(dump(&f2, "Accounts"), on_primary);
    assert!(f1.table_names().contains(&"Ticks".to_string()));
    assert_eq!(f1.table_len("Ticks").unwrap(), 0);

    // Kill the primary (drop = shutdown: listener gone, sockets die).
    drop(primary);

    // Promote the durable follower: every acknowledged insert survives.
    f1.promote().unwrap();
    assert_eq!(f1.repl_role(), ReplRole::Primary);
    assert_eq!(dump(&f1, "Accounts"), on_primary);

    // The promoted primary accepts writes again.
    f1.insert(
        "Accounts",
        vec![Scalar::Str("post-failover".into()), Scalar::Int(-1)],
    )
    .unwrap();
    assert_eq!(f1.table_len("Accounts").unwrap(), acked as usize + 1);
    // Its own hub tracked the verbatim-appended stream contiguously, so
    // the promoted commit watermark covers the whole inherited history
    // plus the new write (regression: a skipped-but-unappended frame —
    // e.g. the primary's Timer create — used to wedge this at 0).
    assert!(
        f1.commit_lsn() > acked as u64,
        "promoted commit watermark {} must cover the replicated history",
        f1.commit_lsn()
    );

    // Promoting twice (or a non-follower) is an error.
    assert!(matches!(f1.promote(), Err(Error::Repl { .. })));

    f2.shutdown();
    f1.shutdown();
    let _ = fs::remove_dir_all(&dir_p);
    let _ = fs::remove_dir_all(&dir_f1);
}

#[test]
fn a_late_follower_bootstraps_from_the_checkpoint_not_log_zero() {
    let dir = scratch("bootstrap-snapshot");
    let primary = CacheBuilder::new()
        .durability(&dir)
        .replicate_to("127.0.0.1:0")
        .open()
        .unwrap();
    let addr = primary.repl_addr().unwrap().to_string();
    primary
        .execute("create persistenttable KV (k varchar(16) primary key, v integer)")
        .unwrap();
    for i in 0..100i64 {
        primary
            .upsert(
                "KV",
                vec![Scalar::Str(format!("k{}", i % 25).into()), Scalar::Int(i)],
            )
            .unwrap();
    }
    // The checkpoint truncates the logs: records before it exist only
    // in the snapshot, so a fresh follower *must* bootstrap from it.
    primary.checkpoint().unwrap();
    for i in 0..20i64 {
        primary
            .upsert(
                "KV",
                vec![Scalar::Str(format!("tail{i}").into()), Scalar::Int(i)],
            )
            .unwrap();
    }

    let follower = Cache::follow(&addr).unwrap();
    converge(&primary, &follower, Duration::from_secs(10));
    assert_eq!(dump(&follower, "KV"), dump(&primary, "KV"));
    let stats = follower.repl_stats();
    assert_eq!(
        stats.snapshots_loaded, 1,
        "the follower must have reset from the shipped checkpoint"
    );
    assert_eq!(primary.repl_stats().snapshots_served, 1);

    follower.shutdown();
    primary.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn the_staleness_watermark_is_monotone_and_converges_to_zero() {
    let dir = scratch("staleness");
    let primary = CacheBuilder::new()
        .durability(&dir)
        .replicate_to("127.0.0.1:0")
        .open()
        .unwrap();
    let addr = primary.repl_addr().unwrap().to_string();
    primary
        .execute("create persistenttable KV (k varchar(16) primary key, v integer)")
        .unwrap();
    let follower = Cache::follow(&addr).unwrap();

    let mut last = follower.replica_lsn();
    for i in 0..200i64 {
        primary
            .insert(
                "KV",
                vec![Scalar::Str(format!("k{i}").into()), Scalar::Int(i)],
            )
            .unwrap();
        let now = follower.replica_lsn();
        assert!(now >= last, "replica_lsn must never move backwards");
        // The replica never claims records the primary has not
        // committed: bounded staleness, never negative.
        assert!(now <= primary.commit_lsn());
        last = now;
    }
    converge(&primary, &follower, Duration::from_secs(10));
    assert_eq!(follower.replica_lsn(), primary.commit_lsn());
    let stats = follower.repl_stats();
    assert_eq!(stats.role, ReplRole::Follower);
    assert!(stats.connected);
    assert_eq!(stats.commit_lsn - stats.replica_lsn, 0);

    // The primary's lag accounting converges too (acks are async —
    // poll briefly).
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let p = primary.repl_stats();
        if p.followers == 1 && p.min_follower_acked_lsn >= p.commit_lsn {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "follower ack never converged: {p:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    follower.shutdown();
    primary.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_follower_survives_a_primary_restart_and_reconverges() {
    // Satellite regression: kill and restart the server mid-stream; the
    // follower's capped-backoff redial re-subscribes from its replica
    // watermark and converges on the restarted primary's new writes.
    let dir = scratch("primary-restart");
    let primary = CacheBuilder::new()
        .durability(&dir)
        .replicate_to("127.0.0.1:0")
        .open()
        .unwrap();
    let addr = primary.repl_addr().unwrap();
    let addr_str = addr.to_string();
    primary
        .execute("create persistenttable KV (k varchar(16) primary key, v integer)")
        .unwrap();
    for i in 0..50i64 {
        primary
            .insert(
                "KV",
                vec![Scalar::Str(format!("a{i}").into()), Scalar::Int(i)],
            )
            .unwrap();
    }
    let follower = Cache::follow(&addr_str).unwrap();
    converge(&primary, &follower, Duration::from_secs(10));

    // Kill the primary mid-stream…
    drop(primary);

    // …and restart it on the same port (retrying while the OS releases
    // the listener address).
    let deadline = Instant::now() + Duration::from_secs(10);
    let primary = loop {
        match CacheBuilder::new()
            .durability(&dir)
            .replicate_to(&addr_str)
            .open()
        {
            Ok(cache) => break cache,
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "could not rebind {addr_str}: {e}"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    };
    for i in 0..50i64 {
        primary
            .insert(
                "KV",
                vec![Scalar::Str(format!("b{i}").into()), Scalar::Int(i)],
            )
            .unwrap();
    }
    converge(&primary, &follower, Duration::from_secs(15));
    assert_eq!(dump(&follower, "KV"), dump(&primary, "KV"));
    assert_eq!(follower.table_len("KV").unwrap(), 100);
    assert!(
        follower.repl_stats().reconnects >= 1,
        "the stream must have been re-established"
    );

    follower.shutdown();
    primary.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn promotion_under_concurrent_write_load_preserves_every_replicated_record() {
    let dir_p = scratch("promote-load-primary");
    let dir_f = scratch("promote-load-follower");
    let primary = CacheBuilder::new()
        .durability(&dir_p)
        .replicate_to("127.0.0.1:0")
        .open()
        .unwrap();
    let addr = primary.repl_addr().unwrap().to_string();
    primary
        .execute("create persistenttable KV (k varchar(24) primary key, v integer)")
        .unwrap();
    let follower = CacheBuilder::new()
        .durability(&dir_f)
        .follow(&addr)
        .open()
        .unwrap();

    // 4 writers hammer the primary while the follower streams.
    std::thread::scope(|scope| {
        for t in 0..4 {
            let primary = primary.clone();
            scope.spawn(move || {
                for i in 0..250i64 {
                    primary
                        .insert(
                            "KV",
                            vec![Scalar::Str(format!("w{t}-{i:04}").into()), Scalar::Int(i)],
                        )
                        .unwrap();
                }
            });
        }
    });

    // Planned failover: fence writes (writers are done), drain, kill,
    // promote. Every acknowledged insert must survive on the replica.
    let final_state = dump(&primary, "KV");
    assert_eq!(final_state.len(), 1000);
    converge(&primary, &follower, Duration::from_secs(15));
    drop(primary);
    follower.promote().unwrap();
    assert_eq!(dump(&follower, "KV"), final_state);
    assert!(
        follower.commit_lsn() >= 1000,
        "the promoted hub watermark must cover all 1000 replicated inserts"
    );

    // The promoted cache is durable in its own right: restart it from
    // its directory and the data is still all there.
    follower
        .insert("KV", vec![Scalar::Str("post".into()), Scalar::Int(1)])
        .unwrap();
    follower.shutdown();
    drop(follower);
    let reopened = Cache::recover(&dir_f).unwrap();
    assert_eq!(reopened.table_len("KV").unwrap(), 1001);
    drop(reopened);
    let _ = fs::remove_dir_all(&dir_p);
    let _ = fs::remove_dir_all(&dir_f);
}

#[test]
fn a_diverged_follower_is_reset_from_the_primarys_snapshot() {
    // A follower can legitimately get *ahead* of a primary that crashed
    // and lost an unacknowledged tail. On reconnect the primary detects
    // from_lsn beyond its own history, forces a checkpoint, and resets
    // the follower from the snapshot — both ends converge on the
    // primary's authoritative state.
    let dir_p = scratch("diverge-primary");
    let dir_f = scratch("diverge-follower");
    let addr_str;
    {
        let primary = CacheBuilder::new()
            .shard_count(1)
            .durability(&dir_p)
            .replicate_to("127.0.0.1:0")
            .open()
            .unwrap();
        addr_str = primary.repl_addr().unwrap().to_string();
        primary
            .execute("create persistenttable KV (k varchar(16) primary key, v integer)")
            .unwrap();
        for i in 0..20i64 {
            primary
                .insert(
                    "KV",
                    vec![Scalar::Str(format!("k{i:02}").into()), Scalar::Int(i)],
                )
                .unwrap();
        }
        let follower = CacheBuilder::new()
            .durability(&dir_f)
            .follow(&addr_str)
            .open()
            .unwrap();
        converge(&primary, &follower, Duration::from_secs(10));
        follower.shutdown();
        primary.shutdown();
    }

    // Crash-simulate the primary: chop the last few records off its
    // log, so its recovered history is shorter than the follower's.
    let log = log_path(&dir_p, 0);
    let bytes = fs::read(&log).unwrap();
    let keep = {
        // Find the byte length of the first (n-2) records.
        let total = count_complete_records(&bytes);
        assert!(total > 4, "need enough records to truncate meaningfully");
        let mut cut = bytes.len();
        while count_complete_records(&bytes[..cut - 1]) + 2 > total {
            cut -= 1;
        }
        cut - 1
    };
    fs::write(&log, &bytes[..keep]).unwrap();

    let primary = CacheBuilder::new()
        .shard_count(1)
        .durability(&dir_p)
        .replicate_to("127.0.0.1:0")
        .open()
        .unwrap();
    let new_addr = primary.repl_addr().unwrap().to_string();
    let follower = CacheBuilder::new()
        .durability(&dir_f)
        .follow(&new_addr)
        .open()
        .unwrap();
    // Until the reset lands, the follower's watermark is a stale claim
    // from its own recovery — wait for the snapshot, then converge.
    let deadline = Instant::now() + Duration::from_secs(10);
    while follower.repl_stats().snapshots_loaded == 0 {
        assert!(
            Instant::now() < deadline,
            "divergence was never resolved by a snapshot reset"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    converge(&primary, &follower, Duration::from_secs(10));
    assert_eq!(dump(&follower, "KV"), dump(&primary, "KV"));

    // The pair still replicates normally after the reset.
    primary
        .insert("KV", vec![Scalar::Str("fresh".into()), Scalar::Int(1)])
        .unwrap();
    converge(&primary, &follower, Duration::from_secs(10));
    assert_eq!(dump(&follower, "KV"), dump(&primary, "KV"));

    follower.shutdown();
    primary.shutdown();
    let _ = fs::remove_dir_all(&dir_p);
    let _ = fs::remove_dir_all(&dir_f);
}

// ---------------------------------------------------------------------------
// RPC-layer satellites: client reconnect, graceful shutdown, and
// end-to-end observability of replication lag over the ServerStats RPC.
// ---------------------------------------------------------------------------

#[test]
fn a_reconnecting_client_survives_a_server_restart() {
    use psrpc::{CacheClient, ReconnectPolicy, RpcServer};

    let dir = scratch("client-reconnect");
    let cache = CacheBuilder::new().durability(&dir).open().unwrap();
    cache
        .execute("create persistenttable KV (k varchar(16) primary key, v integer)")
        .unwrap();
    let server = RpcServer::bind(cache.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();

    let client = CacheClient::connect_reconnecting(&addr, ReconnectPolicy::default()).unwrap();
    client
        .upsert("KV", vec![Scalar::Str("a".into()), Scalar::Int(1)])
        .unwrap();

    // Kill the server mid-session…
    server.shutdown();
    drop(cache);

    // …and restart it on the same address (retrying while the OS
    // releases the port), serving the same durable directory.
    let cache = Cache::recover(&dir).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let server = loop {
        match RpcServer::bind(cache.clone(), addr.as_str()) {
            Ok(server) => break server,
            Err(e) => {
                assert!(Instant::now() < deadline, "could not rebind {addr}: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    };

    // The same client object keeps working: the failed request redials
    // with capped backoff and retries. Upserts are idempotent, so the
    // documented at-least-once retry semantics are safe here.
    client
        .upsert("KV", vec![Scalar::Str("b".into()), Scalar::Int(2)])
        .unwrap();
    assert_eq!(client.select("select * from KV").unwrap().len(), 2);
    assert!(client.reconnect_count() >= 1);

    // A non-reconnecting client would have failed instead: transport
    // errors only ever surface, never silent retries.
    drop(client);
    server.shutdown();
    drop(cache);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn graceful_server_shutdown_drains_workers_and_flushes_the_wal() {
    use psrpc::{CacheClient, RpcServer};

    let dir = scratch("graceful-shutdown");
    // OsOnly: inserts are acked after a server-side flush, and the
    // *shutdown* flush is the last line of defence for anything
    // buffered after the final ack.
    let cache = CacheBuilder::new()
        .durability(&dir)
        .sync_policy(pscache::SyncPolicy::OsOnly)
        .open()
        .unwrap();
    cache
        .execute("create persistenttable KV (k varchar(16) primary key, v integer)")
        .unwrap();
    let server = RpcServer::bind(cache.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // Two clients: one busy, one idle with its connection held open —
    // the drain must not hang on the idle one.
    let busy = CacheClient::connect(addr).unwrap();
    let _idle = CacheClient::connect(addr).unwrap();
    for i in 0..100i64 {
        busy.insert(
            "KV",
            vec![Scalar::Str(format!("k{i:03}").into()), Scalar::Int(i)],
        )
        .unwrap();
    }

    let started = Instant::now();
    server.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "graceful shutdown must not hang on idle connections"
    );
    drop(cache);

    // Every acknowledged insert is on disk: recovery sees all 100.
    let recovered = Cache::recover(&dir).unwrap();
    assert_eq!(recovered.table_len("KV").unwrap(), 100);
    drop(recovered);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn replication_lag_is_observable_end_to_end_over_server_stats() {
    use psrpc::{CacheClient, RpcServer};

    let dir = scratch("stats-over-wire");
    let primary = CacheBuilder::new()
        .durability(&dir)
        .replicate_to("127.0.0.1:0")
        .open()
        .unwrap();
    let repl_addr = primary.repl_addr().unwrap().to_string();
    let server = RpcServer::bind(primary.clone(), "127.0.0.1:0").unwrap();
    let client = CacheClient::connect(server.local_addr()).unwrap();

    client
        .execute("create persistenttable KV (k varchar(16) primary key, v integer)")
        .unwrap();
    for i in 0..32i64 {
        client
            .insert(
                "KV",
                vec![Scalar::Str(format!("k{i:02}").into()), Scalar::Int(i)],
            )
            .unwrap();
    }
    let follower = Cache::follow(&repl_addr).unwrap();
    converge(&primary, &follower, Duration::from_secs(10));

    // A remote operator sees the whole pipeline through one RPC: WAL
    // activity, the commit watermark, the follower count, and (once
    // acks land) zero lag.
    let deadline = Instant::now() + Duration::from_secs(5);
    let stats = loop {
        let stats = client.server_stats().unwrap();
        if stats.repl_followers == 1 && stats.repl_min_follower_acked_lsn >= stats.repl_commit_lsn {
            break stats;
        }
        assert!(Instant::now() < deadline, "lag never converged: {stats:?}");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(stats.wal_records >= 33, "DDL + 32 inserts are logged");
    assert!(stats.wal_syncs >= 1);
    assert_eq!(stats.repl_is_follower, 0);
    assert!(stats.repl_commit_lsn >= 33);
    assert_eq!(stats.repl_commit_lsn, primary.commit_lsn());

    follower.shutdown();
    drop(client);
    server.shutdown();
    primary.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// The follower crash/reconnect differential proptest.
// ---------------------------------------------------------------------------

/// One randomly generated mutation (the `tests/durability.rs` model).
#[derive(Debug, Clone)]
enum Op {
    Insert { table: usize, key: u8, value: i64 },
    Upsert { table: usize, key: u8, value: i64 },
    Remove { table: usize, key: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0usize..2, 0u8..6, -100i64..100, 0u8..3).prop_map(|(table, key, value, kind)| match kind {
        0 => Op::Insert { table, key, value },
        1 => Op::Upsert { table, key, value },
        _ => Op::Remove { table, key },
    })
}

/// The in-memory model of one persistent table: rows in scan order.
type ModelTable = Vec<(String, i64, u64)>;

fn model_dump(model: &[ModelTable; 2], table: usize) -> Vec<(Vec<Scalar>, u64)> {
    model[table]
        .iter()
        .map(|(k, v, ts)| (vec![Scalar::Str(k.as_str().into()), Scalar::Int(*v)], *ts))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Run a random mutation history against a replicated pair while
    /// crashing the follower process (dropping it cold and re-opening
    /// from its directory) at arbitrary points — every reconnect lands
    /// at an arbitrary frame boundary of the stream — and interleaving
    /// primary checkpoints so re-subscription exercises both the log
    /// and the snapshot bootstrap. The converged follower must be
    /// byte-identical to the op-by-op model.
    #[test]
    fn follower_crash_reconnect_ends_byte_identical_to_the_model(
        ops in proptest::collection::vec(arb_op(), 1..30),
        crash_point_list in proptest::collection::vec(0usize..30, 0..3),
        checkpoint_sel in 0usize..60,
    ) {
        let crash_points: std::collections::BTreeSet<usize> =
            crash_point_list.into_iter().collect();
        // Half the cases interleave a primary checkpoint mid-history.
        let checkpoint_at = (checkpoint_sel < 30).then_some(checkpoint_sel);
        let dir_p = scratch("proptest-repl-primary");
        let dir_f = scratch("proptest-repl-follower");
        let primary = CacheBuilder::new()
            .manual_clock()
            .durability(&dir_p)
            .replicate_to("127.0.0.1:0")
            .open()
            .unwrap();
        let addr = primary.repl_addr().unwrap().to_string();
        primary.execute(
            "create persistenttable T0 (k varchar(8) primary key, v integer)").unwrap();
        primary.execute(
            "create persistenttable T1 (k varchar(8) primary key, v integer)").unwrap();

        let mut follower = Some(CacheBuilder::new()
            .durability(&dir_f)
            .follow(&addr)
            .open()
            .unwrap());
        let mut model: [ModelTable; 2] = [Vec::new(), Vec::new()];

        for (idx, op) in ops.iter().enumerate() {
            if crash_points.contains(&idx) {
                // Crash the follower cold (drop releases everything,
                // including mid-batch state) and immediately restart it
                // from its own directory.
                drop(follower.take());
                follower = Some(CacheBuilder::new()
                    .durability(&dir_f)
                    .follow(&addr)
                    .open()
                    .unwrap());
            }
            if checkpoint_at == Some(idx) {
                primary.checkpoint().unwrap();
            }
            primary.manual_clock().unwrap().advance(1);
            let now = primary.now();
            match op {
                Op::Insert { table, key, value } => {
                    let name = format!("T{table}");
                    let k = format!("k{key}");
                    let exists = model[*table].iter().any(|(mk, _, _)| *mk == k);
                    let result = primary.insert(
                        &name,
                        vec![Scalar::Str(k.as_str().into()), Scalar::Int(*value)],
                    );
                    if exists {
                        prop_assert!(result.is_err(), "duplicate insert must fail");
                    } else {
                        prop_assert!(result.is_ok());
                        model[*table].push((k, *value, now));
                    }
                }
                Op::Upsert { table, key, value } => {
                    let name = format!("T{table}");
                    let k = format!("k{key}");
                    primary.upsert(
                        &name,
                        vec![Scalar::Str(k.as_str().into()), Scalar::Int(*value)],
                    ).unwrap();
                    model[*table].retain(|(mk, _, _)| *mk != k);
                    model[*table].push((k, *value, now));
                }
                Op::Remove { table, key } => {
                    let name = format!("T{table}");
                    let k = format!("k{key}");
                    primary.remove(&name, &k).unwrap();
                    model[*table].retain(|(mk, _, _)| *mk != k);
                }
            }
        }

        let follower = follower.take().unwrap();
        converge(&primary, &follower, Duration::from_secs(20));
        for table in 0..2 {
            prop_assert_eq!(
                dump(&follower, &format!("T{table}")),
                model_dump(&model, table),
                "table T{} after {} ops, {} crashes", table, ops.len(), crash_points.len()
            );
        }
        // And the follower state survives one more cold restart intact
        // (its own WAL is a faithful copy).
        drop(follower);
        let reopened = CacheBuilder::new()
            .durability(&dir_f)
            .follow(&addr)
            .open()
            .unwrap();
        converge(&primary, &reopened, Duration::from_secs(20));
        for table in 0..2 {
            prop_assert_eq!(
                dump(&reopened, &format!("T{table}")),
                model_dump(&model, table)
            );
        }
        drop(reopened);
        primary.shutdown();
        let _ = fs::remove_dir_all(&dir_p);
        let _ = fs::remove_dir_all(&dir_f);
    }
}

/// A follower that cached query plans, was reset by a snapshot
/// bootstrap (which rebuilds every table — and every schema `Arc` —
/// from the wire image), and was then promoted must *recompile* each
/// cached SQL text exactly once against the rebuilt schemas, after
/// which plan-cache hits resume. The regression: plan identity was
/// checked by schema-`Arc` pointer, and a pointer miss that recompiled
/// without re-caching would miss forever.
#[test]
fn a_promoted_follower_recompiles_cached_plans_once_then_hits_resume() {
    let dir = scratch("promote-replan");
    let primary = CacheBuilder::new()
        .durability(&dir)
        .replicate_to("127.0.0.1:0")
        .open()
        .unwrap();
    let addr_str = primary.repl_addr().unwrap().to_string();
    primary
        .execute("create persistenttable KV (k varchar(16) primary key, v integer)")
        .unwrap();
    for i in 0..20i64 {
        primary
            .insert(
                "KV",
                vec![Scalar::Str(format!("k{i}").into()), Scalar::Int(i)],
            )
            .unwrap();
    }

    let follower = Cache::follow(&addr_str).unwrap();
    converge(&primary, &follower, Duration::from_secs(10));

    // Warm the follower's plan cache against the bootstrap-built schema.
    let sql = "select k, v from KV where v >= 10 order by v";
    let warm_rows = follower.execute(sql).unwrap().rows().unwrap();
    assert_eq!(warm_rows.rows.len(), 10);
    let _ = follower.execute(sql).unwrap();
    let warm = follower.plan_cache_stats();
    assert!(warm.hits >= 1, "repeat text must hit before the reset");
    assert_eq!(warm.recompiles, 0);
    let snapshots_before = follower.repl_stats().snapshots_loaded;

    // Kill the primary, then advance its durable history *and its
    // checkpoint* past the follower's watermark while no listener is
    // up (the follower just redials and fails). The relaunched primary
    // must then answer the redial with a snapshot bootstrap — the
    // follower's subscribe LSN is below the checkpoint's high
    // watermark — which rebuilds the follower's tables wholesale.
    drop(primary);
    {
        let offline = CacheBuilder::new().durability(&dir).open().unwrap();
        for i in 20..40i64 {
            offline
                .insert(
                    "KV",
                    vec![Scalar::Str(format!("k{i}").into()), Scalar::Int(i)],
                )
                .unwrap();
        }
        offline.checkpoint().unwrap();
        offline.shutdown();
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    let primary = loop {
        match CacheBuilder::new()
            .durability(&dir)
            .replicate_to(&addr_str)
            .open()
        {
            Ok(cache) => break cache,
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "could not rebind {addr_str}: {e}"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    };
    converge(&primary, &follower, Duration::from_secs(15));
    assert!(
        follower.repl_stats().snapshots_loaded > snapshots_before,
        "the reconnect must have re-bootstrapped from a snapshot"
    );

    // Failover: the promoted cache serves the same cached SQL text.
    drop(primary);
    follower.promote().unwrap();
    assert_eq!(follower.repl_role(), ReplRole::Primary);

    let after = follower.execute(sql).unwrap().rows().unwrap();
    assert_eq!(after.rows.len(), 30, "post-reset data answers the query");
    let first = follower.plan_cache_stats();
    assert_eq!(
        first.recompiles, 1,
        "the rebuilt schema Arc forces exactly one recompile"
    );
    let _ = follower.execute(sql).unwrap();
    let _ = follower.execute(sql).unwrap();
    let second = follower.plan_cache_stats();
    assert_eq!(
        second.recompiles, 1,
        "recompile must re-cache the plan, not recompile per query"
    );
    assert!(
        second.hits >= first.hits + 2,
        "plan-cache hits must resume after promotion ({} -> {})",
        first.hits,
        second.hits
    );

    follower.shutdown();
    let _ = fs::remove_dir_all(&dir);
}
